"""Tests for the verifier: scopes, checks, runner and the paper's
correctness results (Table 5) and case studies (§6.4)."""

import pytest

from repro.analyzer import analyze_application
from repro.apps.courseware import build_app as build_courseware
from repro.apps.smallbank import build_app as build_smallbank
from repro.orm import (
    ForeignKey,
    Model,
    PositiveIntegerField,
    Registry,
    SET_NULL,
    TextField,
)
from repro.soir import Argument, CodePath, commands as C, expr as E
from repro.soir.types import INT, STRING, Comparator
from repro.verifier import (
    CheckConfig,
    Outcome,
    PairChecker,
    build_scope,
    operation_conflict_table,
    verify_application,
    verify_pair,
)
from repro.verifier.scopes import StateGenerator, collect_args
from repro.web import Application, HttpResponse, path

from helpers import blog_schema


# ---------------------------------------------------------------------------
# Correctness (paper Table 5)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def smallbank_report():
    analysis = analyze_application(build_smallbank())
    return analysis, verify_application(analysis)


@pytest.fixture(scope="module")
def courseware_report():
    analysis = analyze_application(build_courseware())
    return analysis, verify_application(analysis)


class TestSmallBank:
    def test_effectful_operations(self, smallbank_report):
        analysis, _ = smallbank_report
        views = {p.view for p in analysis.effectful_paths}
        assert views == {
            "DepositChecking",
            "TransactSavings",
            "SendPayment",
            "Amalgamate",
        }

    def test_balance_is_read_only(self, smallbank_report):
        analysis, _ = smallbank_report
        assert all(
            not p.is_effectful() for p in analysis.paths if p.view == "Balance"
        )

    def test_table5_counts(self, smallbank_report):
        _, report = smallbank_report
        assert len(report.commutativity_failures) == 0
        assert len(report.semantic_failures) == 4

    def test_table5_failing_pairs(self, smallbank_report):
        _, report = smallbank_report
        failing = {
            frozenset((v.left.split("[")[0], v.right.split("[")[0]))
            for v in report.semantic_failures
        }
        assert failing == {
            frozenset(("TransactSavings",)),
            frozenset(("SendPayment",)),
            frozenset(("Amalgamate",)),
            frozenset(("Amalgamate", "SendPayment")),
        }

    def test_deposit_never_conflicts(self, smallbank_report):
        _, report = smallbank_report
        for v in report.restrictions:
            assert "DepositChecking" not in (v.left + v.right)


class TestCourseware:
    def test_table5_counts(self, courseware_report):
        _, report = courseware_report
        assert len(report.commutativity_failures) == 1
        assert len(report.semantic_failures) == 1

    def test_table5_failing_pairs(self, courseware_report):
        _, report = courseware_report
        com = report.commutativity_failures[0]
        assert {com.left.split("[")[0], com.right.split("[")[0]} == {
            "AddCourse",
            "DeleteCourse",
        }
        sem = report.semantic_failures[0]
        assert {sem.left.split("[")[0], sem.right.split("[")[0]} == {
            "Enroll",
            "DeleteCourse",
        }

    def test_conflict_table(self, courseware_report):
        _, report = courseware_report
        table = operation_conflict_table(report)
        assert frozenset(("AddCourse", "DeleteCourse")) in table
        assert frozenset(("Enroll", "DeleteCourse")) in table
        assert len(table) == 2


# ---------------------------------------------------------------------------
# Case study (paper §6.4): CreateQuestion / FollowQuestion
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def question_analysis():
    registry = Registry("casestudy")
    with registry.use():

        class QUser(Model):
            name = TextField(primary_key=True)

        class Question(Model):
            title = TextField(default="")
            follow = PositiveIntegerField(default=0)

        class FollowQuestion(Model):
            user_key = TextField(default="")
            question_key = TextField(default="")

            class Meta:
                unique_together = ("user_key", "question_key")

    def create_question(request):
        Question.objects.create(title=request.POST["title"])
        return HttpResponse(status=201)

    def follow_question(request, pk):
        question = Question.objects.get(pk=pk)
        FollowQuestion.objects.create(
            user_key=request.POST["user"],
            question_key=request.POST["question"],
        )
        question.follow = question.follow + 1
        question.save()
        return HttpResponse(status=200)

    app = Application(
        "casestudy",
        registry,
        [
            path("questions/new", create_question, name="CreateQuestion"),
            path("questions/<int:pk>/follow", follow_question, name="FollowQuestion"),
        ],
    )
    return analyze_application(app)


def effectful(analysis, view):
    return [p for p in analysis.effectful_paths if p.view == view][0]


class TestCaseStudy:
    def test_create_create_with_unique_ids(self, question_analysis):
        """CreateQuestion does not conflict with itself thanks to the
        unique-ID optimisation (paper §6.4)."""
        cq = effectful(question_analysis, "CreateQuestion")
        checker = PairChecker(cq, cq, question_analysis.schema,
                              CheckConfig(unique_ids=True))
        assert checker.check_commutativity().outcome == Outcome.PASS
        assert checker.check_semantic().outcome == Outcome.PASS

    def test_create_create_without_unique_ids(self, question_analysis):
        """Without the assertion, CreateQuestion conflicts with itself:
        two inserts can carry the same ID (semantic: the non-existence
        guard; commutativity: different titles on the same object)."""
        cq = effectful(question_analysis, "CreateQuestion")
        checker = PairChecker(cq, cq, question_analysis.schema,
                              CheckConfig(unique_ids=False))
        assert checker.check_commutativity().outcome == Outcome.FAIL
        assert checker.check_semantic().outcome == Outcome.FAIL

    def test_create_follow_commutativity_conflict(self, question_analysis):
        """FollowQuestion increments the follow count the concurrent
        CreateQuestion initializes to zero (paper §6.4)."""
        cq = effectful(question_analysis, "CreateQuestion")
        fq = effectful(question_analysis, "FollowQuestion")
        checker = PairChecker(cq, fq, question_analysis.schema)
        assert checker.check_commutativity().outcome == Outcome.FAIL

    def test_follow_follow_semantic_conflict(self, question_analysis):
        """(user, question) is unique-together: a preceding follow
        invalidates the precondition of a later one (paper §6.4)."""
        fq = effectful(question_analysis, "FollowQuestion")
        checker = PairChecker(fq, fq, question_analysis.schema)
        assert checker.check_semantic().outcome == Outcome.FAIL
        witness = checker.check_semantic().witness
        assert witness is not None


# ---------------------------------------------------------------------------
# Runner fast paths and plumbing
# ---------------------------------------------------------------------------


class TestRunner:
    def test_disjoint_footprint_passes_fast(self):
        from repro.soir import Schema, make_model
        from repro.soir.types import STRING as S

        schema = Schema()
        schema.add_model(make_model("Log", {"line": S}))
        schema.add_model(make_model("Cache", {"blob": S}))
        p = CodePath("p", (), (C.Delete(E.All("Log")),))
        q = CodePath("q", (), (C.Delete(E.All("Cache")),))
        verdict = verify_pair(p, q, schema)
        assert not verdict.restricted
        assert verdict.commutativity.detail == "disjoint footprint"

    def test_delete_touches_source_side_relations(self):
        """Deleting comments removes their associations, so the footprint
        includes the comment relations and their endpoint models."""
        schema = blog_schema()
        p = CodePath("p", (), (C.Delete(E.All("Comment")),))
        assert "Comment.user" in p.relations_touched(schema)
        assert "User" in p.models_touched(schema)

    def test_conservative_path_restricts_everything(self):
        schema = blog_schema()
        conservative = CodePath("c", (), (), conservative=True)
        other = CodePath("o", (), (C.Delete(E.All("Comment")),))
        verdict = verify_pair(conservative, other, schema)
        assert verdict.restricted
        assert verdict.commutativity.outcome == Outcome.CONSERVATIVE
        assert verdict.semantic.outcome == Outcome.CONSERVATIVE

    def test_report_counts(self, smallbank_report):
        _, report = smallbank_report
        # 4 effectful paths -> 10 unordered pairs including self-pairs.
        assert report.checks == 10
        summary = report.summary()
        assert summary["checks"] == 10
        assert summary["restrictions"] == 4
        assert report.time_commutativity_s >= 0
        assert report.time_semantic_s > 0


# ---------------------------------------------------------------------------
# Scopes and state generation
# ---------------------------------------------------------------------------


class TestScopes:
    def make_path(self):
        args = (Argument("v", INT),)
        return CodePath(
            "p",
            args,
            (
                C.Guard(E.Cmp(Comparator.GE, E.Var("v", INT), E.intlit(5))),
                C.Delete(
                    E.Filter(E.All("Article"), (), "created", Comparator.EQ,
                             E.Var("v", INT))
                ),
            ),
        )

    def test_constants_seed_domains(self):
        schema = blog_schema()
        scope = build_scope(schema, [self.make_path()])
        int_domain = scope.type_domains[INT]
        assert {4, 5, 6} <= set(int_domain)  # boundary neighbours of 5

    def test_footprint(self):
        schema = blog_schema()
        scope = build_scope(schema, [self.make_path()])
        assert "Article" in scope.models
        # Deleting articles cascades into Comment via Comment.article.
        assert "Comment" in scope.models
        assert "Comment.article" in scope.relations

    def test_irrelevant_fields_pinned(self):
        schema = blog_schema()
        scope = build_scope(schema, [self.make_path()])
        assert len(scope.field_domains[("Article", "content")]) == 1
        assert len(scope.field_domains[("Article", "created")]) > 1

    def test_unique_fields_always_relevant(self):
        schema = blog_schema()
        scope = build_scope(schema, [self.make_path()])
        assert len(scope.field_domains[("Article", "url")]) > 1

    def test_canonical_states_are_well_formed(self):
        schema = blog_schema()
        scope = build_scope(schema, [self.make_path()])
        gen = StateGenerator(scope)
        states = gen.canonical_states()
        assert len(states) >= 3
        for state in states:
            for mname in scope.models:
                model = schema.model(mname)
                rows = state.table(mname)
                for fschema in model.fields:
                    if not fschema.unique:
                        continue
                    values = [r[fschema.name] for r in rows.values()]
                    assert len(values) == len(set(values))

    def test_random_states_respect_fk_nullability(self):
        import random

        schema = blog_schema()
        scope = build_scope(schema, [self.make_path()])
        gen = StateGenerator(scope)
        rng = random.Random(7)
        for _ in range(30):
            state = gen.random_state(rng)
            if state is None:
                continue
            # Comment.user is non-nullable: every comment has a user pair.
            comments = set(state.table("Comment"))
            linked = {s for s, _ in state.relation("Comment.user")}
            assert comments == linked

    def test_collect_args_includes_opaque(self):
        p = CodePath(
            "p", (),
            (C.Guard(E.Cmp(Comparator.GE, E.Opaque("ext", INT), E.intlit(0))),),
        )
        args = collect_args(p)
        assert [a.name for a in args] == ["ext"]
        assert args[0].source == "opaque"
