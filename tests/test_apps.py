"""Tests for the six evaluated applications: concrete workflows through the
test client, plus analysis statistics in the ballpark of paper Table 4."""

import pytest

from repro.analyzer import analyze_application
from repro.apps.courseware import build_app as build_courseware
from repro.apps.ownphotos import build_app as build_ownphotos
from repro.apps.postgraduation import build_app as build_postgraduation
from repro.apps.smallbank import build_app as build_smallbank
from repro.apps.todo import build_app as build_todo
from repro.apps.zhihu import build_app as build_zhihu
from repro.orm import Database
from repro.web import Client


def make_client(app):
    return Client(app, Database(app.registry))


class TestTodoWorkflow:
    @pytest.fixture()
    def client(self):
        return make_client(build_todo())

    def test_lifecycle(self, client):
        pk = client.post("/tasks/add", {"title": "write tests"}).content["pk"]
        assert client.get("/tasks").content == 1
        assert client.get("/tasks/pending").content == 1
        client.post(f"/tasks/{pk}/complete")
        assert client.get("/tasks/pending").content == 0
        client.post(f"/tasks/{pk}/star")
        assert client.get("/tasks/starred").content == 1
        client.post(f"/tasks/{pk}/edit", {"note": "asap"})
        client.post("/tasks/clear")
        assert client.get("/tasks").content == 0

    def test_missing_task_404(self, client):
        assert client.post("/tasks/999/complete").status == 400 or True
        # get() raises DoesNotExist -> ObjectDoesNotExist -> 400 mapping is
        # framework-specific; what matters is that it is not a 2xx.
        assert not client.post("/tasks/999/complete").ok


class TestSmallBankWorkflow:
    @pytest.fixture()
    def client(self):
        app = build_smallbank()
        client = make_client(app)
        account = app.registry.get_model("Account")
        with client.db.activate():
            account.objects.create(name="alice", checking=100, savings=50)
            account.objects.create(name="bob", checking=10, savings=0)
        return client

    def test_balance(self, client):
        assert client.get("/balance/alice").content == 150

    def test_deposit_and_overdraft_protection(self, client):
        assert client.post("/deposit/alice", {"amount": 25}).ok
        assert client.get("/balance/alice").content == 175
        # Withdraw below zero aborts with a 400 (invariant holds).
        resp = client.post("/transact/alice", {"amount": -60})
        assert not resp.ok
        assert client.get("/balance/alice").content == 175

    def test_send_payment(self, client):
        assert client.post("/pay/alice/bob", {"amount": 40}).ok
        assert client.get("/balance/alice").content == 110
        assert client.get("/balance/bob").content == 50

    def test_payment_insufficient_funds(self, client):
        assert not client.post("/pay/bob/alice", {"amount": 999}).ok

    def test_amalgamate(self, client):
        assert client.post("/amalgamate/alice/bob", {"amount": 100}).ok
        assert client.get("/balance/alice").content == 50
        assert client.get("/balance/bob").content == 110


class TestCoursewareWorkflow:
    @pytest.fixture()
    def client(self):
        return make_client(build_courseware())

    def test_enroll_flow(self, client):
        student = client.post("/register", {"name": "ada"}).content["pk"]
        course = client.post("/courses/add", {"title": "OS"}).content["pk"]
        assert client.post(f"/enroll/{student}/{course}").status == 201
        # The course is now protected by the enrolment.
        assert not client.post(f"/courses/{course}/delete").ok
        assert client.get("/courses").content == 1

    def test_delete_free_course(self, client):
        course = client.post("/courses/add", {"title": "Networks"}).content["pk"]
        assert client.post(f"/courses/{course}/delete").status == 204
        assert client.get("/courses").content == 0

    def test_enroll_missing_course(self, client):
        student = client.post("/register", {"name": "bob"}).content["pk"]
        assert not client.post(f"/enroll/{student}/777").ok


class TestPostGraduationWorkflow:
    @pytest.fixture()
    def client(self):
        return make_client(build_postgraduation())

    def test_supervision_flow(self, client):
        dept = client.post("/departments/create", {"name": "CS"}).content["pk"]
        sup = client.post(
            f"/departments/{dept}/hire", {"name": "Dr. X", "email": "x@u.edu"}
        ).content["pk"]
        cand = client.post(
            "/candidates/register", {"name": "Eve", "email": "eve@u.edu"}
        ).content["pk"]
        assert client.post(f"/candidates/{cand}/assign/{sup}").ok
        assert client.get(f"/supervisors/{sup}/load").content == 1
        assert client.post(f"/candidates/{cand}/unassign").ok
        assert client.get(f"/supervisors/{sup}/load").content == 0

    def test_capacity_invariant(self, client):
        dept = client.post("/departments/create", {"name": "EE"}).content["pk"]
        sup = client.post(
            f"/departments/{dept}/hire", {"name": "Dr. Y", "email": "y@u.edu"}
        ).content["pk"]
        pks = []
        for i in range(4):
            pks.append(
                client.post(
                    "/candidates/register",
                    {"name": f"c{i}", "email": f"c{i}@u.edu"},
                ).content["pk"]
            )
        for pk in pks[:3]:
            assert client.post(f"/candidates/{pk}/assign/{sup}").ok
        # Default capacity is 3: the fourth assignment is refused.
        assert client.post(f"/candidates/{pks[3]}/assign/{sup}").status == 400

    def test_scholarship_protects_candidate(self, client):
        cand = client.post(
            "/candidates/register", {"name": "Ann", "email": "ann@u.edu"}
        ).content["pk"]
        client.post(f"/candidates/{cand}/scholarship", {"amount": 1000})
        assert not client.post(f"/candidates/{cand}/delete").ok

    def test_thesis_review(self, client):
        cand = client.post(
            "/candidates/register", {"name": "Tom", "email": "tom@u.edu"}
        ).content["pk"]
        thesis = client.post(
            f"/candidates/{cand}/thesis", {"title": "Consistency"}
        ).content["pk"]
        assert client.post(
            f"/theses/{thesis}/review", {"verdict": "approve"}
        ).ok

    def test_duplicate_email_rejected(self, client):
        client.post("/candidates/register", {"name": "A", "email": "a@u.edu"})
        resp = client.post("/candidates/register", {"name": "B", "email": "a@u.edu"})
        assert resp.status == 400


class TestZhihuWorkflow:
    @pytest.fixture()
    def client(self):
        return make_client(build_zhihu())

    def test_question_answer_flow(self, client):
        client.post("/register", {"handle": "ann"})
        client.post("/register", {"handle": "bob"})
        q = client.post(
            "/u/ann/ask", {"title": "Why CRDTs?", "body": "..."}
        ).content["pk"]
        a = client.post(f"/u/bob/answer/{q}", {"body": "because"}).content["pk"]
        assert client.get(f"/q/{q}/answers").content == 1
        assert client.post(f"/u/ann/upvote/{a}").ok
        assert client.get(f"/q/{q}/hot").content == {"pk": a}

    def test_follow_question_counter(self, client):
        client.post("/register", {"handle": "ann"})
        client.post("/register", {"handle": "bob"})
        q = client.post("/u/ann/ask", {"title": "T", "body": "B"}).content["pk"]
        assert client.post(
            f"/u/bob/follow-q/{q}", {"question_key": str(q)}
        ).status == 201
        assert client.get(f"/q/{q}").content["follow"] == 1
        # The unique-together pair forbids double-follow (paper §6.4).
        assert not client.post(
            f"/u/bob/follow-q/{q}", {"question_key": str(q)}
        ).ok
        assert client.get(f"/q/{q}").content["follow"] == 1

    def test_social_and_notifications(self, client):
        client.post("/register", {"handle": "ann"})
        client.post("/register", {"handle": "bob"})
        assert client.post("/u/ann/follow-u/bob").ok
        assert client.post("/u/ann/message/bob", {"text": "hi"}).status == 201
        assert client.get("/u/bob/unread").content == 0

    def test_latest_question_order(self, client):
        client.post("/register", {"handle": "ann"})
        client.post("/u/ann/ask", {"title": "first", "body": ""})
        q2 = client.post("/u/ann/ask", {"title": "second", "body": ""}).content["pk"]
        assert client.get("/q/latest").content == {"pk": q2}


class TestOwnPhotosWorkflow:
    @pytest.fixture()
    def client(self):
        return make_client(build_ownphotos())

    def test_photo_lifecycle(self, client):
        user = client.post("/users/register", {"username": "u1"}).content["pk"]
        photo = client.post(
            f"/users/{user}/photos/upload", {"image_hash": "h1"}
        ).content["pk"]
        assert client.post(f"/users/{user}/favorites/add/{photo}").ok
        assert client.get(f"/users/{user}/stats").content == {
            "photos": 1,
            "favorites": 1,
        }
        client.post(f"/photos/{photo}/rate", {"rating": 5})
        assert client.post("/photos/search", {"min_rating": 4}).content == 1

    def test_rating_choices_enforced(self, client):
        user = client.post("/users/register", {"username": "u1"}).content["pk"]
        photo = client.post(
            f"/users/{user}/photos/upload", {"image_hash": "h1"}
        ).content["pk"]
        assert not client.post(f"/photos/{photo}/rate", {"rating": 9}).ok

    def test_faces_and_people(self, client):
        user = client.post("/users/register", {"username": "u1"}).content["pk"]
        photo = client.post(
            f"/users/{user}/photos/upload", {"image_hash": "h1"}
        ).content["pk"]
        face = client.post(
            f"/photos/{photo}/faces/detect", {"confidence": 80}
        ).content["pk"]
        person = client.post(
            f"/users/{user}/people/create", {"name": "Ann"}
        ).content["pk"]
        assert client.get("/faces/backlog").content == 1
        assert client.post(f"/faces/{face}/tag/{person}/{user}").ok
        assert client.get("/faces/backlog").content == 0

    def test_albums_loop_generated_views(self, client):
        user = client.post("/users/register", {"username": "u1"}).content["pk"]
        photo = client.post(
            f"/users/{user}/photos/upload", {"image_hash": "h1"}
        ).content["pk"]
        for kind in ("auto", "user", "place", "thing"):
            album = client.post(
                f"/albums/{kind}/create/{user}", {"title": f"{kind}-album"}
            ).content["pk"]
            assert client.post(
                f"/albums/{kind}/{album}/photos/add/{photo}"
            ).ok

    def test_viewset_crud(self, client):
        user = client.post("/users/register", {"username": "u1"}).content["pk"]
        photo = client.post(
            f"/users/{user}/photos/upload", {"image_hash": "h1"}
        ).content["pk"]
        assert client.get("/photo/").content == 1
        client.post(f"/photo/{photo}/update", {"caption": "sunset"})
        assert client.get(f"/photo/{photo}/").content["caption"] == "sunset"
        assert client.post(f"/photo/{photo}/delete").status == 204
        assert client.get("/photo/").content == 0

    def test_merge_people(self, client):
        user = client.post("/users/register", {"username": "u1"}).content["pk"]
        photo = client.post(
            f"/users/{user}/photos/upload", {"image_hash": "h1"}
        ).content["pk"]
        p1 = client.post(f"/users/{user}/people/create", {"name": "A"}).content["pk"]
        p2 = client.post(f"/users/{user}/people/create", {"name": "A?"}).content["pk"]
        face = client.post(
            f"/photos/{photo}/faces/detect", {"confidence": 70}
        ).content["pk"]
        client.post(f"/faces/{face}/tag/{p2}/{user}")
        assert client.post(f"/people/{p1}/merge/{p2}").ok
        assert client.get("/person/").content == 1


class TestAnalysisStatistics:
    """Table 4 ballpark: models/relations exact, path counts approximate."""

    CASES = [
        (build_todo, 1, 0, 10),
        (build_postgraduation, 8, 4, 20),
        (build_zhihu, 14, 25, 20),
        (build_ownphotos, 12, 45, 135),
        (build_smallbank, 1, 0, 4),
        (build_courseware, 3, 2, 4),
    ]

    @pytest.mark.parametrize("builder,models,relations,effectful", CASES)
    def test_static_shape(self, builder, models, relations, effectful):
        analysis = analyze_application(builder())
        assert len(analysis.schema.models) == models
        assert len(analysis.schema.relations) == relations
        assert len(analysis.effectful_paths) == effectful
        assert not [p for p in analysis.paths if p.conservative]

    def test_loc_counted(self):
        app = build_ownphotos()
        assert app.source_loc > 500
