"""The difftest generator: deterministic, well-formed, feature-covering."""

from __future__ import annotations

import pytest

from repro.difftest import generate_analysis, generate_case, generate_schema
from repro.difftest.gen import GenConfig
from repro.soir import expr as E
from repro.soir.serialize import dumps, path_to_obj, schema_to_obj
from repro.soir.validate import validate_path

pytestmark = pytest.mark.difftest


class TestDeterminism:
    def test_same_seed_same_case(self):
        for seed in (0, 7, 123):
            a = generate_case(seed)
            b = generate_case(seed)
            assert schema_to_obj(a.schema) == schema_to_obj(b.schema)
            assert path_to_obj(a.p) == path_to_obj(b.p)
            assert path_to_obj(a.q) == path_to_obj(b.q)

    def test_different_seeds_differ(self):
        blobs = {dumps(generate_analysis(seed)) for seed in range(12)}
        assert len(blobs) > 8  # near-certain distinctness

    def test_analysis_deterministic_serialization(self):
        assert dumps(generate_analysis(3)) == dumps(generate_analysis(3))


class TestWellFormedness:
    @pytest.mark.parametrize("seed", range(0, 40))
    def test_case_validates(self, seed):
        case = generate_case(seed)
        case.schema.validate()
        validate_path(case.p, case.schema)
        validate_path(case.q, case.schema)

    def test_arg_names_disjoint_across_pair(self):
        for seed in range(25):
            case = generate_case(seed)
            names_p = {a.name for a in case.p.args}
            names_q = {a.name for a in case.q.args}
            assert not names_p & names_q, seed

    def test_analysis_shape(self):
        analysis = generate_analysis(5, n_paths=4)
        assert len(analysis.paths) == 4
        views = {p.view for p in analysis.paths}
        assert len(views) == 4
        for p in analysis.paths:
            assert p.name == f"{p.view}[0]"


class TestFeatureCoverage:
    """The weighting must actually produce the features that bit us."""

    def _nodes(self, n_seeds=150):
        for seed in range(n_seeds):
            case = generate_case(seed)
            for path in (case.p, case.q):
                for cmd in path.commands:
                    yield case, cmd

    def test_covers_hard_features(self):
        seen = set()
        for case, cmd in self._nodes():
            for node in cmd.walk_exprs():
                seen.add(type(node).__name__)
            seen.add(type(cmd).__name__)
        for required in ("OrderBy", "FirstOf", "Aggregate", "Follow",
                         "Filter", "MakeObj", "MapSet", "Deref",
                         "Guard", "Update", "Delete", "Link"):
            assert required in seen, f"generator never produced {required}"

    def test_covers_schema_features(self):
        unique = fk = m2m = min_value = together = fresh = False
        for seed in range(150):
            case = generate_case(seed)
            for m in case.schema.models.values():
                unique |= any(f.unique and f.name != m.pk for f in m.fields)
                min_value |= any(f.min_value is not None for f in m.fields)
                together |= bool(m.unique_together)
            for r in case.schema.relations.values():
                fk |= r.kind == "fk"
                m2m |= r.kind == "m2m"
            fresh |= any(a.unique_id for a in (*case.p.args, *case.q.args))
        assert unique and fk and m2m and min_value and together and fresh

    def test_min_value_writes_are_guarded(self):
        """Serial executions of generated paths must respect ``min_value``
        annotations — otherwise the oracle's invariant check would blame
        the verifier for the generator's own violations.  Every variable
        written into a ``min_value`` field must carry a GE guard."""
        for seed in range(120):
            case = generate_case(seed)
            for path in (case.p, case.q):
                guarded = {
                    node.left.name
                    for cmd in path.commands
                    for node in cmd.walk_exprs()
                    if isinstance(node, E.Cmp)
                    and isinstance(node.left, E.Var)
                }
                for cmd in path.commands:
                    for node in cmd.walk_exprs():
                        if not isinstance(node, (E.SetField, E.MapSet)):
                            continue
                        model = node.type.model
                        f = case.schema.model(model).field(node.field)
                        if f.min_value is None:
                            continue
                        if isinstance(node.value, E.Var):
                            assert node.value.name in guarded, (seed, path.name)


class TestConfig:
    def test_schema_only_generation(self):
        import random

        schema = generate_schema(random.Random(9), GenConfig())
        schema.validate()
        assert 1 <= len(schema.models) <= 2
