"""Unit tests for the SOIR type system and schema metadata."""

import pytest

from repro.soir import FieldSchema, ModelSchema, RelationSchema, Schema, SchemaError, make_model
from repro.soir.types import (
    BOOL,
    DATETIME,
    FLOAT,
    INT,
    STRING,
    Comparator,
    Direction,
    DRelation,
    ListType,
    ObjType,
    Order,
    RefType,
    SetType,
    obj,
    qset,
    ref,
    scalar_types,
)


class TestTypes:
    def test_scalar_strs(self):
        assert str(BOOL) == "Bool"
        assert str(INT) == "Int"
        assert str(FLOAT) == "Float"
        assert str(STRING) == "String"
        assert str(DATETIME) == "Datetime"

    def test_model_types(self):
        assert str(obj("User")) == "Obj<User>"
        assert str(qset("User")) == "Set<User>"
        assert str(ref("User")) == "Ref<User>"
        assert obj("User").model == "User"
        assert qset("User").is_model_type()
        assert not INT.is_model_type()

    def test_model_property_rejects_scalars(self):
        with pytest.raises(TypeError):
            _ = INT.model

    def test_structural_equality(self):
        assert obj("A") == ObjType("A")
        assert obj("A") != obj("B")
        assert qset("A") != obj("A")
        assert ListType(INT) == ListType(INT)
        assert hash(ref("X")) == hash(RefType("X"))

    def test_types_usable_as_dict_keys(self):
        d = {obj("A"): 1, qset("A"): 2, INT: 3}
        assert d[ObjType("A")] == 1
        assert d[SetType("A")] == 2

    def test_scalar_types_listing(self):
        assert INT in scalar_types()
        assert len(scalar_types()) == 5

    def test_drelation_str(self):
        assert str(DRelation("author", Direction.FORWARD)) == "author+"
        assert str(DRelation("author", Direction.BACKWARD)) == "author-"

    def test_enum_strs(self):
        assert str(Comparator.LE) == "<="
        assert str(Order.ASC) == "asc"


class TestSchema:
    def test_make_model_adds_pk(self):
        m = make_model("T", {"x": INT})
        assert m.pk == "id"
        assert m.has_field("id")
        assert m.pk_field.unique

    def test_make_model_custom_pk(self):
        m = make_model("U", {"name": STRING}, pk="name", auto_pk=False)
        assert m.pk == "name"
        assert not m.auto_pk
        assert m.field("name").unique

    def test_duplicate_field_rejected(self):
        with pytest.raises(SchemaError):
            ModelSchema("T", (FieldSchema("x", INT), FieldSchema("x", INT)), pk="x")

    def test_missing_pk_rejected(self):
        with pytest.raises(SchemaError):
            ModelSchema("T", (FieldSchema("x", INT),), pk="id")

    def test_unique_together_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            make_model("T", {"x": INT}, unique_together=(("x", "nope"),))

    def test_field_lookup_error(self):
        m = make_model("T", {"x": INT})
        with pytest.raises(SchemaError):
            m.field("missing")

    def test_relation_kind_validation(self):
        with pytest.raises(SchemaError):
            RelationSchema("r", "A", "B", kind="weird")
        with pytest.raises(SchemaError):
            RelationSchema("r", "A", "B", on_delete="explode")

    def test_schema_cross_validation(self):
        s = Schema()
        s.add_model(make_model("A", {}))
        s.add_relation(RelationSchema("r", "A", "Missing"))
        with pytest.raises(SchemaError):
            s.validate()

    def test_duplicate_model_rejected(self):
        s = Schema()
        s.add_model(make_model("A", {}))
        with pytest.raises(SchemaError):
            s.add_model(make_model("A", {}))

    def test_relations_of(self):
        s = Schema()
        s.add_model(make_model("A", {}))
        s.add_model(make_model("B", {}))
        s.add_relation(RelationSchema("r", "A", "B"))
        assert [r.name for r in s.relations_of("A")] == ["r"]
        assert [r.name for r in s.relations_of("B")] == ["r"]

    def test_stats(self):
        s = Schema()
        s.add_model(make_model("A", {}))
        assert s.stats() == {"models": 1, "relations": 0}
