"""The directed differential-test engine: probes are honest verdict
estimators, mutation operators only emit valid cases, walks are pure
functions of their seed (so split runs compose), the directed arm beats
the random arm at equal budget, and the isolation axis is monotone.
"""

from __future__ import annotations

import random

import pytest

from repro.difftest.directed import (
    _OPERATORS,
    DirectedConfig,
    mutate_case,
    probe_case,
    run_directed,
)
from repro.difftest.gen import generate_case, generate_case_k
from repro.difftest.oracle import (
    ISOLATION_LEVELS,
    OracleConfig,
    first_divergence_level,
    run_oracle,
)
from repro.soir.validate import validate_path
from repro.verifier.restrictions import (
    CheckResult,
    Counterexample,
    Outcome,
    check_result_from_obj,
    check_result_to_obj,
)

pytestmark = pytest.mark.difftest

QUICK = DirectedConfig(budget=90)


class TestProbe:
    def test_divergent_pair_probes_restricted(self):
        # seed 0's pair diverges (see test_difftest_shrink.py)
        case = generate_case(0)
        ev = probe_case(case.schema, case.paths, QUICK)
        assert ev.restricted
        assert 0.0 < ev.score <= 1.0
        assert ev.div_frac > 0.0
        assert ev.hot, "divergences must report touched cells"

    def test_unrestricted_scores_above_one(self):
        found = None
        for seed in range(30):
            case = generate_case(seed)
            ev = probe_case(case.schema, case.paths, QUICK)
            if not ev.restricted:
                found = ev
                break
        assert found is not None, "no unrestricted pair below seed 30"
        assert 1.0 <= found.score <= 2.0
        assert found.div_frac == 0.0

    def test_probe_is_deterministic(self):
        case = generate_case(3)
        a = probe_case(case.schema, case.paths, QUICK)
        b = probe_case(case.schema, case.paths, QUICK)
        assert (a.restricted, a.score, a.combos) == \
            (b.restricted, b.score, b.combos)

    def test_k3_probe_reports_schedule_counts(self):
        case = generate_case_k(0, 3)
        ev = probe_case(case.schema, case.paths, DirectedConfig(k=3))
        assert ev.schedules_full == 6
        assert 1 <= ev.schedules_explored <= 6


class TestMutationOperators:
    def test_mutants_are_always_valid(self):
        rng = random.Random(42)
        for seed in range(12):
            case = generate_case(seed)
            for _ in range(6):
                m = mutate_case(rng, case.schema, case.paths)
                if m is None:
                    continue
                op, schema, paths = m
                assert op in {name for name, _, _ in _OPERATORS}
                schema.validate()
                for p in paths:
                    validate_path(p, schema)

    def test_invalid_draws_do_not_emit(self):
        """Every operator either returns a valid case or None — no
        half-mutated output escapes."""
        rng = random.Random(7)
        case = generate_case(1)
        for name, _, fn in _OPERATORS:
            for _ in range(4):
                result = fn(rng, case.schema, case.paths,
                            frozenset())
                if result is None:
                    continue
                schema, paths = result
                # validity is enforced by mutate_case; raw operators may
                # occasionally produce invalid cases, but they must
                # always produce *structurally complete* ones
                assert len(paths) == len(case.paths)

    def test_mutation_changes_the_case(self):
        rng = random.Random(9)
        case = generate_case(2)
        m = mutate_case(rng, case.schema, case.paths)
        assert m is not None
        _, schema, paths = m
        assert (schema, paths) != (case.schema, case.paths)


class TestDeterminismAndComposition:
    def test_same_run_twice_is_identical(self):
        a = run_directed(2, config=DirectedConfig(budget=40))
        b = run_directed(2, config=DirectedConfig(budget=40))
        assert a.evals == b.evals
        assert a.boundary_keys == b.boundary_keys
        assert [f.to_obj() for f in a.flips] == [f.to_obj() for f in b.flips]

    def test_split_runs_compose(self):
        """--seeds 5 equals --seeds 3 plus --start 3 --seeds 2 when the
        per-seed budget is held fixed: walks never share state across
        seeds, so the distinct-boundary set is a union."""
        full = run_directed(3, config=DirectedConfig(budget=90))
        a = run_directed(2, config=DirectedConfig(budget=60))
        b = run_directed(1, start=2, config=DirectedConfig(budget=30))
        assert full.distinct_flips > 0, "seed block lost its flips"
        assert full.boundary_keys == a.boundary_keys | b.boundary_keys
        assert full.evals == a.evals + b.evals


class TestDirectedBeatsRandom:
    def test_more_distinct_flips_at_equal_budget(self):
        """The point of the PR: at the same probe budget over the same
        seed block, scored boundary walking discovers strictly more
        distinct verdict-flip boundary cases than unscored mutation.
        (The full 300-eval comparison lives in
        benchmarks/bench_directed_ab.py.)"""
        directed = run_directed(3, config=DirectedConfig(budget=90))
        rand = run_directed(
            3, config=DirectedConfig(budget=90, mode="random"),
        )
        assert directed.evals == rand.evals
        assert directed.distinct_flips > rand.distinct_flips

    def test_clean_runs_exit_clean(self):
        report = run_directed(3, config=DirectedConfig(budget=90))
        assert report.clean
        obj = report.to_obj()
        assert obj["distinct_flips"] == report.distinct_flips
        assert obj["mode"] == "directed"


class TestKPathWalk:
    def test_k3_walk_runs_clean(self):
        """A k=3 walk probes DPOR-pruned schedules; any flip localizes
        its divergence to an adjacent pair and consults both engines —
        which must agree with the concrete evidence."""
        report = run_directed(2, config=DirectedConfig(budget=50, k=3))
        assert report.evals == 50
        assert report.clean
        for flip in report.flips:
            assert len(flip.paths) == 3
            assert flip.first_level is None  # pair-only taxonomy

    def test_k3_walk_is_deterministic(self):
        a = run_directed(1, config=DirectedConfig(budget=20, k=3))
        b = run_directed(1, config=DirectedConfig(budget=20, k=3))
        assert a.boundary_keys == b.boundary_keys


class TestIsolationAxis:
    CFG = OracleConfig(max_states=10, max_env_pairs=16)

    def _divergent_pair(self):
        for seed in range(20):
            case = generate_case(seed)
            if run_oracle(case.p, case.q, case.schema,
                          self.CFG).any_witness is not None:
                return case
        pytest.skip("no divergent pair below seed 20")

    def test_levels_are_monotone(self):
        """Admissibility only widens along por -> causal -> eventual: a
        witness admitted at a stronger level survives at every weaker
        one."""
        import dataclasses

        case = self._divergent_pair()
        witnessed = []
        for level in ISOLATION_LEVELS:
            cfg = dataclasses.replace(self.CFG, isolation=level)
            report = run_oracle(case.p, case.q, case.schema, cfg)
            witnessed.append(report.any_witness is not None)
        # once True, never False again
        assert witnessed == sorted(witnessed) or witnessed[0], \
            f"non-monotone isolation axis: {witnessed}"
        first = True
        for earlier, later in zip(witnessed, witnessed[1:]):
            assert not (earlier and not later), witnessed
            first = False
        assert first is False  # looped at least once

    def test_first_divergence_level(self):
        case = self._divergent_pair()
        level = first_divergence_level(case.p, case.q, case.schema,
                                       self.CFG)
        assert level in ISOLATION_LEVELS

    def test_unknown_level_rejected(self):
        case = generate_case(0)
        import dataclasses

        cfg = dataclasses.replace(self.CFG, isolation="serializable")
        with pytest.raises(ValueError):
            run_oracle(case.p, case.q, case.schema, cfg)

    def test_run_directed_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            run_directed(1, config=DirectedConfig(budget=4,
                                                  isolation="strong"))


class TestWitnessPlumbing:
    def test_enum_witness_carries_structured_envs(self):
        """The enumerative checker's counterexamples expose their
        argument environments as dicts — what directed difftest
        harvests for witness seeding."""
        from repro.verifier.enumcheck import CheckConfig
        from repro.verifier.runner import verify_pair

        for seed in range(25):
            case = generate_case(seed)
            verdict = verify_pair(case.p, case.q, case.schema,
                                  CheckConfig(timeout_s=5.0),
                                  engine="enum")
            for check in (verdict.commutativity, verdict.semantic):
                if (check is not None and check.outcome is Outcome.FAIL
                        and check.witness is not None
                        and check.witness.args_p):
                    assert isinstance(check.witness.env_p, dict)
                    assert isinstance(check.witness.env_q, dict)
                    return
        pytest.skip("no enum FAIL with witness below seed 25")

    def test_counterexample_env_roundtrip(self):
        result = CheckResult(
            left="P", right="Q", kind="commutativity",
            outcome=Outcome.FAIL,
            witness=Counterexample(
                description="diverges", state="{}",
                args_p="{'x': 1}", args_q="{'y': 's1'}",
                env_p={"x": 1}, env_q={"y": "s1"},
            ),
        )
        back = check_result_from_obj(check_result_to_obj(result))
        assert back.witness.env_p == {"x": 1}
        assert back.witness.env_q == {"y": "s1"}

    def test_legacy_witness_objects_still_load(self):
        obj = check_result_to_obj(CheckResult(
            left="P", right="Q", kind="semantic", outcome=Outcome.FAIL,
            witness=Counterexample(description="old"),
        ))
        del obj["witness"]["env_p"], obj["witness"]["env_q"]
        back = check_result_from_obj(obj)
        assert back.witness.env_p is None


class TestMetrics:
    def test_directed_families_are_registered(self):
        from repro.metrics.registry import FAMILIES

        for name in (
            "noctua_difftest_directed_evals_total",
            "noctua_difftest_directed_flips_total",
            "noctua_difftest_directed_mutations_total",
            "noctua_difftest_directed_schedules",
        ):
            assert name in FAMILIES
