"""Tests for the benchmark trajectory and its regression gate:
``benchmarks/bench_pair_sweep.py`` appends one dated entry per run, and
``tools/bench_gate.py`` fails when the latest entry regressed beyond the
threshold against the most recent comparable baseline."""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _load(name: str, path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


bench_gate = _load("bench_gate", REPO_ROOT / "tools" / "bench_gate.py")
bench_sweep = _load("bench_pair_sweep",
                    REPO_ROOT / "benchmarks" / "bench_pair_sweep.py")


def entry(date: str, cold_wall: float, cold_solve: float, *,
          smoke: bool = True, jobs: int = 2,
          apps: tuple[str, ...] = ("courseware", "todo")) -> dict:
    return {
        "date": date,
        "smoke": smoke,
        "jobs": jobs,
        "apps": list(apps),
        "totals": {
            "cold_wall_s": cold_wall,
            "cold_solve_s": cold_solve,
            "warm_wall_s": 0.1,
            "parallel_wall_s": 0.2,
        },
        "per_app": {},
    }


def write_trajectory(path: pathlib.Path, entries: list[dict]) -> str:
    path.write_text(json.dumps(
        {"benchmark": "pair_sweep", "current": {}, "trajectory": entries}))
    return str(path)


class TestBenchGate:
    def test_regression_fails(self, tmp_path, capsys):
        """The acceptance case: an injected +50% cold-wall regression
        must exit non-zero at the default +25% threshold."""
        path = write_trajectory(tmp_path / "bench.json", [
            entry("2026-08-01", 10.0, 8.0),
            entry("2026-08-08", 15.0, 8.1),
        ])
        assert bench_gate.main(["--file", path]) == 1
        err = capsys.readouterr().err
        assert "FAIL" in err and "cold wall time" in err

    def test_within_threshold_passes(self, tmp_path):
        path = write_trajectory(tmp_path / "bench.json", [
            entry("2026-08-01", 10.0, 8.0),
            entry("2026-08-08", 11.0, 8.5),
        ])
        assert bench_gate.main(["--file", path]) == 0

    def test_threshold_is_configurable(self, tmp_path):
        path = write_trajectory(tmp_path / "bench.json", [
            entry("2026-08-01", 10.0, 8.0),
            entry("2026-08-08", 15.0, 8.0),
        ])
        assert bench_gate.main(
            ["--file", path, "--threshold", "1.0"]) == 0
        assert bench_gate.main(
            ["--file", path, "--threshold", "0.4"]) == 1

    def test_improvement_passes(self, tmp_path):
        path = write_trajectory(tmp_path / "bench.json", [
            entry("2026-08-01", 10.0, 8.0),
            entry("2026-08-08", 5.0, 4.0),
        ])
        assert bench_gate.main(["--file", path]) == 0

    def test_single_entry_seeds_trajectory(self, tmp_path, capsys):
        path = write_trajectory(tmp_path / "bench.json",
                                [entry("2026-08-08", 10.0, 8.0)])
        assert bench_gate.main(["--file", path]) == 0
        assert "no comparable baseline" in capsys.readouterr().out

    def test_different_config_is_not_a_baseline(self, tmp_path, capsys):
        """A full run never gates against a smoke run (and vice versa):
        the configurations are not comparable."""
        path = write_trajectory(tmp_path / "bench.json", [
            entry("2026-08-01", 1.0, 0.5, smoke=False, jobs=4),
            entry("2026-08-08", 50.0, 40.0),
        ])
        assert bench_gate.main(["--file", path]) == 0
        assert "no comparable baseline" in capsys.readouterr().out

    def test_baseline_skips_interleaved_other_configs(self, tmp_path):
        path = write_trajectory(tmp_path / "bench.json", [
            entry("2026-08-01", 10.0, 8.0),
            entry("2026-08-05", 1.0, 0.5, jobs=8),
            entry("2026-08-08", 15.1, 8.0),
        ])
        assert bench_gate.main(["--file", path]) == 1

    def test_missing_file_fails(self, tmp_path):
        assert bench_gate.main(
            ["--file", str(tmp_path / "absent.json")]) == 1

    def test_no_trajectory_fails(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"benchmark": "pair_sweep",
                                    "apps": {}}))
        assert bench_gate.main(["--file", str(path)]) == 1

    def test_zero_baseline_is_skipped(self, tmp_path):
        path = write_trajectory(tmp_path / "bench.json", [
            entry("2026-08-01", 0.0, 0.0),
            entry("2026-08-08", 99.0, 99.0),
        ])
        assert bench_gate.main(["--file", path]) == 0

    def test_solver_calls_regression_fails(self, tmp_path, capsys):
        """The reduction layer's headline number is gated: a sweep that
        suddenly issues far more solver calls fails even when wall time
        happens to be flat."""
        old = entry("2026-08-01", 10.0, 8.0)
        old["totals"]["solver_calls"] = 40
        new = entry("2026-08-08", 10.0, 8.0)
        new["totals"]["solver_calls"] = 80
        path = write_trajectory(tmp_path / "bench.json", [old, new])
        assert bench_gate.main(["--file", path]) == 1
        assert "solver calls" in capsys.readouterr().err

    def test_solver_calls_absent_baseline_is_skipped(self, tmp_path):
        """Entries committed before the reduction metrics existed carry
        no solver_calls total; the gate must not fail on them."""
        old = entry("2026-08-01", 10.0, 8.0)
        new = entry("2026-08-08", 10.0, 8.0)
        new["totals"]["solver_calls"] = 80
        path = write_trajectory(tmp_path / "bench.json", [old, new])
        assert bench_gate.main(["--file", path]) == 0

    def test_reduction_counts_are_reported_not_gated(self, tmp_path,
                                                     capsys):
        """class_count / pruned_pairs shifts are informative only."""
        old = entry("2026-08-01", 10.0, 8.0)
        old["totals"].update(class_count=30, pruned_pairs=100)
        new = entry("2026-08-08", 10.0, 8.0)
        new["totals"].update(class_count=90, pruned_pairs=1)
        path = write_trajectory(tmp_path / "bench.json", [old, new])
        assert bench_gate.main(["--file", path]) == 0
        out = capsys.readouterr().out
        assert "signature classes" in out and "not gated" in out


def app_row(name: str, cold_wall: float, cold_solve: float) -> dict:
    """A benchmark result row in the shape ``sweep_app`` produces."""
    return {
        "app": name,
        "modes": {
            "cold": {"wall_s": cold_wall, "solve_s": cold_solve},
            "warm": {"wall_s": 0.1, "solve_s": 0.0},
            "parallel": {"wall_s": 0.3, "solve_s": cold_solve},
        },
    }


class TestTrajectory:
    def test_entry_shape(self):
        result = {
            "smoke": True,
            "jobs": 2,
            "apps": [
                app_row("todo", 2.0, 1.5),
                app_row("courseware", 1.0, 0.5),
            ],
        }
        made = bench_sweep.trajectory_entry(result, date="2026-08-08",
                                            label="pr")
        assert made["date"] == "2026-08-08"
        assert made["label"] == "pr"
        assert made["apps"] == ["courseware", "todo"]  # sorted
        assert made["totals"]["cold_wall_s"] == pytest.approx(3.0)
        assert made["totals"]["cold_solve_s"] == pytest.approx(2.0)
        assert bench_gate.config_key(made) == (True, 2,
                                               ("courseware", "todo"))

    def test_load_trajectory_passes_through(self, tmp_path):
        path = tmp_path / "bench.json"
        entries = [entry("2026-08-01", 1.0, 0.5)]
        write_trajectory(path, entries)
        assert bench_sweep.load_trajectory(path) == entries

    def test_load_trajectory_migrates_legacy_file(self, tmp_path):
        """A pre-trajectory file (top-level ``apps`` dict, no
        ``trajectory``) becomes a one-entry trajectory so the first run
        after the migration still has a baseline."""
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "benchmark": "pair_sweep",
            "smoke": True,
            "jobs": 2,
            "apps": [app_row("todo", 2.0, 1.5)],
        }))
        trajectory = bench_sweep.load_trajectory(path)
        assert len(trajectory) == 1
        assert trajectory[0]["date"] == "(pre-trajectory)"
        assert trajectory[0]["apps"] == ["todo"]
        assert trajectory[0]["totals"]["cold_wall_s"] == pytest.approx(2.0)

    def test_load_trajectory_tolerates_garbage(self, tmp_path):
        path = tmp_path / "bench.json"
        assert bench_sweep.load_trajectory(path) == []  # absent
        path.write_text("not json")
        assert bench_sweep.load_trajectory(path) == []
        path.write_text("[1, 2, 3]")
        assert bench_sweep.load_trajectory(path) == []
