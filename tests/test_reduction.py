"""Tests for the pre-solve reduction pipeline and the portfolio engine.

Covers the three layers that cut the O(n²) pair wall down to size:

* signature equivalence classes — canonicalization up to renaming,
  member → representative renamings, verdict sharing with provenance;
* read/write disjointness pruning — footprint extraction and the
  soundness obligation (a prune must agree with the solver);
* the racing portfolio engine — serial and pooled, agreement samples;

plus the headline acceptance property: for every builtin app the
reduced sweep produces byte-identical restriction sets to the
unreduced one, while issuing strictly fewer solver calls.
"""

from __future__ import annotations

import json

import pytest

from repro.analyzer import analyze_application
from repro.engine import ResultCache, run_pair_sweep
from repro.engine.cache import CACHE_FORMAT, _safe_name
from repro.engine.fingerprint import FingerprintContext
from repro.engine.reduction import (
    ROUTE_PRUNED,
    ROUTE_SHARED,
    ROUTE_SOLVE,
    canonical_pair,
    plan_sweep,
    renaming_between,
    rw_disjoint,
    rw_footprint,
    shared_verdict,
)
from repro.soir import CodePath, Schema, commands as C, expr as E, make_model
from repro.soir.types import INT, STRING
from repro.verifier import CheckConfig, verify_application, verify_pair
from repro.verifier.runner import PRUNE_RW, classify_pair

from helpers import blog_schema

#: fast but exact enough for the small builtin apps
CFG = CheckConfig(timeout_s=30.0, max_samples=60, max_exhaustive=800)

BUILTIN_APPS = ("todo", "postgraduation", "zhihu", "ownphotos",
                "smallbank", "courseware")


def build_builtin(name: str):
    import importlib

    return importlib.import_module(f"repro.apps.{name}").build_app()


def bump_path(name: str, model: str, field: str, pk: int = 1) -> CodePath:
    """``model[pk].field += 1`` — the canonical isomorphic-path shape."""
    return CodePath(name, (), (
        C.Update(E.Singleton(E.SetField(
            field,
            E.BinOp("+", E.FieldGet(E.Deref(E.intlit(pk), model),
                                    field, INT), E.intlit(1)),
            E.Deref(E.intlit(pk), model),
        ))),
    ))


def setcol_path(name: str, model: str, field: str, pk: int = 1) -> CodePath:
    """``model.filter(id=pk).update(field=pk)`` — a query-set update.

    Unlike :func:`bump_path` this can only touch rows that already
    exist (a filter over state never yields a ghost), so its write
    footprint is exactly the one column.
    """
    return CodePath(name, (), (
        C.Update(E.MapSet(
            E.Filter(E.All(model), (), "id", E.Comparator.EQ, E.intlit(pk)),
            field, E.intlit(pk))),
    ))


def two_counter_schema() -> Schema:
    """Alpha and Gamma are isomorphic (two INT columns); Beta is not."""
    schema = Schema()
    schema.add_model(make_model("Alpha", {"x": INT, "y": INT}))
    schema.add_model(make_model("Gamma", {"u": INT, "v": INT}))
    schema.add_model(make_model("Beta", {"z": INT, "label": STRING}))
    schema.validate()
    return schema


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------


class TestCanonicalPair:
    def test_isomorphic_pairs_share_a_class(self):
        schema = two_counter_schema()
        key_a, _ = canonical_pair(bump_path("pa", "Alpha", "x"),
                                  bump_path("qa", "Alpha", "x"), schema)
        key_b, _ = canonical_pair(bump_path("pb", "Gamma", "u"),
                                  bump_path("qb", "Gamma", "u"), schema)
        assert key_a == key_b  # model and field names canonicalize away

    def test_shape_differences_block_sharing(self):
        # Beta's second column is a STRING: the touched-model shape
        # differs, so the problems stay in separate classes
        schema = two_counter_schema()
        key_a, _ = canonical_pair(bump_path("pa", "Alpha", "x"),
                                  bump_path("qa", "Alpha", "x"), schema)
        key_b, _ = canonical_pair(bump_path("pb", "Beta", "z"),
                                  bump_path("qb", "Beta", "z"), schema)
        assert key_a != key_b

    def test_field_declaration_order_blocks_sharing(self):
        # state enumeration is seeded by declaration order, so bumping
        # the second column is a different search problem from the first
        schema = two_counter_schema()
        key_x, _ = canonical_pair(bump_path("p", "Alpha", "x"),
                                  bump_path("q", "Alpha", "x"), schema)
        key_y, _ = canonical_pair(bump_path("p", "Alpha", "y"),
                                  bump_path("q", "Alpha", "y"), schema)
        assert key_x != key_y

    def test_distinct_problems_never_merge(self):
        schema = two_counter_schema()
        inc = bump_path("p", "Alpha", "x")
        delete = CodePath("d", (), (C.Delete(E.All("Alpha")),))
        key_inc, _ = canonical_pair(inc, inc, schema)
        key_mixed, _ = canonical_pair(inc, delete, schema)
        assert key_inc != key_mixed

    def test_cross_model_pairs_differ_from_same_model_pairs(self):
        # x+=1 / y+=1 on ONE model is a different problem from
        # x+=1 / z+=1 on two disjoint models
        schema = two_counter_schema()
        same, _ = canonical_pair(bump_path("p", "Alpha", "x"),
                                 bump_path("q", "Alpha", "y"), schema)
        cross, _ = canonical_pair(bump_path("p", "Alpha", "x"),
                                  bump_path("q", "Beta", "z"), schema)
        assert same != cross

    def test_deterministic(self):
        schema = blog_schema()
        p = CodePath("p", (), (C.Delete(E.All("Comment")),))
        q = CodePath("q", (), (C.Delete(E.All("Article")),))
        assert canonical_pair(p, q, schema)[0] == \
            canonical_pair(p, q, schema)[0]

    def test_renaming_between_recovers_the_member_map(self):
        schema = two_counter_schema()
        _, member_maps = canonical_pair(bump_path("p", "Gamma", "u"),
                                        bump_path("q", "Gamma", "u"), schema)
        _, rep_maps = canonical_pair(bump_path("p", "Alpha", "x"),
                                     bump_path("q", "Alpha", "x"), schema)
        renaming = renaming_between(member_maps, rep_maps)
        assert renaming["model"] == {"Gamma": "Alpha"}
        assert renaming["field"]["u"] == "x"

    def test_identity_renaming_is_empty(self):
        schema = two_counter_schema()
        _, maps = canonical_pair(bump_path("p", "Alpha", "x"),
                                 bump_path("q", "Alpha", "x"), schema)
        assert renaming_between(maps, maps) == {}


# ---------------------------------------------------------------------------
# Read/write footprints
# ---------------------------------------------------------------------------


class TestRwFootprint:
    def test_queryset_update_writes_only_its_column(self):
        schema = two_counter_schema()
        reads, writes = rw_footprint(setcol_path("p", "Alpha", "y"), schema)
        assert writes == {("field", "Alpha", "y")}
        assert ("field", "Alpha", "id") in reads  # the filter predicate
        assert ("rows", "Alpha") in reads         # the filter's domain
        assert not any(tok[1] == "Beta" for tok in reads | writes
                       if len(tok) > 1)

    def test_upserting_update_writes_the_full_row(self):
        # Deref of a missing pk ghosts under apply semantics and the
        # merge *inserts* the ghost, so a Deref-rooted update writes
        # row existence and every (defaulted) column of the model.
        schema = two_counter_schema()
        reads, writes = rw_footprint(bump_path("p", "Alpha", "x"), schema)
        assert ("rows", "Alpha") in writes
        assert ("field", "Alpha", "x") in writes
        assert ("field", "Alpha", "y") in writes  # ghost default
        assert ("field", "Alpha", "x") in reads   # the increment reads it
        assert ("rows", "Alpha") in reads

    def test_delete_writes_row_existence(self):
        schema = two_counter_schema()
        path = CodePath("d", (), (C.Delete(E.All("Alpha")),))
        _, writes = rw_footprint(path, schema)
        assert ("rows", "Alpha") in writes

    def test_delete_cascades_into_relations(self):
        schema = blog_schema()
        path = CodePath("d", (), (C.Delete(E.All("Comment")),))
        _, writes = rw_footprint(path, schema)
        assert ("rows", "Comment") in writes
        assert ("assoc", "Comment.user") in writes

    def test_disjoint_models_commute(self):
        schema = two_counter_schema()
        assert rw_disjoint(bump_path("p", "Alpha", "x"),
                           bump_path("q", "Beta", "z"), schema)

    def test_disjoint_columns_of_one_model_commute(self):
        schema = two_counter_schema()
        assert rw_disjoint(setcol_path("p", "Alpha", "x"),
                           setcol_path("q", "Alpha", "y"), schema)

    def test_write_write_overlap_is_not_disjoint(self):
        schema = two_counter_schema()
        assert not rw_disjoint(setcol_path("p", "Alpha", "x"),
                               setcol_path("q", "Alpha", "x"), schema)

    def test_upsert_conflicts_with_row_observers(self):
        # Regression: ownphotos' AutoCaption (deref-rooted, can create
        # the row) vs HidePhoto (filter-rooted, observes row existence)
        # diverge on a missing pk — one order creates an unhidden row,
        # the other hides it.  The creating side must not rw-prune
        # against anything that reads the model's population, even when
        # the nominally updated columns are different.
        schema = two_counter_schema()
        assert not rw_disjoint(bump_path("p", "Alpha", "x"),
                               setcol_path("q", "Alpha", "y"), schema)
        assert not rw_disjoint(bump_path("p", "Alpha", "x"),
                               bump_path("q", "Alpha", "y"), schema)

    def test_delete_conflicts_with_any_touch_of_the_model(self):
        schema = two_counter_schema()
        delete = CodePath("d", (), (C.Delete(E.All("Alpha")),))
        assert not rw_disjoint(bump_path("p", "Alpha", "x"), delete, schema)

    def test_rw_prune_is_sound_against_the_solver(self):
        """Every pair the rw layer prunes must pass both checks when the
        solver actually runs it.  Cross-model pairs are caught by the
        older disjoint-footprint prune; rw-disjointness earns its keep
        on same-model pairs touching different columns."""
        schema = two_counter_schema()
        p = setcol_path("p", "Alpha", "x")
        q = setcol_path("q", "Alpha", "y")
        classified = classify_pair(p, q, schema, CFG, rw=True)
        assert classified is not None and classified[1] == PRUNE_RW
        solved = verify_pair(p, q, schema, CFG)
        assert not solved.restricted

    def test_pruned_verdict_carries_provenance(self):
        schema = two_counter_schema()
        verdict, tag = classify_pair(setcol_path("p", "Alpha", "x"),
                                     setcol_path("q", "Alpha", "y"),
                                     schema, CFG, rw=True)
        assert tag == PRUNE_RW
        assert verdict.provenance == {"source": "pruned", "tag": PRUNE_RW}
        assert not verdict.restricted


# ---------------------------------------------------------------------------
# Sweep planning and verdict sharing
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def smallbank_analysis():
    return analyze_application(build_builtin("smallbank"))


class TestPlanSweep:
    def test_reduction_shrinks_the_solve_set(self, smallbank_analysis):
        full = plan_sweep(smallbank_analysis, CFG, reduce=False)
        reduced = plan_sweep(smallbank_analysis, CFG, reduce=True)
        assert len(full.pairs) == len(reduced.pairs)
        assert reduced.solver_calls < full.solver_calls
        assert reduced.shared > 0
        assert reduced.classes == reduced.solver_calls

    def test_shared_members_point_at_solved_representatives(
            self, smallbank_analysis):
        plan = plan_sweep(smallbank_analysis, CFG, reduce=True)
        by_slot = {p.slot: p for p in plan.pairs}
        shared = [p for p in plan.pairs if p.route == ROUTE_SHARED]
        assert shared
        for member in shared:
            rep = by_slot[member.rep_slot]
            assert rep.route == ROUTE_SOLVE
            assert rep.class_key == member.class_key
            assert rep.slot < member.slot  # first member represents

    def test_shared_verdict_relabel(self, smallbank_analysis):
        plan = plan_sweep(smallbank_analysis, CFG, reduce=True)
        by_slot = {p.slot: p for p in plan.pairs}
        member = next(p for p in plan.pairs if p.route == ROUTE_SHARED)
        rep = by_slot[member.rep_slot]
        rep_verdict = verify_pair(rep.left, rep.right,
                                  smallbank_analysis.schema, CFG)
        out = shared_verdict(rep_verdict, member)
        assert out.left == member.left.name
        assert out.right == member.right.name
        assert out.restricted == rep_verdict.restricted
        assert out.commutativity.elapsed_s == 0.0
        prov = out.provenance
        assert prov["source"] == "shared"
        assert prov["class"] == member.class_key
        assert prov["representative"] == [rep_verdict.left, rep_verdict.right]

    def test_preview_equals_actual_solver_calls(self, smallbank_analysis):
        """The daemon's invalidation preview and the sweep execute the
        same plan — the invariant SERVICE.md promises."""
        plan = plan_sweep(smallbank_analysis, CFG, reduce=True)
        report = run_pair_sweep(smallbank_analysis, CFG)
        assert len(plan.invalidated()) == plan.solver_calls
        assert report.metrics["solver_calls"] == plan.solver_calls
        assert report.metrics["shared"] == plan.shared
        assert report.metrics["class_count"] == plan.classes


class TestReductionProperty:
    @pytest.mark.parametrize("app", [
        app if app != "zhihu" else pytest.param(app, marks=pytest.mark.slow)
        for app in BUILTIN_APPS if app != "ownphotos"
    ])
    def test_reduced_sweep_is_byte_identical(self, app):
        """Acceptance bar: reduction changes solver-call counts, never
        restriction sets."""
        analysis = analyze_application(build_builtin(app))
        full = verify_application(analysis, CFG, reduce=False)
        reduced = verify_application(analysis, CFG, reduce=True)
        assert reduced.to_json_obj()["restrictions"] == \
            full.to_json_obj()["restrictions"]
        assert reduced.metrics["solver_calls"] <= full.metrics["solver_calls"]

    @pytest.mark.slow
    def test_ownphotos_reduction_agrees_with_direct_solves(self):
        """The same byte-identity property for the largest builtin app
        (135 effectful paths, ~9k pairs), checked compositionally: a
        full unreduced sweep re-solves ~5k pairs and takes minutes on
        one core, but route-``solve`` pairs issue literally identical
        solver calls with reduction on or off, so only the pairs the
        reduction layer *rewrites* carry any information — every shared
        member must agree with a direct solve of itself (via its
        representative's verdict), and rw-pruned pairs must come back
        unrestricted when actually solved."""
        analysis = analyze_application(build_builtin("ownphotos"))
        plan = plan_sweep(analysis, CFG, reduce=True)
        by_slot = {p.slot: p for p in plan.pairs}

        shared = [p for p in plan.pairs if p.route == ROUTE_SHARED]
        assert shared, "ownphotos lost its isomorphic pair classes"
        rep_verdicts: dict[int, object] = {}
        for member in shared:
            rep = by_slot[member.rep_slot]
            if rep.slot not in rep_verdicts:
                rep_verdicts[rep.slot] = verify_pair(
                    rep.left, rep.right, analysis.schema, CFG)
            direct = verify_pair(member.left, member.right,
                                 analysis.schema, CFG)
            assert direct.restricted == rep_verdicts[rep.slot].restricted, (
                f"shared verdict diverges from direct solve: "
                f"{member.left.name} x {member.right.name} (rep "
                f"{rep.left.name} x {rep.right.name})")

        # rw-pruned pairs never reach a solver in a reduced sweep; a
        # deterministic sample must prove unrestricted when one runs
        # (the structural argument lives in TestRwFootprint).
        pruned = [p for p in plan.pairs
                  if p.route == ROUTE_PRUNED and p.tag == PRUNE_RW]
        assert pruned, "ownphotos lost its rw-disjoint prunes"
        step = max(1, len(pruned) // 40)
        for pair_plan in pruned[::step]:
            direct = verify_pair(pair_plan.left, pair_plan.right,
                                 analysis.schema, CFG)
            assert not direct.restricted, (
                f"rw-pruned pair restricts when solved: "
                f"{pair_plan.left.name} x {pair_plan.right.name}")


# ---------------------------------------------------------------------------
# Cache interplay: class fan-out, format 2, v1 migration
# ---------------------------------------------------------------------------


class TestCacheSharing:
    def test_warm_reduced_sweep_solves_nothing(self, tmp_path,
                                               smallbank_analysis):
        cold = run_pair_sweep(smallbank_analysis, CFG, use_cache=True,
                              cache_dir=str(tmp_path))
        warm = run_pair_sweep(smallbank_analysis, CFG, use_cache=True,
                              cache_dir=str(tmp_path))
        assert warm.metrics["solver_calls"] == 0
        # solved representatives and fanned-out members all replay
        assert warm.metrics["cache_hits"] == \
            cold.metrics["solver_calls"] + cold.metrics["shared"]
        assert warm.to_json_obj()["restrictions"] == \
            cold.to_json_obj()["restrictions"]

    def test_cache_file_is_format_2_with_class_keys(self, tmp_path,
                                                    smallbank_analysis):
        run_pair_sweep(smallbank_analysis, CFG, use_cache=True,
                       cache_dir=str(tmp_path))
        payload = json.loads(
            (tmp_path / f"{_safe_name('smallbank')}.json").read_text())
        assert payload["format"] == CACHE_FORMAT == 2
        classes = [e["class"] for e in payload["entries"].values()
                   if "class" in e]
        assert classes  # reduced sweeps tag entries with their class
        # shared members carry the same class key as their representative
        assert len(classes) > len(set(classes))

    def test_format_1_cache_migrates_in_place(self, tmp_path,
                                              smallbank_analysis):
        cold = run_pair_sweep(smallbank_analysis, CFG, use_cache=True,
                              cache_dir=str(tmp_path))
        cache_file = tmp_path / f"{_safe_name('smallbank')}.json"
        payload = json.loads(cache_file.read_text())
        # rewrite as a v1 file: same entries, no class tags
        payload["format"] = 1
        for entry in payload["entries"].values():
            entry.pop("class", None)
        cache_file.write_text(json.dumps(payload))

        cache = ResultCache(tmp_path, "smallbank")
        assert cache.migrated_from == 1
        assert len(cache) == len(payload["entries"])
        # a warm sweep over the migrated file still replays everything
        warm = run_pair_sweep(smallbank_analysis, CFG, use_cache=True,
                              cache_dir=str(tmp_path))
        assert warm.metrics["solver_calls"] == 0
        assert warm.to_json_obj()["restrictions"] == \
            cold.to_json_obj()["restrictions"]
        # and the migration rewrote the file at the current format
        assert json.loads(cache_file.read_text())["format"] == CACHE_FORMAT

    def test_unknown_future_format_still_quarantines(self, tmp_path):
        bad = tmp_path / "demo.json"
        bad.write_text(json.dumps({"format": 99, "app": "demo",
                                   "entries": {}}))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            cache = ResultCache(tmp_path, "demo")
        assert len(cache) == 0
        assert cache.migrated_from is None

    def test_live_fingerprints_cover_solved_and_shared(self):
        # courseware's plan exercises all three routes at once:
        # 2 pruned, 1 shared, 7 solved
        analysis = analyze_application(build_builtin("courseware"))
        fps = FingerprintContext(analysis.schema, CFG, "enum")
        plan = plan_sweep(analysis, CFG, reduce=True, fingerprints=fps)
        live = plan.live_fingerprints()
        routed = {p.route for p in plan.pairs}
        assert {ROUTE_PRUNED, ROUTE_SHARED, ROUTE_SOLVE} <= routed
        for pair_plan in plan.pairs:
            if pair_plan.route == ROUTE_PRUNED:
                assert pair_plan.fp is None
            else:
                assert pair_plan.fp in live


# ---------------------------------------------------------------------------
# Portfolio engine
# ---------------------------------------------------------------------------


class TestPortfolio:
    def test_serial_portfolio_matches_enum(self, smallbank_analysis):
        enum = verify_application(smallbank_analysis, CFG, engine="enum")
        portfolio = verify_application(smallbank_analysis, CFG,
                                       engine="portfolio")
        assert portfolio.restriction_pairs() == enum.restriction_pairs()
        wins = portfolio.metrics["portfolio_wins"]
        assert sum(wins.values()) == portfolio.metrics["solver_calls"]

    def test_pooled_portfolio_matches_enum(self, smallbank_analysis):
        enum = verify_application(smallbank_analysis, CFG, engine="enum")
        portfolio = verify_application(smallbank_analysis, CFG,
                                       engine="portfolio", jobs=2)
        assert portfolio.metrics["mode"] == "parallel"
        assert portfolio.restriction_pairs() == enum.restriction_pairs()
        wins = portfolio.metrics["portfolio_wins"]
        assert sum(wins.values()) == portfolio.metrics["solver_calls"]
        assert portfolio.metrics["portfolio_disagreements"] == 0

    def test_portfolio_lane_verdicts_are_not_cached_as_taint(
            self, tmp_path, smallbank_analysis):
        """Lane engines are the portfolio's own backends, not foreign
        fallbacks: their verdicts are cacheable."""
        cold = run_pair_sweep(smallbank_analysis, CFG, engine="portfolio",
                              use_cache=True, cache_dir=str(tmp_path))
        warm = run_pair_sweep(smallbank_analysis, CFG, engine="portfolio",
                              use_cache=True, cache_dir=str(tmp_path))
        assert cold.metrics["solver_calls"] > 0
        assert warm.metrics["solver_calls"] == 0
