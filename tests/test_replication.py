"""End-to-end PoR replication: the verifier's restriction set is exactly
what keeps replicas convergent and invariants intact.

Three demonstrations per the paper's two properties (§2.2.1):

* **sufficiency** — with the verifier's restrictions, conflicting
  workloads converge and preserve invariants;
* **necessity (convergence)** — dropping the restrictions lets a
  commutativity-failing pair diverge replicas;
* **necessity (invariants)** — dropping them lets a semantic-failing pair
  drive a balance negative, even though state still converges.
"""

import pytest

from repro.analyzer import analyze_application
from repro.apps.smallbank import build_app as build_smallbank
from repro.apps.todo import build_app as build_todo
from repro.georep.replication import PoRReplicatedSystem, run_workload
from repro.soir.state import DBState
from repro.verifier import CheckConfig, verify_application


@pytest.fixture(scope="module")
def smallbank():
    analysis = analyze_application(build_smallbank())
    report = verify_application(analysis, CheckConfig())
    return analysis, report.restriction_pairs()


@pytest.fixture(scope="module")
def todo():
    analysis = analyze_application(build_todo())
    report = verify_application(
        analysis, CheckConfig(timeout_s=1.0)
    )
    return analysis, report.restriction_pairs()


def smallbank_state(analysis) -> DBState:
    state = DBState.empty(analysis.schema)
    for name in ("alice", "bob"):
        state.insert_row(
            "Account", name, {"name": name, "checking": 10, "savings": 5}
        )
    return state


def path_by_view(analysis, view):
    return [p for p in analysis.effectful_paths if p.view == view][0]


def non_negative(state: DBState) -> bool:
    return all(
        row["checking"] >= 0 and row["savings"] >= 0
        for row in state.table("Account").values()
    )


class TestSmallBankReplication:
    def make_ops(self, analysis, n=60, seed=5):
        import random

        rng = random.Random(seed)
        transact = path_by_view(analysis, "TransactSavings")
        pay = path_by_view(analysis, "SendPayment")
        deposit = path_by_view(analysis, "DepositChecking")
        ops = []
        for _ in range(n):
            kind = rng.choice(["transact", "pay", "deposit"])
            if kind == "transact":
                ops.append((transact, {
                    "arg_url_name": rng.choice(["alice", "bob"]),
                    "arg_POST_amount": rng.choice([-5, -3, 2, 4]),
                }))
            elif kind == "pay":
                ops.append((pay, {
                    "arg_url_src": "alice", "arg_url_dst": "bob",
                    "arg_POST_amount": rng.choice([3, 8]),
                }))
            else:
                ops.append((deposit, {
                    "arg_url_name": rng.choice(["alice", "bob"]),
                    "arg_POST_amount": rng.choice([1, 2]),
                }))
        return ops

    def test_with_restrictions_invariant_holds(self, smallbank):
        analysis, restrictions = smallbank
        system = PoRReplicatedSystem(
            analysis.schema, restrictions, initial=smallbank_state(analysis)
        )
        result = run_workload(system, self.make_ops(analysis))
        assert result.accepted > 10
        assert result.submitted == result.accepted + result.rejected
        assert system.converged()
        assert system.check_invariant(non_negative)

    def test_without_restrictions_invariant_breaks(self, smallbank):
        """The semantic failures are *necessary*: un-coordinated overdrafts
        slip through when generated against stale replicas."""
        analysis, _ = smallbank
        broke = False
        for seed in range(12):
            system = PoRReplicatedSystem(
                analysis.schema, set(), seed=seed,
                initial=smallbank_state(analysis),
            )
            run_workload(system, self.make_ops(analysis, seed=seed))
            if not system.check_invariant(non_negative):
                broke = True
                break
        assert broke, "expected at least one overdraft without coordination"

    def test_effects_converge_even_without_restrictions(self, smallbank):
        """SmallBank has no commutativity failures (Table 5): state still
        converges without coordination — only the invariant is at risk."""
        analysis, _ = smallbank
        system = PoRReplicatedSystem(
            analysis.schema, set(), initial=smallbank_state(analysis)
        )
        run_workload(system, self.make_ops(analysis))
        assert system.converged()


class TestTodoReplication:
    def make_ops(self, analysis, n=40, seed=9):
        import random

        rng = random.Random(seed)
        add = path_by_view(analysis, "AddTask")
        complete = path_by_view(analysis, "CompleteTask")
        reopen = path_by_view(analysis, "ReopenTask")
        clear = path_by_view(analysis, "ClearCompleted")
        ops = []
        next_id = 1000
        for _ in range(n):
            kind = rng.choice(["add", "complete", "reopen", "clear"])
            if kind == "add":
                ops.append((add, {
                    "arg_POST_title": rng.choice(["a", "b"]),
                    "new_Task_id$1": next_id,
                    "default_Task_created$2": 1,
                }))
                next_id += 1
            elif kind == "complete":
                ops.append((complete, {"arg_url_pk": rng.choice([1, 2])}))
            elif kind == "reopen":
                ops.append((reopen, {"arg_url_pk": rng.choice([1, 2])}))
            else:
                ops.append((clear, {}))
        return ops

    def initial(self, analysis) -> DBState:
        state = DBState.empty(analysis.schema)
        for pk in (1, 2):
            state.insert_row("Task", pk, {
                "id": pk, "title": f"t{pk}", "note": "", "done": False,
                "starred": False, "priority": 0, "created": 0,
            })
        return state

    def test_with_restrictions_converges(self, todo):
        analysis, restrictions = todo
        system = PoRReplicatedSystem(
            analysis.schema, restrictions, initial=self.initial(analysis)
        )
        run_workload(system, self.make_ops(analysis))
        assert system.converged()

    def test_without_restrictions_diverges(self, todo):
        """Complete/Reopen on the same task is a commutativity failure:
        uncoordinated replicas end with different `done` bits."""
        analysis, _ = todo
        diverged = False
        for seed in range(15):
            system = PoRReplicatedSystem(
                analysis.schema, set(), seed=seed,
                initial=self.initial(analysis),
            )
            run_workload(system, self.make_ops(analysis, seed=seed))
            if not system.converged():
                diverged = True
                break
        assert diverged, "expected divergence without coordination"

    def test_restriction_set_from_verifier_includes_complete_reopen(self, todo):
        _, restrictions = todo
        assert frozenset(("CompleteTask[0]", "ReopenTask[0]")) in restrictions
