"""Tests for the simulation workload generators."""

import pytest

from repro.apps.postgraduation import build_app as build_pg
from repro.apps.zhihu import build_app as build_zhihu
from repro.georep import postgraduation_workload, zhihu_workload
from repro.orm import Database


class TestZhihuWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        app = build_zhihu()
        db = Database(app.registry)
        return app, db, zhihu_workload(app, db, write_ratio=0.5, seed=3)

    def test_seeding_populates_entities(self, workload):
        app, db, _ = workload
        with db.activate():
            assert app.registry.get_model("Profile").objects.count() == 12
            assert app.registry.get_model("Question").objects.count() == 15
            assert app.registry.get_model("Answer").objects.count() == 15

    def test_requests_route_and_execute(self, workload):
        app, db, wl = workload
        ok = 0
        for _ in range(200):
            spec = wl.next_request()
            response = app.handle(spec.to_http(), db)
            ok += response.ok
        # The vast majority succeed (double-follows legitimately 400).
        assert ok > 150

    def test_write_ratio_respected(self, workload):
        _, _, wl = workload
        writes = sum(wl.next_request().is_write for _ in range(800))
        assert 0.4 < writes / 800 < 0.6

    def test_deterministic_given_seed(self):
        def specs(seed):
            app = build_zhihu()
            db = Database(app.registry)
            wl = zhihu_workload(app, db, 0.3, seed=seed)
            return [(s.path, s.method, tuple(sorted(s.params.items())))
                    for s in (wl.next_request() for _ in range(50))]

        assert specs(7) == specs(7)
        assert specs(7) != specs(8)


class TestPostgraduationWorkload:
    def test_requests_execute(self):
        app = build_pg()
        db = Database(app.registry)
        wl = postgraduation_workload(app, db, write_ratio=0.3, seed=5)
        ok = 0
        for _ in range(200):
            spec = wl.next_request()
            response = app.handle(spec.to_http(), db)
            ok += response.ok
        assert ok > 150

    def test_reads_have_no_effect(self):
        app = build_pg()
        db = Database(app.registry)
        wl = postgraduation_workload(app, db, write_ratio=0.0, seed=5)
        before = db.state.canonical()
        for _ in range(60):
            app.handle(wl.next_request().to_http(), db)
        assert db.state.canonical() == before
