"""Tests for the Django-idiom conveniences: earliest/latest, bulk_create,
update_or_create — concretely and under analysis."""

import pytest

from repro.analyzer import analyze_application
from repro.orm import (
    Database,
    IntegerField,
    Model,
    Registry,
    TextField,
)
from repro.soir import pp_path
from repro.web import Application, HttpResponse, JsonResponse, path


@pytest.fixture(scope="module")
def env():
    registry = Registry("extras")
    with registry.use():

        class Event(Model):
            name = TextField(default="")
            at = IntegerField(default=0)

        class Setting(Model):
            key = TextField(unique=True)
            value = TextField(default="")

    def prune_oldest(request):
        oldest = Event.objects.all().earliest("at")
        oldest.delete()
        return HttpResponse(status=200)

    def set_setting(request):
        setting, created = Setting.objects.update_or_create(
            key=request.POST["key"], defaults={"value": request.POST["value"]}
        )
        return JsonResponse({"created": created}, status=201 if created else 200)

    def seed_events(request):
        Event.objects.bulk_create([
            Event(name="a", at=1),
            Event(name="b", at=2),
            Event(name="c", at=3),
        ])
        return HttpResponse(status=201)

    app = Application("extras", registry, [
        path("prune", prune_oldest, name="PruneOldest"),
        path("settings/set", set_setting, name="SetSetting"),
        path("seed", seed_events, name="SeedEvents"),
    ])

    class NS:
        pass

    ns = NS()
    ns.app, ns.registry, ns.Event, ns.Setting = app, registry, Event, Setting
    return ns


class TestConcrete:
    def test_earliest_latest(self, env):
        db = Database(env.registry)
        with db.activate():
            env.Event.objects.create(name="x", at=5)
            env.Event.objects.create(name="y", at=1)
            assert env.Event.objects.all().earliest("at").name == "y"
            assert env.Event.objects.all().latest("at").name == "x"

    def test_earliest_empty_raises(self, env):
        db = Database(env.registry)
        with db.activate():
            with pytest.raises(env.Event.DoesNotExist):
                env.Event.objects.all().earliest("at")

    def test_bulk_create(self, env):
        db = Database(env.registry)
        with db.activate():
            created = env.Event.objects.bulk_create(
                [env.Event(name="a", at=1), env.Event(name="b", at=2)]
            )
            assert len(created) == 2
            assert all(e.pk is not None for e in created)
            assert env.Event.objects.count() == 2

    def test_update_or_create(self, env):
        db = Database(env.registry)
        with db.activate():
            first, created = env.Setting.objects.update_or_create(
                key="theme", defaults={"value": "dark"}
            )
            assert created and first.value == "dark"
            second, created = env.Setting.objects.update_or_create(
                key="theme", defaults={"value": "light"}
            )
            assert not created
            assert second.pk == first.pk
            assert env.Setting.objects.get(key="theme").value == "light"
            assert env.Setting.objects.count() == 1


class TestSymbolic:
    @pytest.fixture(scope="class")
    def analysis(self, env):
        return analyze_application(env.app)

    def test_earliest_emits_order_primitive(self, analysis):
        pruned = [p for p in analysis.effectful_paths if p.view == "PruneOldest"]
        assert pruned
        text = pp_path(pruned[0])
        assert "first(orderby(at, asc, all<Event>))" in text
        assert pruned[0].uses_order()
        # The emptiness branch yields a second, non-effectful path.
        by_view = [p for p in analysis.paths if p.view == "PruneOldest"]
        assert len(by_view) == 2

    def test_update_or_create_fans_out(self, analysis):
        paths = [p for p in analysis.paths if p.view == "SetSetting"]
        effectful = [p for p in paths if p.is_effectful()]
        # One path updates the existing row, one creates a fresh one.
        assert len(effectful) == 2
        texts = [pp_path(p) for p in effectful]
        assert any("setf(value" in t for t in texts)            # update arm
        assert any("new<Setting>" in t for t in texts)          # create arm
        create_arm = [t for t in texts if "new<Setting>" in t][0]
        assert "guard(empty(filter(key == arg_POST_key" in create_arm

    def test_bulk_create_emits_three_inserts(self, analysis):
        seeded = [p for p in analysis.effectful_paths if p.view == "SeedEvents"]
        assert seeded
        text = pp_path(seeded[0])
        assert text.count("update(singleton(new<Event>") == 3
        fresh = [a for a in seeded[0].args if a.unique_id]
        assert len(fresh) == 3

    def test_no_conservative_paths(self, analysis):
        assert not [p for p in analysis.paths if p.conservative]
