"""Fault-tolerance tests for the verification engine.

Every test injects a seeded :class:`EngineChaosPlan` into a *real* pair
sweep of the smallbank app and asserts the engine's failure contract:

* a crashed / hung / erroring pair costs only itself — every other
  verdict is byte-identical (modulo wall-clock fields) to a clean serial
  sweep;
* pairs the engine cannot decide within the retry budget degrade to
  conservative ``unknown`` verdicts that restrict but are never cached;
* a mid-sweep pool death falls back to serial execution with the
  in-flight pairs recorded, and the report still matches;
* cache checkpoints make an aborted sweep resume warm;
* corrupt cache files are quarantined, not trusted or destroyed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analyzer import analyze_application
from repro.engine import (
    EngineChaosPlan,
    QUARANTINE_SUFFIX,
    ResultCache,
    RetryPolicy,
    SweepAborted,
    run_engine_chaos,
    run_pair_sweep,
)
from repro.engine.cache import _safe_name
from repro.engine.chaos import CHAOS_CHECK_CONFIG, _solver_bound_pairs

CFG = CHAOS_CHECK_CONFIG
POLICY = RetryPolicy(max_attempts=2, backoff_s=0.01)


def sweep(*args, **kwargs):
    """Unreduced pair sweep: chaos injection and the cache-count
    assertions here are per-pair, and verdict sharing would fan one
    poisoned representative out to its whole signature class."""
    kwargs.setdefault("reduce", False)
    return run_pair_sweep(*args, **kwargs)


@pytest.fixture(scope="module")
def analysis():
    from repro.apps.smallbank import build_app

    return analyze_application(build_app())


@pytest.fixture(scope="module")
def baseline(analysis):
    return sweep(analysis, CFG)


@pytest.fixture(scope="module")
def solver_pairs(analysis):
    return _solver_bound_pairs(analysis, CFG)


def untimed(report):
    return [{k: v for k, v in row.items() if not k.endswith("_s")}
            for row in report.to_json_obj()["verdicts"]]


def pair_names(analysis, coords):
    paths = analysis.effectful_paths
    return paths[coords[0]].name, paths[coords[1]].name


def assert_matches_except(analysis, baseline, chaotic, poisoned_coords):
    """Poisoned pairs must be unknown; every other row byte-identical."""
    poisoned = {pair_names(analysis, c) for c in poisoned_coords}
    rows = list(zip(untimed(baseline), untimed(chaotic)))
    assert rows, "empty report"
    for base_row, chaos_row in rows:
        pair = (chaos_row["left"], chaos_row["right"])
        if pair in poisoned:
            assert chaos_row["status"] == "unknown", pair
        else:
            assert chaos_row == base_row, pair


class TestPairIsolation:
    def test_crashing_pair_costs_only_itself(self, tmp_path, analysis,
                                             baseline, solver_pairs):
        plan = EngineChaosPlan(crash=frozenset({solver_pairs[0]}))
        report = sweep(
            analysis, CFG, jobs=2, chaos=plan, pair_deadline_s=5.0,
            retry=POLICY, use_cache=True, cache_dir=str(tmp_path),
        )
        assert_matches_except(analysis, baseline, report, [solver_pairs[0]])
        metrics = report.metrics
        assert metrics["unknowns"] == 1
        assert metrics["failures"]["crash"] == POLICY.max_attempts
        assert metrics["retries"] == POLICY.max_attempts - 1
        assert metrics["workers_respawned"] >= 1
        assert metrics["mode"] == "parallel"  # the pool survived
        # the unknown was never cached: a chaos-free warm run re-solves
        # exactly that pair and then agrees with the baseline everywhere
        warm = sweep(analysis, CFG, use_cache=True,
                              cache_dir=str(tmp_path))
        assert warm.metrics["solver_calls"] == 1
        assert untimed(warm) == untimed(baseline)

    def test_hanging_pair_is_killed_by_the_watchdog(self, analysis,
                                                    baseline, solver_pairs):
        deadline_s = 1.5
        plan = EngineChaosPlan(hang=frozenset({solver_pairs[1]}),
                               hang_s=60.0)
        started = time.perf_counter()
        report = sweep(
            analysis, CFG, jobs=2, chaos=plan, pair_deadline_s=deadline_s,
            retry=POLICY,
        )
        wall = time.perf_counter() - started
        assert_matches_except(analysis, baseline, report, [solver_pairs[1]])
        assert report.metrics["unknowns"] == 1
        assert report.metrics["failures"]["timeout"] == POLICY.max_attempts
        # bounded: two killed attempts plus sweep work, nowhere near 60s
        assert wall < 10 * POLICY.max_attempts * deadline_s + 15.0

    def test_flaky_crash_recovers_via_retry(self, analysis, baseline,
                                            solver_pairs):
        plan = EngineChaosPlan(flaky_crash=frozenset({solver_pairs[0]}))
        report = sweep(
            analysis, CFG, jobs=2, chaos=plan, pair_deadline_s=5.0,
            retry=POLICY,
        )
        # the retry on a fresh worker decides the pair: full equality
        assert untimed(report) == untimed(baseline)
        assert report.metrics["unknowns"] == 0
        assert report.metrics["failures"]["crash"] == 1
        assert report.metrics["retries"] == 1

    def test_serial_path_enforces_the_same_contract(self, analysis,
                                                    baseline, solver_pairs):
        plan = EngineChaosPlan(crash=frozenset({solver_pairs[0]}),
                               hang=frozenset({solver_pairs[2]}),
                               hang_s=60.0)
        started = time.perf_counter()
        report = sweep(
            analysis, CFG, chaos=plan, pair_deadline_s=1.0, retry=POLICY,
        )
        wall = time.perf_counter() - started
        assert_matches_except(analysis, baseline, report,
                              [solver_pairs[0], solver_pairs[2]])
        metrics = report.metrics
        assert metrics["unknowns"] == 2
        assert metrics["failures"] == {"crash": POLICY.max_attempts,
                                       "timeout": POLICY.max_attempts}
        assert wall < 30.0  # SIGALRM interrupted the 60s hangs


class TestEngineFallback:
    def test_persistent_smt_error_falls_back_to_enum(self, tmp_path,
                                                     analysis, solver_pairs):
        smt_baseline = sweep(analysis, CFG, engine="smt")
        plan = EngineChaosPlan(smt_error=frozenset({solver_pairs[0]}))
        report = sweep(
            analysis, CFG, engine="smt", chaos=plan, pair_deadline_s=30.0,
            retry=POLICY, use_cache=True, cache_dir=str(tmp_path),
        )
        metrics = report.metrics
        assert metrics["unknowns"] == 0
        assert metrics["engine_fallbacks"] == 1
        assert metrics["failures"]["solver-error"] == 1
        # the fallback verdict decides the pair like the clean smt sweep
        name = pair_names(analysis, solver_pairs[0])
        rows = {(r["left"], r["right"]): r for r in untimed(report)}
        base_rows = {(r["left"], r["right"]): r
                     for r in untimed(smt_baseline)}
        assert rows[name]["status"] == "decided"
        assert rows[name]["commutativity"] == base_rows[name]["commutativity"]
        assert rows[name]["semantic"] == base_rows[name]["semantic"]
        # tainted (computed on the fallback engine): never cached
        warm = sweep(analysis, CFG, engine="smt", use_cache=True,
                              cache_dir=str(tmp_path))
        assert warm.metrics["solver_calls"] == 1


class TestPoolDeath:
    def test_mid_sweep_pool_death_falls_back_to_serial(self, analysis,
                                                       baseline,
                                                       solver_pairs):
        plan = EngineChaosPlan(crash=frozenset({solver_pairs[0]}),
                               pool_fail_after=1)
        report = sweep(
            analysis, CFG, jobs=2, chaos=plan, pair_deadline_s=5.0,
            retry=POLICY,
        )
        metrics = report.metrics
        assert metrics["mode"] == "serial"
        assert "injected pool failure" in metrics["fallback_reason"]
        assert_matches_except(analysis, baseline, report, [solver_pairs[0]])
        assert metrics["unknowns"] == 1

    def test_fallback_reason_records_in_flight_pairs(self, analysis,
                                                     solver_pairs):
        # With every worker busy when the pool dies, the poison suspects
        # land in the fallback reason (capped, so traces stay bounded).
        plan = EngineChaosPlan(pool_fail_after=0)
        report = sweep(
            analysis, CFG, jobs=2, chaos=plan, pair_deadline_s=5.0,
            retry=POLICY,
        )
        reason = report.metrics["fallback_reason"]
        assert "in flight:" in reason
        assert len(reason) < 500

    def test_pool_creation_failure_reports_reason(self, analysis, baseline,
                                                  monkeypatch):
        import repro.engine.scheduler as scheduler_module

        def broken_context(*args, **kwargs):
            raise OSError("no spawn for you")

        monkeypatch.setattr(scheduler_module.multiprocessing,
                            "get_context", broken_context)
        report = sweep(analysis, CFG, jobs=4)
        assert report.metrics["mode"] == "serial"
        assert "no spawn for you" in report.metrics["fallback_reason"]
        assert untimed(report) == untimed(baseline)


class TestCrashSafeCache:
    def test_aborted_sweep_resumes_from_checkpoints(self, tmp_path,
                                                    analysis, baseline,
                                                    solver_pairs):
        plan = EngineChaosPlan(abort_after_solved=3)
        with pytest.raises(SweepAborted):
            sweep(analysis, CFG, use_cache=True,
                           cache_dir=str(tmp_path), checkpoint_every=1,
                           chaos=plan)
        # the checkpointed prefix survives: the warm re-run replays it
        # and re-solves only the tail
        warm = sweep(analysis, CFG, use_cache=True,
                              cache_dir=str(tmp_path))
        assert warm.metrics["cache_hits"] == 3
        assert warm.metrics["solver_calls"] == len(solver_pairs) - 3
        assert untimed(warm) == untimed(baseline)

    def test_checkpoint_files_are_complete_snapshots(self, tmp_path,
                                                     analysis):
        plan = EngineChaosPlan(abort_after_solved=2)
        with pytest.raises(SweepAborted):
            sweep(analysis, CFG, use_cache=True,
                           cache_dir=str(tmp_path), checkpoint_every=1,
                           chaos=plan)
        cache_file = (Path(tmp_path)
                      / f"{_safe_name(analysis.app_name)}.json")
        payload = json.loads(cache_file.read_text())  # parseable snapshot
        assert len(payload["entries"]) == 2

    def test_corrupt_cache_is_quarantined_mid_pipeline(self, tmp_path,
                                                       analysis, baseline):
        sweep(analysis, CFG, use_cache=True,
                       cache_dir=str(tmp_path))
        cache_file = (Path(tmp_path)
                      / f"{_safe_name(analysis.app_name)}.json")
        original = cache_file.read_text()
        cache_file.write_text("{broken" + original[:40])
        with pytest.warns(RuntimeWarning, match="quarantined"):
            report = sweep(analysis, CFG, use_cache=True,
                                    cache_dir=str(tmp_path))
        quarantined = cache_file.with_name(cache_file.name
                                           + QUARANTINE_SUFFIX)
        assert quarantined.exists()  # evidence preserved, not overwritten
        assert quarantined.read_text().startswith("{broken")
        assert untimed(report) == untimed(baseline)

    def test_quarantine_is_observable(self, tmp_path):
        from repro.obs import Tracer, activate

        bad = Path(tmp_path) / "demo.json"
        bad.write_text("not json at all")
        tracer = Tracer()
        with activate(tracer):
            with tracer.span("load", "phase"):
                with pytest.warns(RuntimeWarning):
                    cache = ResultCache(tmp_path, "demo")
        assert cache.quarantined == str(bad) + QUARANTINE_SUFFIX
        records = [s for s in tracer.roots[0].children
                   if s.kind == "cache-quarantine"]
        assert len(records) == 1
        assert "corrupt JSON" in records[0].attrs["reason"]


class TestHarness:
    def test_one_seed_end_to_end(self):
        report = run_engine_chaos(seeds=1, start=0, jobs=2,
                                  deadline_s=2.0)
        assert report.ok, report.problems
        assert len(report.outcomes) == 1
        outcome = report.outcomes[0]
        assert outcome.faults  # every seed injects at least a crash
        assert outcome.unknowns >= 1

    def test_plan_round_trips_through_spawn_wire_format(self):
        plan = EngineChaosPlan(
            crash=frozenset({(0, 1)}), hang=frozenset({(2, 3)}),
            flaky_crash=frozenset({(4, 4)}), hang_s=7.5,
            abort_after_solved=3, pool_fail_after=2,
        )
        back = EngineChaosPlan.from_obj(
            json.loads(json.dumps(plan.to_obj())))
        assert back == plan
        assert back.mode_for(0, 1, 5, "enum") == "crash"
        assert back.mode_for(4, 4, 0, "enum") == "crash"
        assert back.mode_for(4, 4, 1, "enum") is None
