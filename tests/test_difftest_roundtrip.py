"""Property round-trips: generator output survives serialize → parse →
validate → pretty unchanged (catches serializer drift on rare node types
the random generator reaches but the bundled apps do not)."""

from __future__ import annotations

import pytest

from repro.difftest import generate_analysis, generate_case
from repro.soir.pretty import pp_path
from repro.soir.serialize import (
    dumps,
    loads,
    path_from_obj,
    path_to_obj,
    schema_from_obj,
    schema_to_obj,
)
from repro.soir.validate import validate_path

pytestmark = pytest.mark.difftest

SEEDS = range(0, 60)


@pytest.mark.parametrize("seed", SEEDS)
def test_schema_roundtrip(seed):
    schema = generate_case(seed).schema
    again = schema_from_obj(schema_to_obj(schema))
    assert again == schema
    again.validate()


@pytest.mark.parametrize("seed", SEEDS)
def test_path_roundtrip(seed):
    case = generate_case(seed)
    for path in (case.p, case.q):
        obj = path_to_obj(path)
        again = path_from_obj(obj)
        # Structural equality — every node type survived.
        assert again == path
        # Re-serialization is stable (no lossy normalization).
        assert path_to_obj(again) == obj
        # The parsed path is still valid and prints identically.
        validate_path(again, case.schema)
        assert pp_path(again) == pp_path(path)


@pytest.mark.parametrize("seed", (0, 9, 23, 41))
def test_analysis_roundtrip(seed):
    analysis = generate_analysis(seed)
    blob = dumps(analysis, indent=2)
    again = loads(blob)
    assert again.schema == analysis.schema
    assert tuple(again.paths) == tuple(analysis.paths)
    assert dumps(again, indent=2) == blob
