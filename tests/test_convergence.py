"""End-to-end soundness spot-check: pairs the verifier leaves
*unrestricted* really do converge when their effects are applied in
different orders at different replicas — and annotation-driven analysis
behaves as documented.

This closes the loop between the three layers: the analyzer's SOIR, the
verifier's verdicts, and the replication semantics (``apply_path``)."""

import itertools
import random

import pytest

from repro.analyzer import analyze_application
from repro.analyzer.annotations import consistency_irrelevant, external
from repro.apps.smallbank import build_app as build_smallbank
from repro.apps.todo import build_app as build_todo
from repro.orm import Database, Model, Registry, TextField
from repro.soir.interp import apply_path, run_path
from repro.soir.types import STRING
from repro.verifier import CheckConfig, verify_pair
from repro.verifier.scopes import (
    StateGenerator,
    build_scope,
    collect_args,
    random_envs,
)
from repro.web import Application, Client, HttpResponse, path


def converges(p, q, schema, *, rounds: int = 120, seed: int = 3) -> bool:
    """Randomized convergence oracle: generate both effects at a common
    state and apply them in both orders at two 'replicas'."""
    scope = build_scope(schema, [p, q])
    generator = StateGenerator(scope)
    rng = random.Random(seed)
    for _ in range(rounds):
        state = generator.random_state(rng)
        if state is None:
            continue
        env_p, env_q = random_envs(
            collect_args(p), collect_args(q), scope, rng,
            unique_ids_distinct=True,
        )
        replica_a = apply_path(q, apply_path(p, state, env_p, schema),
                               env_q, schema)
        replica_b = apply_path(p, apply_path(q, state, env_q, schema),
                               env_p, schema)
        if not replica_a.same_state(replica_b):
            return False
    return True


@pytest.mark.parametrize("builder", [build_smallbank, build_todo])
def test_unrestricted_pairs_converge(builder):
    """For every pair the verifier passes, the convergence oracle agrees
    (the oracle uses independent feasibility, so its divergences are a
    subset of the checker's — never the other way around)."""
    analysis = analyze_application(builder())
    config = CheckConfig(timeout_s=1.0, max_samples=300, max_exhaustive=4000)
    effectful = analysis.effectful_paths
    checked = 0
    for p, q in itertools.combinations_with_replacement(effectful, 2):
        verdict = verify_pair(p, q, analysis.schema, config)
        if verdict.commutativity.outcome.value != "pass":
            continue
        # The commutativity verdict says these effects converge.
        assert converges(p, q, analysis.schema), (p.name, q.name)
        checked += 1
    assert checked > 0


class TestAnnotations:
    def make_app(self):
        registry = Registry(f"annot-{id(object())}")
        with registry.use():

            class Note(Model):
                body = TextField(default="")

        summarize = external("summarizer", lambda text: text[:5], STRING)
        audit_log = []

        @consistency_irrelevant
        def log_access(note_pk):
            audit_log.append(note_pk)

        def add_note(request):
            note = Note.objects.create(body=summarize(request.POST["body"]))
            log_access(note.pk)
            return HttpResponse(status=201)

        app = Application("annot", registry, [path("add", add_note, name="AddNote")])
        return app, audit_log

    def test_concrete_execution_calls_through(self):
        app, audit_log = self.make_app()
        client = Client(app, Database(app.registry))
        assert client.post("/add", {"body": "hello world"}).status == 201
        with client.db.activate():
            note = app.registry.get_model("Note").objects.first()
            assert note.body == "hello"  # summarizer really ran
        assert audit_log  # the logger really ran

    def test_analysis_yields_opaque_argument(self):
        app, audit_log = self.make_app()
        before = len(audit_log)
        analysis = analyze_application(app)
        # The logger never runs under analysis.
        assert len(audit_log) == before
        added = [p for p in analysis.effectful_paths if p.view == "AddNote"]
        assert added and not added[0].conservative
        opaque = [a for a in added[0].args if a.source == "opaque"]
        assert len(opaque) == 1
        assert opaque[0].name.startswith("ext_summarizer$")

    def test_opaque_value_participates_in_verification(self):
        app, _ = self.make_app()
        analysis = analyze_application(app)
        added = [p for p in analysis.effectful_paths if p.view == "AddNote"][0]
        verdict = verify_pair(added, added, analysis.schema, CheckConfig())
        # Two inserts with distinct fresh ids commute even with opaque bodies.
        assert not verdict.restricted
