"""Property-based tests for the SMT substrate: the solver agrees with
brute-force enumeration on random formulas, and term simplification is
semantics-preserving."""

from __future__ import annotations

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt import Solver, UNKNOWN, evaluate, terms as T

SETTINGS = settings(max_examples=60, deadline=None)

VARS = ["a", "b", "c"]
DOMAIN = [0, 1, 2]


@st.composite
def int_terms(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return T.var(draw(st.sampled_from(VARS)), T.INT)
        return T.const(draw(st.integers(-2, 2)))
    op = draw(st.sampled_from([T.add, T.sub, T.mul]))
    return op(draw(int_terms(depth=depth - 1)), draw(int_terms(depth=depth - 1)))


@st.composite
def bool_terms(draw, depth=2):
    if depth == 0:
        cmp_op = draw(st.sampled_from([T.eq, T.lt, T.le, T.ne]))
        return cmp_op(draw(int_terms(depth=1)), draw(int_terms(depth=1)))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return T.not_(draw(bool_terms(depth=depth - 1)))
    if choice == 1:
        return T.and_(draw(bool_terms(depth=depth - 1)),
                      draw(bool_terms(depth=depth - 1)))
    if choice == 2:
        return T.or_(draw(bool_terms(depth=depth - 1)),
                     draw(bool_terms(depth=depth - 1)))
    cmp_op = draw(st.sampled_from([T.eq, T.lt, T.le]))
    return cmp_op(draw(int_terms(depth=1)), draw(int_terms(depth=1)))


def brute_force_sat(term: T.Term) -> dict | None:
    names = sorted(term.free_vars())
    for combo in itertools.product(DOMAIN, repeat=len(names)):
        env = dict(zip(names, combo))
        if evaluate(term, env) is True:
            return env
    return None


class TestSolverCompleteness:
    @SETTINGS
    @given(bool_terms())
    def test_solver_matches_brute_force(self, formula):
        solver = Solver()
        solver.add(formula)
        for name in formula.free_vars():
            solver.declare(name, DOMAIN)
        model = solver.check(timeout_s=5.0)
        expected = brute_force_sat(formula)
        if expected is None:
            assert model is None
        else:
            assert model is not None
            # The returned model genuinely satisfies the formula.
            assert evaluate(formula, model.assignment) is True

    @SETTINGS
    @given(bool_terms(), st.dictionaries(st.sampled_from(VARS),
                                         st.sampled_from(DOMAIN)))
    def test_partial_evaluation_is_sound(self, formula, partial):
        """If partial evaluation decides a value, every completion of the
        assignment agrees with it."""
        verdict = evaluate(formula, partial)
        if verdict is UNKNOWN:
            return
        names = sorted(set(formula.free_vars()) - set(partial))
        for combo in itertools.product(DOMAIN, repeat=len(names)):
            env = dict(partial)
            env.update(zip(names, combo))
            assert evaluate(formula, env) == verdict

    @SETTINGS
    @given(int_terms(), st.dictionaries(st.sampled_from(VARS),
                                        st.sampled_from(DOMAIN)))
    def test_constant_folding_preserves_value(self, term, partial):
        """Terms built through the folding constructors evaluate the same
        as their unfolded structure would."""
        full = {name: partial.get(name, 0) for name in VARS}

        def unfolded(t):
            if isinstance(t, T.Const):
                return t.value
            if isinstance(t, T.Var):
                return full[t.name]
            ops = {"add": lambda x, y: x + y, "sub": lambda x, y: x - y,
                   "mul": lambda x, y: x * y, "neg": lambda x: -x}
            values = [unfolded(a) for a in t.args]
            return ops[t.op](*values)

        assert evaluate(term, full) == unfolded(term)
