"""Cross-validate the concrete oracle against real apps end-to-end.

The differential oracle (``repro.difftest.oracle``) claims every witness
it reports is a *real* interleaving anomaly.  These tests hold it to that
on the hand-written SmallBank and Todo applications, through two
independent layers:

* **verifier soundness** — any pair the oracle finds a commutativity or
  semantic witness for must appear in the verifier's restriction set
  (the oracle under-approximates; the verifier may never pass a pair the
  oracle can break);
* **replication ground truth** — a commutativity witness, replayed as two
  concurrent submissions on a 2-site :class:`PoRReplicatedSystem` with an
  *empty* restriction set, must actually diverge the replicas; the same
  submissions under the verifier's full restriction set must converge
  with no schema violations (paper §2.2.1 sufficiency/necessity, now
  demonstrated from an oracle-discovered state rather than a hand-built
  workload).
"""

from __future__ import annotations

import pytest

from repro.analyzer import analyze_application
from repro.apps.smallbank import build_app as build_smallbank
from repro.apps.todo import build_app as build_todo
from repro.difftest.oracle import (
    OracleConfig,
    OracleWitness,
    run_oracle,
    schema_violations,
)
from repro.georep.replication import PoRReplicatedSystem
from repro.soir.interp import run_path
from repro.verifier import CheckConfig, verify_application

pytestmark = pytest.mark.difftest

#: Small budgets: real-app pairs have wide argument products, and the
#: oracle only needs to surface the easy witnesses here, not be complete.
ORACLE_CFG = OracleConfig(max_states=10, max_env_pairs=24, max_combos=600)


def _oracle_sweep(analysis):
    """Oracle reports for every unordered pair (self-pairs included)."""
    paths = analysis.effectful_paths
    out = []
    for i, p in enumerate(paths):
        for q in paths[i:]:
            report = run_oracle(p, q, analysis.schema, ORACLE_CFG)
            out.append((p, q, report))
    return out


@pytest.fixture(scope="module")
def smallbank():
    analysis = analyze_application(build_smallbank())
    report = verify_application(analysis, CheckConfig())
    return analysis, report.restriction_pairs(), _oracle_sweep(analysis)


@pytest.fixture(scope="module")
def todo():
    analysis = analyze_application(build_todo())
    report = verify_application(analysis, CheckConfig(timeout_s=1.0))
    return analysis, report.restriction_pairs(), _oracle_sweep(analysis)


def _witness_pairs(sweep) -> list[tuple[str, str, str]]:
    found = []
    for p, q, report in sweep:
        for kind in ("commutativity", "semantic"):
            if getattr(report, kind) is not None:
                found.append((p.name, q.name, kind))
    return found


class TestOracleSoundAgainstVerifier:
    def test_smallbank_witnesses_are_restricted(self, smallbank):
        _, restrictions, sweep = smallbank
        witnesses = _witness_pairs(sweep)
        assert witnesses, "oracle found nothing on SmallBank (budget too low?)"
        for left, right, kind in witnesses:
            assert frozenset((left, right)) in restrictions, (
                f"oracle found a {kind} witness for ({left}, {right}) "
                "but the verifier did not restrict the pair"
            )

    def test_todo_witnesses_are_restricted(self, todo):
        _, restrictions, sweep = todo
        witnesses = _witness_pairs(sweep)
        assert witnesses, "oracle found nothing on Todo (budget too low?)"
        for left, right, kind in witnesses:
            assert frozenset((left, right)) in restrictions, (
                f"oracle found a {kind} witness for ({left}, {right}) "
                "but the verifier did not restrict the pair"
            )

    def test_oracle_finds_the_overdraft(self, smallbank):
        """TransactSavings vs itself is the canonical SmallBank semantic
        anomaly (stale-read overdraft); the oracle must surface it."""
        _, _, sweep = smallbank
        names = _witness_pairs(sweep)
        assert any(
            "TransactSavings" in left and "TransactSavings" in right
            and kind == "semantic"
            for left, right, kind in names
        )


def _replayable(schema, p, q, witness: OracleWitness) -> bool:
    """Both sides must be *generatable at their origin replica* from the
    witness state for the replicated replay to make sense."""
    return (
        run_path(p, witness.state, witness.env_p, schema).committed
        and run_path(q, witness.state, witness.env_q, schema).committed
    )


def _replay(schema, restrictions, p, q, witness: OracleWitness):
    """Submit P at site 0 and Q at site 1 concurrently, then drain."""
    system = PoRReplicatedSystem(
        schema, restrictions, sites=2, initial=witness.state.clone()
    )
    system.submit(p, witness.env_p, 0)
    system.submit(q, witness.env_q, 1)
    system.drain()
    return system


class TestWitnessReplaysOnReplicas:
    def _divergence_cases(self, analysis, sweep):
        for p, q, report in sweep:
            witness = report.commutativity
            if witness is None:
                continue
            if _replayable(analysis.schema, p, q, witness):
                yield p, q, witness

    def test_todo_witness_diverges_without_restrictions(self, todo):
        analysis, _, sweep = todo
        diverged = False
        for p, q, witness in self._divergence_cases(analysis, sweep):
            system = _replay(analysis.schema, set(), p, q, witness)
            if not system.converged():
                diverged = True
                break
        assert diverged, (
            "no oracle commutativity witness produced replica divergence"
        )

    def test_todo_witness_converges_with_restrictions(self, todo):
        """The same concurrent submissions under the verifier's full
        restriction set: replicas converge and the schema stays clean."""
        analysis, restrictions, sweep = todo
        replayed = 0
        for p, q, witness in self._divergence_cases(analysis, sweep):
            system = _replay(analysis.schema, restrictions, p, q, witness)
            assert system.converged(), (p.name, q.name)
            for replica in system.replicas:
                assert schema_violations(replica, analysis.schema) == []
            replayed += 1
        assert replayed, "no replayable commutativity witness found"

    def test_smallbank_witnesses_respect_restrictions(self, smallbank):
        """SmallBank pairs replayed under restrictions never violate the
        schema (the min_value refinement on balances holds everywhere)."""
        analysis, restrictions, sweep = smallbank
        for p, q, witness in self._divergence_cases(analysis, sweep):
            system = _replay(analysis.schema, restrictions, p, q, witness)
            assert system.converged(), (p.name, q.name)
            for replica in system.replicas:
                assert schema_violations(replica, analysis.schema) == []
