"""Chaos layer: seeded fault schedules over the replicated runtime.

Four batteries:

* the **acceptance scenario** — a full chaos mix (loss + duplication +
  delay + partition + crash) over postgraduation, ≥200 ops on 3 sites:
  with the verifier's restriction set the system heals, drains, converges
  and preserves the schema invariants; the same seed with the empty
  restriction set reproduces divergence;
* **determinism** — identical seeds produce identical fault schedules,
  identical workloads and identical fault counters;
* **idempotent apply** — duplicated and redelivered effects change
  nothing: effect-id deduplication absorbs every extra copy;
* **healing convergence** — a seed sweep of chaos runs that all converge
  after heal + drain.
"""

import pytest

from repro.analyzer import analyze_application
from repro.apps.postgraduation import build_app as build_postgraduation
from repro.apps.todo import build_app as build_todo
from repro.georep import (
    FaultConfig,
    FaultInjector,
    PoRReplicatedSystem,
    run_chaos,
    run_workload,
)
from repro.georep.chaos import generate_operations, initial_state
from repro.georep.faults import CrashWindow, OutageWindow, PartitionWindow
from repro.soir import Schema, make_model
from repro.soir import commands as C, expr as E
from repro.soir.path import CodePath
from repro.soir.state import DBState
from repro.soir.types import INT
from repro.verifier import CheckConfig, verify_application

pytestmark = pytest.mark.slow

QUICK = CheckConfig(timeout_s=0.5, max_samples=200, max_exhaustive=2000)


@pytest.fixture(scope="module")
def postgraduation():
    analysis = analyze_application(build_postgraduation())
    return analysis, verify_application(analysis, QUICK).restriction_pairs()


@pytest.fixture(scope="module")
def todo():
    analysis = analyze_application(build_todo())
    return analysis, verify_application(analysis, QUICK).restriction_pairs()


class TestAcceptanceScenario:
    """The headline property: the verifier's restriction set is exactly
    what survives chaos."""

    def test_chaos_with_restrictions_converges_and_preserves_invariants(
        self, postgraduation
    ):
        analysis, restrictions = postgraduation
        faults = FaultConfig.chaos(3, span=200.0, sites=3)
        report = run_chaos(
            analysis, restrictions,
            seed=3, operations=200, sites=3, faults=faults,
        )
        assert report.converged
        assert report.invariant_ok
        assert report.result.accepted >= 50
        # The run really went through the fire: every configured fault
        # class fired.
        c = report.counters
        assert c.dropped > 0
        assert c.duplicated > 0
        assert c.delayed > 0
        assert c.partition_drops > 0
        assert c.crashes >= 1
        assert c.deduplicated > 0

    def test_same_seed_without_restrictions_reproduces_divergence(
        self, postgraduation
    ):
        analysis, _ = postgraduation
        faults = FaultConfig.chaos(3, span=200.0, sites=3)
        report = run_chaos(
            analysis, set(),
            seed=3, operations=200, sites=3, faults=faults,
        )
        assert not report.converged
        assert not report.invariant_ok

    def test_outage_refusals_are_recorded_and_harmless(self, postgraduation):
        analysis, restrictions = postgraduation
        faults = FaultConfig.chaos(3, span=200.0, sites=3, outages=1)
        report = run_chaos(
            analysis, restrictions,
            seed=3, operations=200, sites=3, faults=faults,
        )
        assert report.result.coord_rejected > 0
        assert report.refusals
        assert "coordination unavailable" in report.refusals[0]
        assert report.converged and report.invariant_ok


class TestDeterminism:
    def test_identical_seeds_identical_schedules(self):
        assert FaultConfig.chaos(7, span=100.0) == FaultConfig.chaos(7, span=100.0)
        assert FaultConfig.chaos(7, span=100.0) != FaultConfig.chaos(8, span=100.0)

    def test_identical_seeds_identical_workloads(self, todo):
        analysis, _ = todo
        a = generate_operations(analysis, count=50, seed=13)
        b = generate_operations(analysis, count=50, seed=13)
        assert [(p.name, env) for p, env in a] == [(p.name, env) for p, env in b]

    @pytest.mark.parametrize("seed", [2, 11])
    def test_identical_seeds_identical_counters(self, todo, seed):
        analysis, restrictions = todo
        a = run_chaos(analysis, restrictions, seed=seed, operations=120)
        b = run_chaos(analysis, restrictions, seed=seed, operations=120)
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.result == b.result
        assert a.converged == b.converged
        assert a.invariant_ok == b.invariant_ok

    def test_parse_round_trips_the_chaos_knobs(self):
        fc = FaultConfig.parse(
            "loss=0.1,dup,partition,crash", seed=9, span=100.0
        )
        assert fc.loss_prob == 0.1
        assert fc.dup_prob == 0.08
        assert fc.delay_prob == 0.0
        assert fc.partitions and fc.crashes and not fc.coord_outages
        assert FaultConfig.parse("all", seed=9, span=100.0).coord_outages
        with pytest.raises(ValueError):
            FaultConfig.parse("gremlins", seed=9, span=100.0)


def counter_fixture():
    """A minimal replicated counter: one incrementing path over one row."""
    schema = Schema()
    schema.add_model(make_model("Counter", {"v": INT}))
    state = DBState.empty(schema)
    state.insert_row("Counter", 1, {"id": 1, "v": 0})
    bump = CodePath(
        "Bump", (),
        (C.Update(E.Singleton(E.SetField(
            "v",
            E.BinOp("+", E.FieldGet(E.Deref(E.intlit(1), "Counter"),
                                    "v", INT), E.intlit(1)),
            E.Deref(E.intlit(1), "Counter"),
        ))),),
    )
    return schema, state, bump


class TestIdempotentApply:
    """At-least-once delivery is safe because applies deduplicate by
    effect id — extra copies, late redeliveries and crash-recovery
    replays are all invisible in the final state."""

    def test_double_delivery_applies_once(self):
        schema, state, bump = counter_fixture()
        system = PoRReplicatedSystem(schema, set(), initial=state)
        assert system.submit(bump, {}, 0)
        effect = system.accepted[0]
        # The transport delivered one copy to each remote queue; inject
        # two more duplicates at site 1 before anything applies.
        system.receive(effect, 1)
        system.receive(effect, 1)
        assert len(system.pending[1]) == 3
        system.drain()
        assert all(r.table("Counter")[1]["v"] == 1 for r in system.replicas)
        assert system.deduplicated == 2
        # A late redelivery after the apply is absorbed at receive time.
        system.receive(effect, 1)
        assert system.pending[1] == []
        assert system.deduplicated == 3

    def test_crash_loses_pending_but_log_redelivers(self):
        schema, state, bump = counter_fixture()
        system = PoRReplicatedSystem(schema, set(), initial=state)
        for _ in range(3):
            assert system.submit(bump, {}, 0)
        assert len(system.pending[1]) == 3
        system.crash(1)  # the volatile queue is gone...
        assert system.pending[1] == []
        system.drain()   # ...but the durable log redelivers everything
        assert system.redelivered >= 3
        assert system.converged()
        assert all(r.table("Counter")[1]["v"] == 3 for r in system.replicas)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_duplication_storm_changes_nothing_observable(self, todo, seed):
        """Property (fixed seeds): under heavy duplication the system
        still converges to an invariant-preserving state, with the extra
        copies visibly absorbed by deduplication."""
        analysis, restrictions = todo
        ops = generate_operations(analysis, count=80, seed=seed)
        base = initial_state(analysis)
        noisy = PoRReplicatedSystem(
            analysis.schema, set(restrictions), seed=seed,
            initial=base.clone(),
            transport=FaultInjector(FaultConfig(seed=seed, dup_prob=0.6)),
        )
        result = run_workload(noisy, ops)
        assert noisy.converged()
        assert noisy.transport.counters.duplicated > 0
        assert noisy.deduplicated > 0
        assert result.submitted == 80


class TestHealingConvergence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_full_chaos_heals_and_converges(self, todo, seed):
        """Property (fixed seeds): any seeded chaos schedule, once healed
        and drained, leaves all replicas identical."""
        analysis, restrictions = todo
        report = run_chaos(analysis, restrictions, seed=seed, operations=120)
        assert report.converged
        assert report.invariant_ok

    def test_partition_heals_and_both_sides_merge(self):
        """Writes accepted on both sides of a partition cross over after
        the heal: nothing accepted during the split is lost."""
        schema, state, bump = counter_fixture()
        faults = FaultConfig(
            seed=0,
            partitions=(PartitionWindow(
                0.0, 50.0, (frozenset({0}), frozenset({1, 2})),
            ),),
        )
        injector = FaultInjector(faults)
        system = PoRReplicatedSystem(
            schema, set(), initial=state, transport=injector
        )
        for i in range(6):
            injector.clock = float(i)
            assert system.submit(bump, {}, i % 3)
        assert injector.counters.partition_drops > 0
        injector.clock = 50.0
        injector.heal(system)
        system.drain()
        assert system.converged()
        assert all(r.table("Counter")[1]["v"] == 6 for r in system.replicas)

    def test_crash_window_recovers_via_redelivery(self):
        schema, state, bump = counter_fixture()
        faults = FaultConfig(seed=0, crashes=(CrashWindow(1, 2.0, 5.0),))
        injector = FaultInjector(faults)
        system = PoRReplicatedSystem(
            schema, set(), initial=state, transport=injector
        )
        for i in range(8):
            injector.clock = float(i)
            for site, start in injector.crashed_sites():
                system.crash(site)
                injector.mark_crashed(site, start)
            system.submit(bump, {}, 0)
        injector.clock = 10.0
        injector.heal(system)
        system.drain()
        assert injector.counters.crashes == 1
        assert system.converged()
        assert all(r.table("Counter")[1]["v"] == 8 for r in system.replicas)

    def test_restricted_pair_waits_for_lost_predecessor(self):
        """A restricted successor must not apply ahead of its lost
        predecessor: the log blocks it until redelivery fills the gap."""
        schema, state, bump = counter_fixture()
        # Lose everything initially: remote sites see nothing.
        injector = FaultInjector(FaultConfig(seed=1, loss_prob=1.0))
        system = PoRReplicatedSystem(
            schema, {frozenset(("Bump",))}, initial=state, transport=injector,
        )
        assert system.submit(bump, {}, 0)
        assert system.submit(bump, {}, 0)
        assert system.pending[1] == [] and system.pending[2] == []
        # Hand-deliver only the *second* effect: it stays blocked.
        system.receive(system.accepted[1], 1)
        assert not system._deliver_one(1)
        assert system.replicas[1].table("Counter")[1]["v"] == 0
        # Once faults stop, drain redelivers the predecessor and both
        # apply in coordinated order.
        injector.heal(system)
        system.drain()
        assert system.converged()
        assert all(r.table("Counter")[1]["v"] == 2 for r in system.replicas)


class TestCoordinationOutageWindow:
    def test_submits_during_outage_fail_fast_and_recover(self):
        schema, state, bump = counter_fixture()
        injector = FaultInjector(
            FaultConfig(seed=0, coord_outages=(OutageWindow(2.0, 4.0),))
        )
        system = PoRReplicatedSystem(
            schema, {frozenset(("Bump",))}, initial=state, transport=injector,
        )
        accepted = 0
        for i in range(6):
            injector.clock = float(i)
            if system.submit(bump, {}, i % 3):
                accepted += 1
        assert system.coord_rejected == 2  # clocks 2 and 3
        assert accepted == 4
        system.drain()
        assert system.converged()
        assert all(r.table("Counter")[1]["v"] == 4 for r in system.replicas)
