"""The delta-debugging shrinker: ddmin mechanics, expression rewriting,
and the end-to-end acceptance property — a seeded mismatch shrinks to a
handful of commands per side while staying well-formed and reproducing.
"""

from __future__ import annotations

import pytest

from repro.difftest import generate_case
from repro.difftest.oracle import OracleConfig, run_oracle
from repro.difftest.shrink import _ddmin, rewrite_expr, shrink_case
from repro.soir import expr as E
from repro.soir.validate import validate_path

pytestmark = pytest.mark.difftest


class TestDdmin:
    def test_single_culprit(self):
        items = list(range(20))
        result = _ddmin(items, lambda c: 13 in c)
        assert result == [13]

    def test_pair_of_culprits(self):
        items = list(range(16))
        result = _ddmin(items, lambda c: 3 in c and 11 in c)
        assert sorted(result) == [3, 11]

    def test_empty_when_anything_passes(self):
        assert _ddmin(list(range(8)), lambda c: True) == []

    def test_preserves_order(self):
        items = ["a", "b", "c", "d"]
        result = _ddmin(items, lambda c: "b" in c and "d" in c)
        assert result == ["b", "d"]


class TestRewriteExpr:
    def test_bottom_up_replacement(self):
        expr = E.BinOp("+", E.intlit(1), E.BinOp("+", E.intlit(2),
                                                 E.intlit(3)))

        def bump(node: E.Expr) -> E.Expr:
            if isinstance(node, E.Lit) and node.value == 2:
                return E.intlit(9)
            return node

        out = rewrite_expr(expr, bump)
        assert isinstance(out.right.left, E.Lit)
        assert out.right.left.value == 9
        # Untouched nodes survive structurally.
        assert out.left == E.intlit(1)

    def test_identity_returns_equal_tree(self):
        expr = E.And((E.true(), E.Not(E.false())))
        assert rewrite_expr(expr, lambda n: n) == expr


class TestShrinkCase:
    def test_initial_non_repro_raises(self):
        case = generate_case(0)
        with pytest.raises(ValueError):
            shrink_case(case.schema, case.p, case.q,
                        lambda s, p, q: False)

    def test_seeded_mismatch_shrinks_small(self):
        """The acceptance bar: a synthetic mismatch — 'the concrete
        oracle still finds a commutativity witness' — must reduce to at
        most 3 commands per side (seed 0 actually reaches 1 + 1)."""
        case = generate_case(0)
        cfg = OracleConfig(max_states=12, max_env_pairs=24)

        def still_diverges(schema, p, q):
            return run_oracle(p, q, schema, cfg).commutativity is not None

        assert still_diverges(case.schema, case.p, case.q), \
            "seed 0 no longer seeds a divergence; pick another seed"
        schema, p, q = shrink_case(case.schema, case.p, case.q,
                                   still_diverges)
        assert len(p.commands) <= 3
        assert len(q.commands) <= 3
        # The result is well-formed and still reproduces.
        schema.validate()
        validate_path(p, schema)
        validate_path(q, schema)
        assert still_diverges(schema, p, q)

    def test_schema_shrinks_too(self):
        case = generate_case(0)
        cfg = OracleConfig(max_states=12, max_env_pairs=24)

        def still_diverges(schema, p, q):
            return run_oracle(p, q, schema, cfg).commutativity is not None

        schema, p, q = shrink_case(case.schema, case.p, case.q,
                                   still_diverges)
        touched = p.models_touched(schema) | q.models_touched(schema)
        assert set(schema.models) == touched
        # Unused arguments were pruned.
        for path in (p, q):
            used = {
                node.name
                for cmd in path.commands
                for node in cmd.walk_exprs()
                if isinstance(node, (E.Var, E.Opaque))
            }
            assert {a.name for a in path.args} <= used

    def test_shrunk_case_is_deterministic(self):
        case = generate_case(0)
        cfg = OracleConfig(max_states=12, max_env_pairs=24)

        def still_diverges(schema, p, q):
            return run_oracle(p, q, schema, cfg).commutativity is not None

        a = shrink_case(case.schema, case.p, case.q, still_diverges)
        b = shrink_case(case.schema, case.p, case.q, still_diverges)
        assert a[1] == b[1] and a[2] == b[2]


CFG = OracleConfig(max_states=12, max_env_pairs=24)


def _diverges(schema, p, q) -> bool:
    return run_oracle(p, q, schema, CFG).commutativity is not None


def _divergent_seeds(count: int = 3) -> list[int]:
    out = []
    seed = 0
    while len(out) < count and seed < 40:
        case = generate_case(seed)
        if _diverges(case.schema, case.p, case.q):
            out.append(seed)
        seed += 1
    assert len(out) == count, "not enough divergent seeds below 40"
    return out


class TestShrinkProperties:
    """Idempotence, validity and taxon preservation — the contract the
    pinned-corpus pipeline relies on."""

    def test_shrink_is_idempotent(self):
        """``shrink_case`` reaches a fixed point: shrinking its own
        output changes nothing.  Otherwise two pin runs of the same
        mismatch could disagree about the canonical corpus case."""
        for seed in _divergent_seeds():
            case = generate_case(seed)
            once = shrink_case(case.schema, case.p, case.q, _diverges)
            twice = shrink_case(*once, _diverges)
            assert twice[1] == once[1] and twice[2] == once[2], \
                f"seed {seed}: second shrink still reduced"
            assert set(twice[0].models) == set(once[0].models)

    def test_shrunk_case_is_valid(self):
        """Every shrunk case passes the same structural validation the
        shrinker's internal ``_valid`` gate enforces mid-flight."""
        from repro.difftest.shrink import _valid

        for seed in _divergent_seeds():
            case = generate_case(seed)
            schema, p, q = shrink_case(case.schema, case.p, case.q,
                                       _diverges)
            assert _valid(schema, p, q)
            schema.validate()
            validate_path(p, schema)
            validate_path(q, schema)

    def test_shrink_preserves_taxon(self):
        """Shrinking must not wander to a *different* kind of failure:
        a case pinned for a commutativity divergence still witnesses a
        commutativity divergence (not merely any oracle complaint)."""
        for seed in _divergent_seeds():
            case = generate_case(seed)
            schema, p, q = shrink_case(case.schema, case.p, case.q,
                                       _diverges)
            report = run_oracle(p, q, schema, CFG)
            assert report.commutativity is not None
