"""Typed-parameter coercion in the viewset mixins, concrete and symbolic."""

import pytest

from repro.analyzer import analyze_application
from repro.orm import (
    BooleanField,
    Database,
    IntegerField,
    Model,
    Registry,
    TextField,
)
from repro.web import Application, Client, ModelViewSet


@pytest.fixture(scope="module")
def env():
    registry = Registry("mixins")
    with registry.use():

        class Gadget(Model):
            label = TextField(default="")
            weight = IntegerField(default=0)
            enabled = BooleanField(default=False)

    class GadgetViewSet(ModelViewSet):
        model = Gadget
        fields = ("label", "weight", "enabled")

    app = Application("mixins", registry, GadgetViewSet.urls())

    class NS:
        pass

    ns = NS()
    ns.app, ns.registry, ns.Gadget = app, registry, Gadget
    return ns


class TestConcreteCoercion:
    def test_create_coerces_int_and_bool(self, env):
        client = Client(env.app, Database(env.registry))
        created = client.post(
            "/gadget/create",
            {"label": "probe", "weight": "42", "enabled": "yes"},
        )
        assert created.status == 201
        with client.db.activate():
            gadget = env.Gadget.objects.get(pk=created.content["pk"])
            assert gadget.weight == 42          # str -> int
            assert gadget.enabled is True       # truthy -> bool
            assert gadget.label == "probe"

    def test_update_coerces(self, env):
        client = Client(env.app, Database(env.registry))
        pk = client.post("/gadget/create", {"label": "a"}).content["pk"]
        assert client.post(f"/gadget/{pk}/update", {"weight": "7"}).ok
        with client.db.activate():
            assert env.Gadget.objects.get(pk=pk).weight == 7

    def test_bad_int_rejected(self, env):
        client = Client(env.app, Database(env.registry))
        resp = client.post("/gadget/create", {"weight": "heavy"})
        assert resp.status == 400


class TestSymbolicCoercion:
    def test_int_field_gets_int_argument(self, env):
        analysis = analyze_application(env.app)
        creates = [
            p for p in analysis.effectful_paths if p.view == "gadget-create"
        ]
        assert creates
        arg_types = {
            a.name: str(a.type)
            for p in creates
            for a in p.args
        }
        assert arg_types.get("arg_POST_weight") == "Int"
        assert arg_types.get("arg_POST_label") == "String"
        assert not [p for p in analysis.paths if p.conservative]
