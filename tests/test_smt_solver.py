"""Tests for the term language and the finite-domain model finder."""

import pytest

from repro.smt import Solver, SolverTimeout, UNKNOWN, evaluate, terms as T


class TestTermConstruction:
    def test_constant_folding(self):
        assert T.add(T.const(2), T.const(3)) == T.const(5)
        assert T.mul(T.const(2), T.const(3)) == T.const(6)
        assert T.lt(T.const(1), T.const(2)) == T.TRUE
        assert T.concat(T.const("a"), T.const("b")) == T.const("ab")
        assert T.eq(T.const(1), T.const(1)) == T.TRUE
        assert T.eq(T.const(1), T.const(2)) == T.FALSE

    def test_boolean_unit_laws(self):
        x = T.var("x", T.BOOL)
        assert T.and_(T.TRUE, x) == x
        assert T.and_(T.FALSE, x) == T.FALSE
        assert T.or_(T.FALSE, x) == x
        assert T.or_(T.TRUE, x) == T.TRUE
        assert T.and_() == T.TRUE
        assert T.or_() == T.FALSE

    def test_not_involution(self):
        x = T.var("x", T.BOOL)
        assert T.not_(T.not_(x)) == x
        assert T.not_(T.TRUE) == T.FALSE

    def test_and_flattens(self):
        x, y, z = (T.var(n, T.BOOL) for n in "xyz")
        inner = T.and_(x, y)
        assert T.and_(inner, z).args == (x, y, z)

    def test_ite_simplification(self):
        x = T.var("x", T.INT)
        assert T.ite(T.TRUE, x, T.const(0)) == x
        assert T.ite(T.FALSE, x, T.const(0)) == T.const(0)
        assert T.ite(T.var("c", T.BOOL), x, x) == x

    def test_eq_reflexive(self):
        x = T.var("x", T.INT)
        assert T.eq(x, x) == T.TRUE

    def test_distinct(self):
        a, b = T.const(1), T.const(2)
        assert T.distinct(a, b) == T.TRUE
        assert T.distinct(a, T.const(1)) == T.FALSE

    def test_in_list(self):
        x = T.var("x", T.STR)
        term = T.in_list(x, ("a", "b"))
        assert evaluate(term, {"x": "b"}) is True
        assert evaluate(term, {"x": "c"}) is False

    def test_null_handling(self):
        n = T.null(T.INT)
        assert T.is_null(n) == T.TRUE
        assert T.is_null(T.const(3)) == T.FALSE

    def test_free_vars(self):
        x, y = T.var("x", T.INT), T.var("y", T.INT)
        assert T.add(x, T.mul(y, T.const(2))).free_vars() == {"x", "y"}

    def test_cross_type_comparison_folds_false(self):
        assert T.lt(T.const("zz"), T.const(0)) == T.FALSE


class TestEvaluation:
    def test_three_valued_and(self):
        x, y = T.var("x", T.BOOL), T.var("y", T.BOOL)
        term = T.and_(x, y)
        assert evaluate(term, {"x": False}) is False  # short-circuit
        assert evaluate(term, {"x": True}) is UNKNOWN
        assert evaluate(term, {"x": True, "y": True}) is True

    def test_three_valued_or(self):
        x, y = T.var("x", T.BOOL), T.var("y", T.BOOL)
        term = T.or_(x, y)
        assert evaluate(term, {"x": True}) is True
        assert evaluate(term, {"x": False}) is UNKNOWN

    def test_ite_branch_agreement(self):
        c = T.var("c", T.BOOL)
        term = T.ite(c, T.const(5), T.const(5))
        # Constructor already folds; evaluate a manual App too.
        from repro.smt.terms import App
        manual = App("ite", (c, T.const(5), T.const(5)), T.INT)
        assert evaluate(manual, {}) == 5
        assert term == T.const(5)

    def test_null_ordered_comparison_false(self):
        x = T.var("x", T.INT)
        assert evaluate(T.lt(x, T.const(1)), {"x": None}) is False

    def test_arith_null_propagates(self):
        x = T.var("x", T.INT)
        assert evaluate(T.add(x, T.const(1)), {"x": None}) is None


class TestSolver:
    def test_sat_simple(self):
        s = Solver()
        x = T.var("x", T.INT)
        s.add(T.eq(T.add(x, T.const(1)), T.const(3)))
        s.declare("x", [0, 1, 2, 3])
        model = s.check()
        assert model["x"] == 2

    def test_unsat(self):
        s = Solver()
        x = T.var("x", T.INT)
        s.add(T.lt(x, T.const(0)))
        s.declare("x", [0, 1, 2])
        assert s.check() is None

    def test_multi_var_constraint_propagation(self):
        s = Solver()
        xs = [T.var(f"x{i}", T.INT) for i in range(8)]
        # x0 == 7 is impossible: early pruning must make this fast.
        s.add(T.eq(xs[0], T.const(7)))
        for i, x in enumerate(xs):
            s.declare(x.name, [0, 1, 2])
            s.add(T.le(x, T.const(2)))
        assert s.check(timeout_s=1.0) is None

    def test_unconstrained_vars_filled(self):
        s = Solver()
        x, y = T.var("x", T.INT), T.var("y", T.INT)
        # Once x = 1 satisfies the disjunction, y is unconstrained and the
        # solver fills it without searching.
        s.add(T.or_(T.eq(x, T.const(1)), T.eq(y, T.const(5))))
        s.declare("x", [1, 0])
        s.declare("y", [5, 6])
        model = s.check()
        assert model["x"] == 1
        assert model["y"] in (5, 6)

    def test_priority_ordering(self):
        s = Solver()
        x, y = T.var("x", T.INT), T.var("y", T.INT)
        s.add(T.and_(T.eq(x, T.const(2)), T.eq(y, T.const(2))))
        s.declare("x", [0, 1, 2])
        s.declare("y", [0, 1, 2])
        model = s.check(priority=["y"])
        assert model["x"] == 2 and model["y"] == 2

    def test_timeout(self):
        s = Solver()
        xs = [T.var(f"x{i}", T.INT) for i in range(20)]
        # A parity-flavoured constraint that resists pruning.
        total = T.const(0)
        for x in xs:
            s.declare(x.name, list(range(4)))
            total = T.add(total, x)
        s.add(T.eq(total, T.const(1000)))  # unsat but needs search
        with pytest.raises(SolverTimeout):
            s.check(timeout_s=0.02)

    def test_undeclared_var_rejected(self):
        s = Solver()
        s.add(T.eq(T.var("ghost", T.INT), T.const(1)))
        with pytest.raises(ValueError):
            s.check()

    def test_empty_domain_rejected(self):
        s = Solver()
        with pytest.raises(ValueError):
            s.declare("x", [])
