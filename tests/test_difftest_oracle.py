"""The concrete interleaving oracle: witnesses are real, absences are
honest, and the schema-invariant checker sees what it should."""

from __future__ import annotations

import pytest

from repro.difftest import generate_case, run_oracle
from repro.difftest.oracle import OracleConfig, schema_violations
from repro.soir import RelationSchema, Schema, commands as C, expr as E, make_model
from repro.soir.interp import apply_path, run_path
from repro.soir.path import Argument, CodePath
from repro.soir.state import DBState
from repro.soir.types import INT, STRING, Comparator
from repro.soir.validate import validate_path

pytestmark = pytest.mark.difftest

CFG = OracleConfig(max_states=16, max_env_pairs=32)


def box_schema() -> Schema:
    schema = Schema()
    schema.add_model(make_model("Box", {"size": INT, "tag": STRING},
                                unique=("tag",)))
    schema.validate()
    return schema


def path_bump(name: str, prefix: str) -> CodePath:
    pk = Argument(f"{prefix}pk", INT, source="url")
    obj = E.Deref(E.Var(pk.name, INT), "Box")
    return CodePath(name, (pk,), (
        C.Guard(E.Exists("Box", E.Var(pk.name, INT))),
        C.Update(E.Singleton(E.SetField(
            "size", E.BinOp("+", E.FieldGet(obj, "size", INT), E.intlit(1)),
            obj,
        ))),
    ), view=f"{name}_view")


def path_withdraw(name: str, prefix: str) -> CodePath:
    pk = Argument(f"{prefix}pk", INT, source="url")
    amt = Argument(f"{prefix}amt", INT)
    obj = E.Deref(E.Var(pk.name, INT), "Box")
    new = E.BinOp("-", E.FieldGet(obj, "size", INT), E.Var(amt.name, INT))
    return CodePath(name, (pk, amt), (
        C.Guard(E.Exists("Box", E.Var(pk.name, INT))),
        C.Guard(E.Cmp(Comparator.GE, new, E.intlit(0))),
        C.Update(E.Singleton(E.SetField("size", new, obj))),
    ), view=f"{name}_view")


def path_delete(name: str, prefix: str) -> CodePath:
    pk = Argument(f"{prefix}pk", INT, source="url")
    return CodePath(name, (pk,), (
        C.Delete(E.Filter(E.All("Box"), (), "id", Comparator.EQ,
                          E.Var(pk.name, INT))),
    ), view=f"{name}_view")


class TestVerdicts:
    def test_bump_pair_commutes(self):
        schema = box_schema()
        p = path_bump("P", "p_")
        q = path_bump("Q", "q_")
        validate_path(p, schema)
        validate_path(q, schema)
        report = run_oracle(p, q, schema, CFG)
        assert report.commutativity is None
        assert report.semantic is None

    def test_withdraw_vs_delete_diverges(self):
        schema = box_schema()
        p = path_withdraw("P", "p_")
        q = path_delete("Q", "q_")
        report = run_oracle(p, q, schema, CFG)
        assert report.commutativity is not None

    def test_double_withdraw_invalidates(self):
        schema = box_schema()
        p = path_withdraw("P", "p_")
        q = path_withdraw("Q", "q_")
        report = run_oracle(p, q, schema, CFG)
        assert report.semantic is not None
        # ...but the effects converge: SetField to a computed value
        # applies the same final state in either order only when the
        # values agree; withdraw writes absolute values, so the orders
        # agree on the state even though preconditions break.
        assert report.commutativity is None


class TestWitnessesAreReal:
    """Every witness must replay through the reference interpreter."""

    def test_commutativity_witness_replays(self):
        schema = box_schema()
        p = path_withdraw("P", "p_")
        q = path_delete("Q", "q_")
        w = run_oracle(p, q, schema, CFG).commutativity
        assert w is not None
        s_pq = apply_path(q, apply_path(p, w.state, w.env_p, schema),
                          w.env_q, schema)
        s_qp = apply_path(p, apply_path(q, w.state, w.env_q, schema),
                          w.env_p, schema)
        assert not s_pq.same_state(s_qp)

    def test_semantic_witness_replays(self):
        schema = box_schema()
        p = path_withdraw("P", "p_")
        q = path_withdraw("Q", "q_")
        w = run_oracle(p, q, schema, CFG).semantic
        assert w is not None
        out_p = run_path(p, w.state, w.env_p, schema)
        out_q = run_path(q, w.state, w.env_q, schema)
        assert out_p.committed and out_q.committed
        invalidated = (
            not run_path(p, out_q.state, w.env_p, schema).committed
            or not run_path(q, out_p.state, w.env_q, schema).committed
        )
        assert invalidated

    @pytest.mark.parametrize("seed", range(0, 20))
    def test_generated_case_witnesses_replay(self, seed):
        case = generate_case(seed)
        report = run_oracle(case.p, case.q, case.schema, CFG)
        if report.commutativity is not None:
            w = report.commutativity
            a = apply_path(case.q, apply_path(case.p, w.state, w.env_p,
                                              case.schema),
                           w.env_q, case.schema)
            b = apply_path(case.p, apply_path(case.q, w.state, w.env_q,
                                              case.schema),
                           w.env_p, case.schema)
            assert not a.same_state(b)


class TestDeterminism:
    def test_same_inputs_same_report(self):
        case = generate_case(11)
        a = run_oracle(case.p, case.q, case.schema, CFG)
        b = run_oracle(case.p, case.q, case.schema, CFG)
        assert a.combos_examined == b.combos_examined
        assert (a.commutativity is None) == (b.commutativity is None)
        assert (a.semantic is None) == (b.semantic is None)
        if a.commutativity:
            assert a.commutativity.env_p == b.commutativity.env_p
            assert a.commutativity.state.same_state(b.commutativity.state)


class TestSchemaViolations:
    def test_unique_duplicate(self):
        schema = box_schema()
        state = DBState.empty(schema)
        state.insert_row("Box", 1, {"id": 1, "size": 0, "tag": "x"})
        state.insert_row("Box", 2, {"id": 2, "size": 0, "tag": "x"})
        assert any("unique" in v for v in schema_violations(state, schema))

    def test_nulls_do_not_count_as_duplicates(self):
        schema = Schema()
        schema.add_model(make_model(
            "Box", {"size": INT, "tag": STRING},
            unique=("tag",), nullable=("tag",),
        ))
        schema.validate()
        state = DBState.empty(schema)
        state.insert_row("Box", 1, {"id": 1, "size": 0, "tag": None})
        state.insert_row("Box", 2, {"id": 2, "size": 0, "tag": None})
        assert schema_violations(state, schema) == []

    def test_min_value(self):
        import dataclasses

        model = make_model("Box", {"size": INT})
        model = dataclasses.replace(model, fields=tuple(
            dataclasses.replace(f, min_value=0) if f.name == "size" else f
            for f in model.fields
        ))
        schema = Schema()
        schema.add_model(model)
        schema.validate()
        state = DBState.empty(schema)
        state.insert_row("Box", 1, {"id": 1, "size": -2})
        assert any("below min" in v for v in schema_violations(state, schema))

    def test_dangling_assoc_and_fk_multiplicity(self):
        schema = Schema()
        schema.add_model(make_model("Box", {"size": INT}))
        schema.add_model(make_model("Slot", {"cap": INT}))
        schema.add_relation(RelationSchema(
            "Box.slot", source="Box", target="Slot", kind="fk",
            on_delete="cascade", nullable=True, reverse_name="boxes",
        ))
        schema.validate()
        state = DBState.empty(schema)
        state.insert_row("Box", 1, {"id": 1, "size": 0})
        state.relation("Box.slot").add((1, 99))
        viols = schema_violations(state, schema)
        assert any("dangling" in v for v in viols)
        state2 = DBState.empty(schema)
        state2.insert_row("Box", 1, {"id": 1, "size": 0})
        state2.insert_row("Slot", 1, {"id": 1, "cap": 0})
        state2.insert_row("Slot", 2, {"id": 2, "cap": 0})
        state2.relation("Box.slot").add((1, 1))
        state2.relation("Box.slot").add((1, 2))
        assert any("twice" in v
                   for v in schema_violations(state2, schema))

    def test_oracle_states_are_well_formed(self):
        """Every enumerated initial state satisfies the schema invariants
        — otherwise the invariant check would start from garbage."""
        from repro.difftest.oracle import _Domains, enumerate_states

        for seed in (0, 5, 13):
            case = generate_case(seed)
            domains = _Domains(case.schema, (case.p, case.q), CFG)
            for state in enumerate_states(case.schema, domains, CFG):
                assert schema_violations(state, case.schema) == []
