"""Tests for the web framework: routing, dispatch, viewsets, client."""

import pytest

from repro.orm import (
    Database,
    ForeignKey,
    IntegerField,
    Model,
    Registry,
    SET_NULL,
    TextField,
)
from repro.web import (
    Application,
    Client,
    Http404,
    HttpRequest,
    HttpResponse,
    JsonResponse,
    ModelViewSet,
    ReadOnlyViewSet,
    RoutingError,
    View,
    get_object_or_404,
    include,
    path,
)
from repro.web.urls import Resolver, URLPattern


@pytest.fixture(scope="module")
def appenv():
    reg = Registry("webtest")
    with reg.use():
        class Author(Model):
            name = TextField(primary_key=True)

        class Post(Model):
            title = TextField(default="")
            score = IntegerField(default=0)
            author = ForeignKey(Author, on_delete=SET_NULL, null=True)

    def create_post(request):
        author = get_object_or_404(Author, name=request.POST["author"])
        post = Post.objects.create(title=request.POST["title"], author=author)
        return JsonResponse({"pk": post.pk}, status=201)

    def delete_posts(request, username):
        Post.objects.filter(author__name=username).delete()
        return HttpResponse(status=204)

    def fail_midway(request):
        Post.objects.all().delete()
        raise KeyError("boom")  # request data missing -> 400, rolled back

    class Ping(View):
        def get(self, request):
            return HttpResponse("pong")

    class PostViewSet(ModelViewSet):
        model = Post
        fields = ("title", "score")

    patterns = [
        path("posts/new", create_post),
        path("users/<username>/posts/delete", delete_posts),
        path("broken", fail_midway),
        path("ping", Ping.as_view()),
        *PostViewSet.urls(),
        *include("api/v2", [path("ping2", Ping.as_view())]),
    ]
    app = Application("webtest", reg, patterns)

    class NS:
        pass

    ns = NS()
    ns.app, ns.registry, ns.Author, ns.Post = app, reg, Author, Post
    return ns


@pytest.fixture()
def client(appenv):
    db = Database(appenv.registry)
    with db.activate():
        appenv.Author.objects.create(name="john")
    return Client(appenv.app, db)


class TestRouting:
    def test_static_pattern(self):
        p = path("a/b", lambda r: None)
        assert p.match("a/b") == {}
        assert p.match("a/c") is None

    def test_param_extraction(self):
        p = path("users/<username>/posts/<int:pk>", lambda r: None)
        assert p.match("users/jo/posts/3") == {"username": "jo", "pk": 3}
        assert p.param_specs() == [("username", str), ("pk", int)]

    def test_slug_converter(self):
        p = path("t/<slug:s>", lambda r: None)
        assert p.match("t/a-b_c") == {"s": "a-b_c"}
        assert p.match("t/a b") is None

    def test_unknown_converter(self):
        with pytest.raises(RoutingError):
            path("x/<uuid:u>", lambda r: None)

    def test_resolver_order_and_miss(self):
        v1, v2 = (lambda r: 1), (lambda r: 2)
        r = Resolver([path("a/<x>", v1), path("a/b", v2)])
        pattern, params = r.resolve("/a/b/")
        assert pattern.view is v1  # first match wins
        with pytest.raises(RoutingError):
            r.resolve("/nope")

    def test_include_prefix(self):
        inner = [path("x", lambda r: None, name="x")]
        mounted = include("api", inner)
        assert mounted[0].pattern == "api/x"
        assert mounted[0].name == "x"

    def test_view_name(self):
        def myview(request):
            return None

        assert path("a", myview).view_name == "myview"
        assert path("a", myview, name="custom").view_name == "custom"


class TestDispatch:
    def test_post_creates(self, client, appenv):
        resp = client.post("/posts/new", {"author": "john", "title": "Hi"})
        assert resp.status == 201
        with client.db.activate():
            assert appenv.Post.objects.count() == 1

    def test_404_from_get_object(self, client):
        resp = client.post("/posts/new", {"author": "ghost", "title": "Hi"})
        assert resp.status == 404

    def test_unknown_route_404(self, client):
        assert client.get("/none/such").status == 404

    def test_url_param_passed(self, client, appenv):
        client.post("/posts/new", {"author": "john", "title": "Hi"})
        resp = client.delete("/users/john/posts/delete")
        assert resp.status == 204
        with client.db.activate():
            assert appenv.Post.objects.count() == 0

    def test_missing_post_param_is_400(self, client):
        resp = client.post("/posts/new", {"title": "no author"})
        assert resp.status == 400

    def test_transaction_rollback_on_error(self, client, appenv):
        client.post("/posts/new", {"author": "john", "title": "Hi"})
        resp = client.get("/broken")
        assert resp.status == 400
        with client.db.activate():
            # the delete inside the failed request was rolled back
            assert appenv.Post.objects.count() == 1

    def test_class_based_view(self, client):
        resp = client.get("/ping")
        assert resp.ok and resp.content == "pong"
        assert client.post("/ping").status == 405

    def test_included_routes(self, client):
        assert client.get("/api/v2/ping2").ok


class TestViewSets:
    def test_generated_routes(self, appenv):
        names = [p.view_name for p in appenv.app.endpoints()]
        for expected in (
            "post-list",
            "post-create",
            "post-detail",
            "post-update",
            "post-delete",
        ):
            assert expected in names

    def test_crud_cycle(self, client, appenv):
        created = client.post("/post/create", {"title": "A", "score": 1})
        assert created.status == 201
        pk = created.content["pk"]
        assert client.get("/post/").content == 1
        detail = client.get(f"/post/{pk}/")
        assert detail.content["title"] == "A"
        client.post(f"/post/{pk}/update", {"title": "B"})
        assert client.get(f"/post/{pk}/").content["title"] == "B"
        assert client.post(f"/post/{pk}/delete").status == 204
        assert client.get(f"/post/{pk}/").status == 404

    def test_readonly_viewset_has_no_writes(self):
        class RO(ReadOnlyViewSet):
            model = None
            basename = "ro"

        names = [p.view_name for p in RO.urls()]
        assert names == ["ro-list", "ro-detail"]
        assert [p.view.__name__ for p in RO.urls()] == ["ro_list", "ro_retrieve"]

    def test_endpoints_reports_closures(self, appenv):
        """The viewset's views are runtime-made closures, not module-level
        functions — endpoint discovery must go through the live app."""
        detail = next(
            p for p in appenv.app.endpoints() if p.view_name == "post-detail"
        )
        assert detail.view.__name__ == "post_retrieve"
        assert detail.view.__qualname__.endswith("<locals>.view")
