"""Replay every pinned corpus case (tests/corpus/*.json).

Each file is a once-found engine mismatch (now fixed and pinned as a
regression) or a documented over-approximation; the replayer re-verifies
the pair on every listed engine and asserts the pinned verdicts, so a
fixed bug cannot quietly return.  ``noctua difftest --replay`` runs the
same corpus from the command line.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.difftest.corpus import (
    CorpusCase,
    case_from_obj,
    case_to_obj,
    load_corpus,
    replay_case,
)

pytestmark = pytest.mark.difftest

CORPUS_DIR = Path(__file__).parent / "corpus"
CASES = load_corpus(CORPUS_DIR)


def test_corpus_is_not_empty():
    assert CASES, "tests/corpus/ lost its pinned cases"


@pytest.mark.parametrize(
    "case", CASES, ids=[c.name for c in CASES]
)
def test_corpus_case_replays(case: CorpusCase):
    assert replay_case(case) == []


@pytest.mark.parametrize(
    "case", CASES, ids=[c.name for c in CASES]
)
def test_corpus_case_replays_on_portfolio(case: CorpusCase):
    """The racing backend must satisfy every pinned expectation too —
    a portfolio verdict is one of the two lanes' verdicts, and the
    expectation resolver accepts the union of both lanes' outcomes."""
    assert replay_case(case, engines=("portfolio",)) == []


@pytest.mark.parametrize(
    "case", CASES, ids=[c.name for c in CASES]
)
def test_corpus_case_roundtrips(case: CorpusCase):
    obj = case_to_obj(case)
    again = case_from_obj(obj, source=case.source)
    assert case_to_obj(again) == obj
    assert again.schema == case.schema
    assert again.p == case.p and again.q == case.q


def test_every_case_pins_something():
    """A corpus entry with no expectations would vacuously pass."""
    for case in CASES:
        assert case.expect, case.name
        assert case.description, case.name


def test_tampered_expectation_is_caught():
    """The replayer actually compares verdicts — flip one and it must
    report the violation (guards against a silently inert runner)."""
    case = next(c for c in CASES if c.name == "smt-sum-empty-null")
    flipped = dict(case.expect)
    flipped["commutativity"] = "pass"  # the true verdict is fail
    import dataclasses

    bad = dataclasses.replace(case, expect=flipped)
    failures = replay_case(bad)
    assert failures and "commutativity" in failures[0]


def test_unknown_format_rejected():
    with pytest.raises(ValueError):
        case_from_obj({"format": 99, "name": "x"})
