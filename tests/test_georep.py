"""Tests for the geo-replication simulation substrate."""

import pytest

from repro.apps.postgraduation import build_app as build_pg
from repro.apps.zhihu import build_app as build_zhihu
from repro.georep import (
    CoordinationService,
    Deployment,
    DeploymentConfig,
    Metrics,
    RequestSpec,
    Simulator,
    postgraduation_workload,
    run_modes,
    zhihu_workload,
)
from repro.orm import Database


class TestSimulator:
    def test_event_ordering(self):
        sim = Simulator()
        log = []
        sim.schedule(5, lambda: log.append("b"))
        sim.schedule(1, lambda: log.append("a"))
        sim.schedule(9, lambda: log.append("c"))
        sim.run_until(10)
        assert log == ["a", "b", "c"]
        assert sim.now == 10

    def test_fifo_at_same_time(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: log.append(1))
        sim.schedule(1, lambda: log.append(2))
        sim.run_until(2)
        assert log == [1, 2]

    def test_run_until_stops(self):
        sim = Simulator()
        log = []
        sim.schedule(5, lambda: log.append("late"))
        sim.run_until(3)
        assert log == []
        assert sim.pending() == 1
        sim.run_until(10)
        assert log == ["late"]

    def test_cascading_events(self):
        sim = Simulator()
        log = []

        def step(n):
            log.append(n)
            if n < 3:
                sim.schedule(1, lambda: step(n + 1))

        sim.schedule(0, lambda: step(0))
        sim.run_until(10)
        assert log == [0, 1, 2, 3]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)


class TestCoordination:
    TABLE = {frozenset(("W",)), frozenset(("W", "X"))}

    def test_non_conflicting_run_concurrently(self):
        service = CoordinationService(self.TABLE)
        granted = []
        service.request("R", {}, lambda t: granted.append(t))
        service.request("R", {}, lambda t: granted.append(t))
        assert len(granted) == 2
        assert service.active_count == 2

    def test_conflicting_same_params_queue(self):
        service = CoordinationService(self.TABLE)
        granted = []
        t1 = service.request("W", {"k": 1}, lambda t: granted.append(t))
        service.request("W", {"k": 1}, lambda t: granted.append(t))
        assert len(granted) == 1
        assert service.queue_length == 1
        service.release(t1)
        assert len(granted) == 2
        assert service.queue_length == 0

    def test_conflicting_disjoint_params_proceed(self):
        service = CoordinationService(self.TABLE)
        granted = []
        service.request("W", {"k": 1}, lambda t: granted.append(t))
        service.request("W", {"k": 2}, lambda t: granted.append(t))
        assert len(granted) == 2

    def test_endpoint_granularity(self):
        service = CoordinationService(self.TABLE, by_endpoint=True)
        granted = []
        service.request("W", {"k": 1}, lambda t: granted.append(t))
        service.request("W", {"k": 2}, lambda t: granted.append(t))
        assert len(granted) == 1

    def test_cross_endpoint_conflict(self):
        service = CoordinationService(self.TABLE)
        granted = []
        t1 = service.request("W", {"k": 1}, lambda t: granted.append(t))
        service.request("X", {"k": 1}, lambda t: granted.append(t))
        assert len(granted) == 1
        service.release(t1)
        assert len(granted) == 2

    def test_release_unknown_ticket_is_noop(self):
        service = CoordinationService(self.TABLE)
        service.release(999)  # no raise


class TestMetrics:
    def test_throughput_and_latency(self):
        metrics = Metrics(warmup_ms=100)
        metrics.record(50, 1.0, False, True)  # warmup, excluded
        metrics.record(200, 2.0, True, True)
        metrics.record(300, 4.0, False, True)
        assert metrics.throughput(1100) == pytest.approx(2 / 1.0)
        assert metrics.avg_latency_ms() == pytest.approx(3.0)
        assert metrics.write_fraction() == pytest.approx(0.5)
        assert metrics.error_fraction() == 0.0

    def test_percentile(self):
        metrics = Metrics()
        for latency in (1.0, 2.0, 3.0, 4.0, 100.0):
            metrics.record(10, latency, False, True)
        assert metrics.percentile_latency_ms(0.5) == 3.0
        assert metrics.percentile_latency_ms(0.95) == 100.0

    def test_empty(self):
        metrics = Metrics()
        assert metrics.avg_latency_ms() == 0.0
        assert metrics.percentile_latency_ms(0.9) == 0.0


class TestRequestSpec:
    def test_lock_params_include_url_ids(self):
        spec = RequestSpec("/u/7/upvote/12", "POST", {"x": 1}, True)
        params = spec.lock_params()
        assert params["x"] == 1
        assert "url1" in params and params["url1"] == "7"
        assert "url3" in params and params["url3"] == "12"


FAST = DeploymentConfig(duration_ms=120.0, warmup_ms=20.0, clients_per_site=2)


class TestDeployment:
    def test_zhihu_run_completes_requests(self):
        app = build_zhihu()
        db = Database(app.registry)
        workload = zhihu_workload(app, db, 0.3)
        deployment = Deployment(app, db, workload, set(), config=FAST)
        summary = deployment.run()
        assert summary.requests > 50
        assert summary.throughput_rps > 0
        assert summary.avg_latency_ms > 0
        assert deployment.replication_events > 0

    def test_write_ratio_reflected(self):
        app = build_zhihu()
        db = Database(app.registry)
        workload = zhihu_workload(app, db, 0.5)
        deployment = Deployment(app, db, workload, set(), config=FAST)
        deployment.run()
        assert deployment.metrics.write_fraction() == pytest.approx(0.5, abs=0.15)

    def test_sc_slower_than_relaxed(self):
        conflicts = {frozenset(("FollowQuestion",))}
        rows = run_modes(
            build_zhihu, zhihu_workload, conflicts,
            write_ratios=(0.15,), config=FAST,
        )
        sc, relaxed = rows
        assert sc.mode == "SC" and relaxed.mode == "15%"
        assert relaxed.throughput_rps > sc.throughput_rps
        assert relaxed.avg_latency_ms < sc.avg_latency_ms

    def test_throughput_rises_as_writes_fall(self):
        rows = run_modes(
            build_pg, postgraduation_workload, set(),
            write_ratios=(0.5, 0.15), config=FAST,
        )
        _, w50, w15 = rows
        assert w15.throughput_rps > w50.throughput_rps

    def test_deterministic(self):
        conflicts = {frozenset(("FollowQuestion",))}
        runs = []
        for _ in range(2):
            app = build_zhihu()
            db = Database(app.registry)
            workload = zhihu_workload(app, db, 0.3, seed=11)
            runs.append(
                Deployment(app, db, workload, conflicts, config=FAST).run()
            )
        assert runs[0] == runs[1]
