"""Tests for the symbolic verification engine: Table-2 encoding, order
semantics, and agreement with the enumerative engine (two independent
backends, one set of verdicts)."""

import pytest

from repro.analyzer import analyze_application
from repro.apps.courseware import build_app as build_courseware
from repro.apps.smallbank import build_app as build_smallbank
from repro.orm import (
    IntegerField,
    Model,
    PositiveIntegerField,
    Registry,
    TextField,
)
from repro.verifier import (
    CheckConfig,
    Outcome,
    PairChecker,
    SmtPairChecker,
    build_scope,
    verify_application,
)
from repro.verifier.encoding import fresh_state, universe_of
from repro.web import Application, HttpResponse, path


CFG = CheckConfig(timeout_s=10.0)


def build_ring_app():
    """Append / evict-oldest / swap-order: effectful order semantics."""
    registry = Registry(f"ring-{id(object())}")
    with registry.use():

        class Entry(Model):
            body = TextField(default="")
            rank = IntegerField(default=0)

    def append_entry(request):
        Entry.objects.create(body=request.POST["body"],
                             rank=request.post_int("rank"))
        return HttpResponse(status=201)

    def evict_lowest(request):
        victim = Entry.objects.order_by("rank").first()
        if victim:
            victim.delete()
        return HttpResponse(status=200)

    def evict_highest(request):
        victim = Entry.objects.order_by("rank").last()
        if victim:
            victim.delete()
        return HttpResponse(status=200)

    def promote(request, pk):
        entry = Entry.objects.get(pk=pk)
        entry.rank = entry.rank + 1
        entry.save()
        return HttpResponse(status=200)

    return Application("ring", registry, [
        path("append", append_entry, name="Append"),
        path("evict-low", evict_lowest, name="EvictLowest"),
        path("evict-high", evict_highest, name="EvictHighest"),
        path("promote/<int:pk>", promote, name="Promote"),
    ])


@pytest.fixture(scope="module")
def ring():
    return analyze_application(build_ring_app())


def eff(analysis, view):
    return [p for p in analysis.effectful_paths if p.view == view][0]


class TestEncoding:
    def test_universe_gates_fresh_pool(self):
        analysis = analyze_application(build_smallbank())
        paths = analysis.effectful_paths[:2]
        scope = build_scope(analysis.schema, paths)
        universe = universe_of(scope)
        # SmallBank never inserts: no fresh slots materialize.
        assert universe["Account"] == scope.ids["Account"]

    def test_fresh_state_axioms_and_domains(self):
        analysis = analyze_application(build_courseware())
        paths = [p for p in analysis.effectful_paths]
        scope = build_scope(analysis.schema, paths)
        bundle = fresh_state("S", analysis.schema, scope, with_order=False)
        # Every declared variable has a non-empty domain.
        assert bundle.domains
        assert all(bundle.domains.values())
        # FK axioms exist (Enrolment has two fks).
        assert bundle.axioms
        # No order component materialized.
        assert all(v is None for v in bundle.state.order.values())

    def test_order_component_materializes_on_demand(self):
        analysis = analyze_application(build_courseware())
        paths = [p for p in analysis.effectful_paths]
        scope = build_scope(analysis.schema, paths)
        bundle = fresh_state("S", analysis.schema, scope, with_order=True)
        assert any(v for v in bundle.state.order.values())
        order_vars = [n for n in bundle.domains if ".order[" in n]
        assert order_vars


class TestSmtBenchmarks:
    """Table 5 on the symbolic engine."""

    def test_smallbank_exact(self):
        analysis = analyze_application(build_smallbank())
        report = verify_application(analysis, CFG, engine="smt")
        assert len(report.commutativity_failures) == 0
        sem = {
            frozenset((v.left.split("[")[0], v.right.split("[")[0]))
            for v in report.semantic_failures
        }
        assert sem == {
            frozenset(("TransactSavings",)),
            frozenset(("SendPayment",)),
            frozenset(("Amalgamate",)),
            frozenset(("Amalgamate", "SendPayment")),
        }

    def test_courseware_exact(self):
        analysis = analyze_application(build_courseware())
        report = verify_application(analysis, CFG, engine="smt")
        com = {
            frozenset((v.left.split("[")[0], v.right.split("[")[0]))
            for v in report.commutativity_failures
        }
        sem = {
            frozenset((v.left.split("[")[0], v.right.split("[")[0]))
            for v in report.semantic_failures
        }
        assert com == {frozenset(("AddCourse", "DeleteCourse"))}
        assert sem == {frozenset(("Enroll", "DeleteCourse"))}


class TestEngineAgreement:
    """The two backends are independent implementations of the same rules;
    they must agree pair by pair on the synthetic benchmarks."""

    @pytest.mark.parametrize("builder", [build_smallbank, build_courseware])
    def test_agreement(self, builder):
        analysis = analyze_application(builder())
        effectful = analysis.effectful_paths
        for i, p in enumerate(effectful):
            for q in effectful[i:]:
                enum_checker = PairChecker(p, q, analysis.schema, CFG)
                smt_checker = SmtPairChecker(p, q, analysis.schema, CFG)
                assert (
                    enum_checker.check_commutativity().outcome
                    == smt_checker.check_commutativity().outcome
                ), (p.name, q.name, "commutativity")
                assert (
                    enum_checker.check_semantic().outcome
                    == smt_checker.check_semantic().outcome
                ), (p.name, q.name, "semantic")


class TestOrderSemantics:
    """Order-sensitive pairs on the symbolic engine (the §4.2 encoding)."""

    def test_promote_vs_evict_conflicts(self, ring):
        """Bumping an entry's rank can change which entry is the eviction
        victim: the pair must not commute."""
        checker = SmtPairChecker(
            eff(ring, "Promote"), eff(ring, "EvictLowest"), ring.schema, CFG
        )
        assert checker.check_commutativity().outcome == Outcome.FAIL

    def test_evict_low_vs_high_commute_check_runs(self, ring):
        """Evicting the two ends touches the same table; the engine must
        produce a definite verdict (no conservative fallback) with the
        order component materialized."""
        checker = SmtPairChecker(
            eff(ring, "EvictLowest"), eff(ring, "EvictHighest"), ring.schema,
            CFG,
        )
        assert checker.with_order
        outcome = checker.check_commutativity().outcome
        assert outcome in (Outcome.PASS, Outcome.FAIL)

    def test_append_vs_evict(self, ring):
        """A fresh append can become the eviction victim in one order but
        not the other: non-commutative."""
        checker = SmtPairChecker(
            eff(ring, "Append"), eff(ring, "EvictLowest"), ring.schema, CFG
        )
        assert checker.check_commutativity().outcome == Outcome.FAIL

    def test_enum_agrees_on_order_pairs(self, ring):
        smt = SmtPairChecker(
            eff(ring, "Promote"), eff(ring, "EvictLowest"), ring.schema, CFG
        )
        enum = PairChecker(
            eff(ring, "Promote"), eff(ring, "EvictLowest"), ring.schema, CFG
        )
        assert (
            smt.check_commutativity().outcome
            == enum.check_commutativity().outcome
            == Outcome.FAIL
        )
