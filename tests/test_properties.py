"""Property-based tests (hypothesis) for core data structures and
invariants: SOIR interpretation, the path finder, scope generation, the
ORM's constraint enforcement, and the coordination service."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.analyzer.pathfinder import PathFinder
from repro.georep import CoordinationService, Simulator
from repro.soir import (
    Argument,
    CodePath,
    commands as C,
    expr as E,
    run_path,
)
from repro.soir.interp import apply_path
from repro.soir.types import INT, STRING, Comparator
from repro.verifier.scopes import StateGenerator, build_scope

from helpers import blog_schema, blog_state

SETTINGS = settings(max_examples=60, deadline=None)


# ---------------------------------------------------------------------------
# SOIR expressions
# ---------------------------------------------------------------------------

scalar_expr = st.recursive(
    st.one_of(
        st.integers(-5, 5).map(E.intlit),
        st.sampled_from([E.Var("a", INT), E.Var("b", INT)]),
    ),
    lambda children: st.one_of(
        st.tuples(st.sampled_from(["+", "-", "*"]), children, children).map(
            lambda t: E.BinOp(*t)
        ),
        children.map(E.Neg),
    ),
    max_leaves=8,
)


class TestExprProperties:
    @SETTINGS
    @given(scalar_expr)
    def test_with_children_roundtrip(self, expr):
        assert expr.with_children(expr.children()) == expr

    @SETTINGS
    @given(scalar_expr)
    def test_pretty_stable_for_equal_terms(self, expr):
        from repro.soir.pretty import pp_expr

        rebuilt = expr.with_children(expr.children())
        assert pp_expr(expr) == pp_expr(rebuilt)

    @SETTINGS
    @given(scalar_expr, st.integers(-3, 3), st.integers(-3, 3))
    def test_evaluation_matches_python(self, expr, a, b):
        """The interpreter agrees with a direct Python evaluation."""
        from repro.soir.interp import Interpreter
        from repro.soir.state import DBState

        schema = blog_schema()
        interp = Interpreter(schema, DBState(), {"a": a, "b": b})

        def pyeval(e):
            if isinstance(e, E.Lit):
                return e.value
            if isinstance(e, E.Var):
                return {"a": a, "b": b}[e.name]
            if isinstance(e, E.Neg):
                return -pyeval(e.operand)
            ops = {"+": lambda x, y: x + y, "-": lambda x, y: x - y,
                   "*": lambda x, y: x * y}
            return ops[e.op](pyeval(e.left), pyeval(e.right))

        assert interp.eval(expr) == pyeval(expr)


# ---------------------------------------------------------------------------
# SOIR execution
# ---------------------------------------------------------------------------

def _delete_path(title: str) -> CodePath:
    return CodePath(
        "del", (),
        (C.Delete(E.Filter(E.All("Article"), (), "title", Comparator.EQ,
                           E.strlit(title))),),
    )


class TestInterpProperties:
    @SETTINGS
    @given(st.sampled_from(["Alpha", "Beta", "Gamma", "nope"]))
    def test_run_never_mutates_input(self, title):
        schema = blog_schema()
        state = blog_state(schema)
        snapshot = state.canonical(with_order=True)
        run_path(_delete_path(title), state, {}, schema)
        apply_path(_delete_path(title), state, {}, schema)
        assert state.canonical(with_order=True) == snapshot

    @SETTINGS
    @given(st.sampled_from(["Alpha", "Beta", "nope"]))
    def test_delete_idempotent(self, title):
        """Applying the same delete effect twice equals applying it once."""
        schema = blog_schema()
        state = blog_state(schema)
        once = apply_path(_delete_path(title), state, {}, schema)
        twice = apply_path(_delete_path(title), once, {}, schema)
        assert once.same_state(twice)

    @SETTINGS
    @given(st.sampled_from(["Alpha", "Beta"]), st.sampled_from(["X", "Y"]))
    def test_merge_idempotent(self, title, new_title):
        schema = blog_schema()
        state = blog_state(schema)
        update = CodePath(
            "upd", (),
            (C.Update(E.MapSet(
                E.Filter(E.All("Article"), (), "title", Comparator.EQ,
                         E.strlit(title)),
                "title", E.strlit(new_title))),),
        )
        once = apply_path(update, state, {}, schema)
        twice = apply_path(update, once, {}, schema)
        assert once.same_state(twice)

    @SETTINGS
    @given(st.integers(0, 2**32 - 1))
    def test_random_states_well_formed(self, seed):
        """Every generated state satisfies the schema axioms."""
        schema = blog_schema()
        path = _delete_path("x")
        scope = build_scope(schema, [path])
        state = StateGenerator(scope).random_state(random.Random(seed))
        if state is None:
            return
        for mname in scope.models:
            model = schema.model(mname)
            rows = state.table(mname)
            for fschema in model.fields:
                if fschema.unique:
                    values = [r[fschema.name] for r in rows.values()]
                    assert len(values) == len(set(values))
                if not fschema.nullable:
                    assert all(r[fschema.name] is not None for r in rows.values())
        for rname in scope.relations:
            rel = schema.relation(rname)
            pairs = state.relation(rname)
            sources = set(state.table(rel.source))
            targets = set(state.table(rel.target))
            for s, t in pairs:
                assert s in sources and t in targets
            if rel.kind == "fk":
                assert len({s for s, _ in pairs}) == len(pairs)
                if not rel.nullable:
                    assert {s for s, _ in pairs} == sources


# ---------------------------------------------------------------------------
# Path finder: full, duplicate-free tree enumeration
# ---------------------------------------------------------------------------

@st.composite
def decision_trees(draw):
    """A random finite binary decision tree as nested dicts; leaves are
    ints."""
    def tree(depth):
        if depth == 0 or draw(st.booleans()):
            return draw(st.integers(0, 99))
        key = draw(st.sampled_from("abcdef")) + str(depth)
        return {"key": key,
                "true": tree(depth - 1),
                "false": tree(depth - 1)}

    return tree(draw(st.integers(1, 4)))


def _leaves(tree) -> list:
    if not isinstance(tree, dict):
        return [tree]
    return _leaves(tree["true"]) + _leaves(tree["false"])


class TestPathFinderProperties:
    @SETTINGS
    @given(decision_trees())
    def test_enumerates_every_leaf_exactly_once(self, tree):
        finder = PathFinder()
        visited = []
        while True:
            finder.begin_run()
            node = tree
            while isinstance(node, dict):
                node = node["true"] if finder.decide(node["key"]) else node["false"]
            visited.append((node, finder.trace()))
            if not finder.advance():
                break
        # Exactly the tree's leaves, in DFS (true-first) order.
        assert [v[0] for v in visited] == _leaves(tree)
        # Each path's trace is unique.
        traces = [v[1] for v in visited]
        assert len(set(traces)) == len(traces)


# ---------------------------------------------------------------------------
# ORM constraint enforcement under random operation sequences
# ---------------------------------------------------------------------------

class TestOrmProperties:
    @SETTINGS
    @given(st.lists(
        st.tuples(st.sampled_from(["create", "delete", "rename"]),
                  st.integers(0, 3), st.sampled_from(["u0", "u1", "u2"])),
        max_size=12,
    ))
    def test_unique_constraint_always_holds(self, operations):
        from repro.orm import Database, IntegrityError, Model, Registry, TextField

        registry = Registry(f"prop-{random.random()}")
        with registry.use():
            class Tagged(Model):
                label = TextField(unique=True)

        db = Database(registry)
        with db.activate():
            pks = []
            for action, idx, label in operations:
                try:
                    if action == "create":
                        pks.append(Tagged.objects.create(label=label).pk)
                    elif action == "delete" and pks:
                        Tagged.objects.filter(pk=pks[idx % len(pks)]).delete()
                    elif action == "rename" and pks:
                        Tagged.objects.filter(pk=pks[idx % len(pks)]).update(
                            label=label
                        )
                except IntegrityError:
                    pass
                labels = [t.label for t in Tagged.objects.all()]
                assert len(labels) == len(set(labels))


# ---------------------------------------------------------------------------
# Simulator and coordination service
# ---------------------------------------------------------------------------

class TestSimulatorProperties:
    @SETTINGS
    @given(st.lists(st.floats(0, 100, allow_nan=False), max_size=25))
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, (lambda d=delay: fired.append(sim.now)))
        sim.run_until(1000)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestCoordinationProperties:
    @SETTINGS
    @given(st.lists(
        st.tuples(st.sampled_from(["W", "X", "R"]), st.integers(0, 2)),
        min_size=1, max_size=20,
    ))
    def test_no_conflicting_pair_ever_active(self, requests):
        table = {frozenset(("W",)), frozenset(("W", "X"))}
        service = CoordinationService(table)
        tickets = []
        for endpoint, key in requests:
            tickets.append(
                service.request(endpoint, {"k": key}, lambda t: None)
            )
            active = list(service._active.values())
            for i, a in enumerate(active):
                for b in active[i + 1:]:
                    assert not service.conflicts(a, b)
        # Releasing everything drains the queue completely.
        for ticket in tickets:
            service.release(ticket)
        assert service.queue_length == 0
        assert service.active_count + service.queue_length <= len(requests)
