"""Tests for the ``noctua`` command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestApps:
    def test_lists_all_six(self, capsys):
        code, out = run_cli(capsys, "apps")
        assert code == 0
        for name in ("todo", "postgraduation", "zhihu", "ownphotos",
                     "smallbank", "courseware"):
            assert name in out


class TestAnalyze:
    def test_stats(self, capsys):
        code, out = run_cli(capsys, "analyze", "smallbank")
        assert code == 0
        assert "models           : 1" in out
        assert "effectful paths  : 4" in out

    def test_paths_dump(self, capsys):
        code, out = run_cli(capsys, "analyze", "courseware", "--paths")
        assert code == 0
        assert "path Enroll[0]:" in out
        assert "guard(exists<Student>" in out
        assert "ABORTED" in out  # aborted paths are labelled

    def test_json_export(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        code, out = run_cli(capsys, "analyze", "smallbank", "--json", str(target))
        assert code == 0
        data = json.loads(target.read_text())
        assert data["app"] == "smallbank"
        assert len(data["paths"]) == 15

    def test_unknown_app(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "doesnotexist"])


class TestVerify:
    def test_courseware_quick(self, capsys, tmp_path):
        code, out = run_cli(capsys, "verify", "courseware", "--quick",
                            "--conflict-table",
                            "--cache-dir", str(tmp_path / "cache"))
        assert code == 0
        assert "com. failures : 1" in out
        assert "sem. failures : 1" in out
        assert "('AddCourse', 'DeleteCourse')" in out

    def test_smallbank(self, capsys):
        code, out = run_cli(capsys, "verify", "smallbank", "--no-cache")
        assert code == 0
        assert "com. failures : 0" in out
        assert "sem. failures : 4" in out

    def test_warm_cache_solves_nothing(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, _ = run_cli(capsys, "verify", "smallbank", "--quick",
                          "--cache-dir", cache_dir)
        assert code == 0
        code, out = run_cli(capsys, "verify", "smallbank", "--quick",
                            "--jobs", "2", "--cache-dir", cache_dir)
        assert code == 0
        assert "solver calls  : 0 " in out
        # every pair was fingerprinted on the cold run (smallbank's
        # creating updates defeat rw-pruning), so all 10 hit warm
        assert "cache         : 10 hits, 0 misses" in out
        assert "reduction     : 6 classes" in out

    def test_warm_cache_without_reduction(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, _ = run_cli(capsys, "verify", "smallbank", "--quick",
                          "--no-reduce", "--cache-dir", cache_dir)
        assert code == 0
        code, out = run_cli(capsys, "verify", "smallbank", "--quick",
                            "--no-reduce", "--cache-dir", cache_dir)
        assert code == 0
        assert "solver calls  : 0 " in out
        assert "cache         : 10 hits, 0 misses" in out


class TestTrace:
    def test_courseware_quick(self, capsys, tmp_path):
        out_file = tmp_path / "trace.jsonl"
        code, out = run_cli(capsys, "trace", "courseware", "--quick",
                            "--out", str(out_file))
        assert code == 0
        assert "== span tree ==" in out
        assert "== phase breakdown ==" in out
        assert "== slowest pairs" in out
        assert "== why restricted? ==" in out
        assert "pair-sweep" in out
        # explainer covered at least one restricted pair end-to-end
        assert "RESTRICTED" in out
        records = [json.loads(line)
                   for line in out_file.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert {"app-analysis", "pair-sweep", "pair",
                "check", "solver-call"} <= kinds

    def test_explicit_pair(self, capsys):
        code, out = run_cli(capsys, "trace", "courseware", "--quick",
                            "--pair", "AddCourse[0]", "DeleteCourse[0]")
        assert code == 0
        assert "pair: AddCourse[0] x DeleteCourse[0]" in out
        assert "diverging state:" in out

    def test_unknown_pair_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["trace", "courseware", "--quick",
                  "--pair", "Nope", "AddCourse[0]"])
        assert "Nope" in str(exc.value)


class TestChaos:
    def test_smallbank_chaos_smoke(self, capsys):
        code, out = run_cli(capsys, "chaos", "smallbank", "--seed", "1",
                            "--ops", "60", "--faults", "loss=0.2,dup=0.2,crash")
        assert code == 0
        assert "converged     : True" in out
        assert "invariants ok : True" in out

    def test_unknown_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["chaos", "smallbank", "--faults", "gremlins"])
        assert "gremlins" in str(exc.value)


class TestEngineChaos:
    def test_single_seed_smoke(self, capsys):
        code, out = run_cli(capsys, "engine-chaos", "--seeds", "1",
                            "--jobs", "2")
        assert code == 0
        assert "seed   0 [ok]" in out
        assert "1 ok, 0 failed" in out
        assert "crash=" in out  # every seed injects at least a crash

    def test_verify_deadline_flag_parses(self, capsys):
        code, out = run_cli(capsys, "verify", "smallbank", "--quick",
                            "--no-cache", "--deadline", "30")
        assert code == 0
        assert "restrictions  : 4" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_simulate_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["simulate", "todo"])


class TestDifftestDirected:
    def test_directed_smoke_runs_clean(self, capsys):
        code, out = run_cli(capsys, "difftest", "--directed",
                            "--seeds", "2", "--budget", "40")
        assert code == 0
        assert "probe eval(s)" in out
        assert "mismatch(es)" in out

    def test_directed_k3(self, capsys):
        code, out = run_cli(capsys, "difftest", "--directed",
                            "--seeds", "1", "--budget", "20", "--k", "3")
        assert code == 0

    def test_directed_random_arm(self, capsys):
        code, out = run_cli(capsys, "difftest", "--directed",
                            "--seeds", "1", "--budget", "20",
                            "--mode", "random")
        assert code == 0

    def test_isolation_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["difftest", "--directed", "--isolation", "strong"])
