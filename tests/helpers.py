"""Shared fixtures: a small blog schema mirroring the paper's Figure 3."""

from __future__ import annotations

from repro.soir import DBState, RelationSchema, Schema, make_model
from repro.soir.types import DATETIME, INT, STRING


def blog_schema() -> Schema:
    """User / Article / Comment with author and article relations."""
    schema = Schema()
    schema.add_model(
        make_model(
            "User",
            {"name": STRING},
            pk="name",
            auto_pk=False,
        )
    )
    schema.add_model(
        make_model(
            "Article",
            {"url": STRING, "title": STRING, "content": STRING, "created": DATETIME},
            unique=("url",),
        )
    )
    schema.add_model(make_model("Comment", {"text": STRING}))
    schema.add_relation(
        RelationSchema(
            "Article.author",
            source="Article",
            target="User",
            kind="fk",
            on_delete="set_null",
            reverse_name="article_set",
            nullable=True,
        )
    )
    schema.add_relation(
        RelationSchema(
            "Comment.user",
            source="Comment",
            target="User",
            kind="fk",
            on_delete="cascade",
            reverse_name="comment_set",
        )
    )
    schema.add_relation(
        RelationSchema(
            "Comment.article",
            source="Comment",
            target="Article",
            kind="fk",
            on_delete="cascade",
            reverse_name="comment_set",
        )
    )
    schema.validate()
    return schema


def blog_state(schema: Schema) -> DBState:
    """Two users, three articles, two comments."""
    state = DBState.empty(schema)
    for name in ("john", "mary"):
        state.insert_row("User", name, {"name": name})
    articles = [
        (1, "a/1", "Alpha", "first", 100),
        (2, "a/2", "Beta", "second", 200),
        (3, "a/3", "Gamma", "third", 300),
    ]
    for pk, url, title, content, created in articles:
        state.insert_row(
            "Article",
            pk,
            {"id": pk, "url": url, "title": title, "content": content, "created": created},
        )
    state.relation("Article.author").update({(1, "john"), (2, "john"), (3, "mary")})
    state.insert_row("Comment", 10, {"id": 10, "text": "nice"})
    state.insert_row("Comment", 11, {"id": 11, "text": "hmm"})
    state.relation("Comment.user").update({(10, "mary"), (11, "john")})
    state.relation("Comment.article").update({(10, 1), (11, 3)})
    return state
