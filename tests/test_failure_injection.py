"""Failure injection: every layer degrades the way it documents —
analyzer gaps go conservative (never silently wrong), the verifier treats
timeouts as restrictions, dispatch rolls back on crashes, and the solver
surfaces budget exhaustion."""

import pytest

from repro.analyzer import analyze_application
from repro.orm import Database, IntegerField, Model, Registry, TextField
from repro.soir import commands as C, expr as E
from repro.soir.path import CodePath
from repro.soir.types import INT, Comparator
from repro.verifier import CheckConfig, Outcome, verify_pair
from repro.verifier.enumcheck import PairChecker
from repro.web import Application, Client, HttpResponse, path


def tiny_app(view_factory, route="go"):
    registry = Registry(f"fi-{id(view_factory)}")
    with registry.use():

        class Thing(Model):
            label = TextField(default="")
            n = IntegerField(default=0)

    app = Application("fi", registry, [path(route, view_factory(Thing), name="V")])
    return app, Thing


class TestAnalyzerDegradation:
    def test_invalid_field_value_aborts(self):
        """A dict where a string belongs fails field validation — exactly
        what would happen concretely (HTTP 400), so the path aborts."""
        def factory(Thing):
            def view(request):
                Thing.objects.create(label={"not": "a string"})
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        analysis = analyze_application(app)
        assert analysis.paths[0].aborted

    def test_unliftable_filter_value_goes_conservative(self):
        def factory(Thing):
            def view(request):
                Thing.objects.filter(label=(lambda: 1)).delete()
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        analysis = analyze_application(app)
        assert analysis.paths[0].conservative

    def test_python_level_crash_on_symbolic_goes_conservative(self):
        def factory(Thing):
            def view(request):
                # len() of a symbolic string cannot be intercepted.
                n = len(request.POST["label"])
                Thing.objects.create(label="x", n=n)
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        analysis = analyze_application(app)
        assert analysis.paths[0].conservative
        assert "analyzer gap" in analysis.paths[0].abort_reason

    def test_symbolic_while_loop_goes_conservative(self):
        def factory(Thing):
            def view(request, pk):
                thing = Thing.objects.get(pk=pk)
                while thing.n > 0:  # symbolic loop condition, never ends
                    thing.n = thing.n - 1
                thing.save()
                return HttpResponse()
            return view

        app, _ = tiny_app(factory, route="go/<int:pk>")
        analysis = analyze_application(app)
        conservative = [p for p in analysis.paths if p.conservative]
        assert conservative

    def test_conservative_path_restricted_against_everything(self):
        def factory(Thing):
            def view(request):
                for thing in Thing.objects.all():  # iteration: unsupported
                    thing.delete()
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        analysis = analyze_application(app)
        bad = analysis.effectful_paths[0]
        verdict = verify_pair(bad, bad, analysis.schema)
        assert verdict.commutativity.outcome == Outcome.CONSERVATIVE
        assert verdict.restricted


class TestVerifierDegradation:
    def test_timeout_counts_as_restriction(self):
        registry = Registry("fi-timeout")
        with registry.use():

            class Row(Model):
                a = IntegerField(default=0)

        def bump(request, pk):
            row = Row.objects.get(pk=pk)
            row.a = row.a + 1
            row.save()
            return HttpResponse()

        app = Application("fi", registry, [path("b/<int:pk>", bump, name="B")])
        analysis = analyze_application(app)
        p = analysis.effectful_paths[0]
        # A zero-second budget forces TIMEOUT on the first candidate.
        config = CheckConfig(timeout_s=0.0)
        checker = PairChecker(p, p, analysis.schema, config)
        result = checker.check_commutativity()
        assert result.outcome == Outcome.TIMEOUT
        assert result.outcome.restricts

    def test_interp_error_is_not_swallowed(self):
        """A malformed path (analyzer-contract violation) raises loudly
        instead of producing a bogus verdict."""
        from repro.soir import Schema, make_model
        from repro.soir.interp import InterpError, run_path
        from repro.soir.state import DBState

        schema = Schema()
        schema.add_model(make_model("M", {}))
        bad = CodePath(
            "bad", (),
            (C.Guard(E.Exists("M", E.Var("never_bound", INT))),),
        )
        with pytest.raises(InterpError):
            run_path(bad, DBState.empty(schema), {}, schema)


class TestDispatchResilience:
    def test_crash_mid_request_rolls_back(self):
        def factory(Thing):
            def view(request):
                Thing.objects.create(label="partial")
                raise KeyError("boom")
            return view

        app, Thing = tiny_app(factory)
        client = Client(app, Database(app.registry))
        assert client.get("/go").status == 400
        with client.db.activate():
            assert Thing.objects.count() == 0

    def test_unroutable_is_404_not_crash(self):
        def factory(Thing):
            def view(request):
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        client = Client(app, Database(app.registry))
        assert client.get("/definitely/not/there").status == 404


class TestReplicationResilience:
    def test_rejected_operations_do_not_propagate(self):
        from repro.georep.replication import PoRReplicatedSystem
        from repro.soir import Schema, make_model
        from repro.soir.state import DBState

        schema = Schema()
        schema.add_model(make_model("Counter", {"v": INT}))
        state = DBState.empty(schema)
        state.insert_row("Counter", 1, {"id": 1, "v": 0})

        decrement = CodePath(
            "Dec", (),
            (
                C.Guard(E.Cmp(
                    Comparator.GT,
                    E.FieldGet(E.Deref(E.intlit(1), "Counter"), "v", INT),
                    E.intlit(0),
                )),
                C.Update(E.Singleton(E.SetField(
                    "v",
                    E.BinOp("-", E.FieldGet(E.Deref(E.intlit(1), "Counter"),
                                            "v", INT), E.intlit(1)),
                    E.Deref(E.intlit(1), "Counter"),
                ))),
            ),
        )
        system = PoRReplicatedSystem(schema, set(), initial=state)
        # v == 0 everywhere: every decrement is rejected at generation.
        for i in range(6):
            assert not system.submit(decrement, {}, i % 3)
        system.drain()
        assert system.rejected == 6
        assert system.converged()
        assert all(
            replica.table("Counter")[1]["v"] == 0
            for replica in system.replicas
        )


class TestCoordinationOutage:
    """Lease-based grants and outage fail-fast in the coordination
    service, and their surfacing through the deployment and the
    replicated system."""

    def _service(self, lease_ms=0.0):
        from repro.georep.coordination import CoordinationService

        return CoordinationService(
            {frozenset(("A", "B")), frozenset(("A",))}, lease_ms=lease_ms
        )

    def test_crashed_lease_holder_releases_within_timeout(self):
        svc = self._service(lease_ms=10.0)
        grants: list[int] = []
        first = svc.request("A", {"k": 1}, grants.append, now=0.0)
        assert grants == [first]
        # Conflicting request queues behind the (about-to-crash) holder.
        second = svc.request("B", {"k": 1}, grants.append, now=2.0)
        assert grants == [first] and svc.queue_length == 1
        # The holder never releases; before the lease lapses nothing moves,
        # at the deadline the grant is reclaimed and the waiter promoted.
        assert svc.expire(9.9) == []
        assert svc.expire(10.0) == [first]
        assert grants == [first, second]
        assert svc.lease_expiries == 1

    def test_waiter_lease_starts_at_grant_not_request(self):
        svc = self._service(lease_ms=10.0)
        grants: list[int] = []
        svc.request("A", {"k": 1}, grants.append, now=0.0)
        svc.request("B", {"k": 1}, grants.append, now=1.0)
        svc.expire(10.0)  # waiter granted at t=10
        assert len(grants) == 2
        # The waiter's lease runs from its grant (10), not its request (1).
        assert svc.expire(19.0) == []
        assert svc.expire(20.0) == [grants[1]]

    def test_requests_during_outage_fail_fast_with_reason(self):
        svc = self._service()
        grants: list[int] = []
        svc.set_available(False)
        assert svc.request("A", {"k": 1}, grants.append, now=0.0) is None
        assert grants == [] and svc.active_count == 0
        assert svc.failures and "unavailable" in svc.failures[0]
        assert "A" in svc.failures[0]
        # Recovery: the same request succeeds once the service is back.
        svc.set_available(True)
        ticket = svc.request("A", {"k": 1}, grants.append, now=1.0)
        assert grants == [ticket]

    def test_release_of_expired_ticket_is_harmless(self):
        svc = self._service(lease_ms=5.0)
        grants: list[int] = []
        ticket = svc.request("A", {"k": 1}, grants.append, now=0.0)
        svc.expire(5.0)
        svc.release(ticket, now=6.0)  # the slow holder finally releases
        assert svc.active_count == 0 and svc.lease_expiries == 1

    def test_replicated_system_refuses_restricted_ops_during_outage(self):
        from repro.georep.faults import FaultConfig, FaultInjector, OutageWindow
        from repro.georep.replication import PoRReplicatedSystem
        from repro.soir import Schema, make_model
        from repro.soir.state import DBState

        schema = Schema()
        schema.add_model(make_model("Counter", {"v": INT}))
        state = DBState.empty(schema)
        state.insert_row("Counter", 1, {"id": 1, "v": 5})
        state.insert_row("Counter", 2, {"id": 2, "v": 0})

        bump = CodePath(
            "Bump", (),
            (C.Update(E.Singleton(E.SetField(
                "v",
                E.BinOp("+", E.FieldGet(E.Deref(E.intlit(1), "Counter"),
                                        "v", INT), E.intlit(1)),
                E.Deref(E.intlit(1), "Counter"),
            ))),),
        )
        # Writes a different row, so it commutes with Bump and needs no
        # restriction.
        free = CodePath(
            "Free", (),
            (C.Update(E.Singleton(E.SetField(
                "v", E.intlit(9), E.Deref(E.intlit(2), "Counter"),
            ))),),
        )
        injector = FaultInjector(
            FaultConfig(seed=0, coord_outages=(OutageWindow(0.0, 10.0),))
        )
        system = PoRReplicatedSystem(
            schema, {frozenset(("Bump",))}, initial=state, transport=injector
        )
        injector.clock = 1.0
        # The restricted operation fails fast, with the reason recorded...
        assert not system.submit(bump, {}, 0)
        assert system.coord_rejected == 1
        assert system.refusals and "Bump" in system.refusals[0]
        # ...an unrestricted one proceeds, and after the outage heals the
        # restricted operation is accepted again.
        assert system.submit(free, {}, 1)
        injector.clock = 10.0
        assert system.submit(bump, {}, 0)
        system.drain()
        assert system.converged()

    def test_deployment_degrades_during_outage(self):
        from repro.georep.deployment import Deployment, DeploymentConfig
        from repro.georep.faults import FaultConfig, OutageWindow
        from repro.georep.workload import RequestSpec, Workload

        def factory(Thing):
            def view(request):
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        db = Database(app.registry)
        wl = Workload(app, db, write_ratio=1.0, seed=1)
        wl.writes = [lambda rng: RequestSpec("/go", "POST", {}, True)]
        wl.reads = [lambda rng: RequestSpec("/go", "GET", {}, False)]
        deployment = Deployment(
            app, db, wl, {frozenset(("V", "V"))},
            config=DeploymentConfig(duration_ms=100.0, warmup_ms=0.0),
            faults=FaultConfig(seed=0, coord_outages=(OutageWindow(0.0, 50.0),)),
        )
        summary = deployment.run()
        # Writes during the outage fail fast instead of hanging...
        assert summary.faults.coord_failures > 0
        assert summary.error_fraction > 0
        # ...and the deployment keeps completing requests throughout.
        assert summary.requests > summary.faults.coord_failures
