"""Failure injection: every layer degrades the way it documents —
analyzer gaps go conservative (never silently wrong), the verifier treats
timeouts as restrictions, dispatch rolls back on crashes, and the solver
surfaces budget exhaustion."""

import pytest

from repro.analyzer import analyze_application
from repro.orm import Database, IntegerField, Model, Registry, TextField
from repro.soir import commands as C, expr as E
from repro.soir.path import CodePath
from repro.soir.types import INT, Comparator
from repro.verifier import CheckConfig, Outcome, verify_pair
from repro.verifier.enumcheck import PairChecker
from repro.web import Application, Client, HttpResponse, path


def tiny_app(view_factory, route="go"):
    registry = Registry(f"fi-{id(view_factory)}")
    with registry.use():

        class Thing(Model):
            label = TextField(default="")
            n = IntegerField(default=0)

    app = Application("fi", registry, [path(route, view_factory(Thing), name="V")])
    return app, Thing


class TestAnalyzerDegradation:
    def test_invalid_field_value_aborts(self):
        """A dict where a string belongs fails field validation — exactly
        what would happen concretely (HTTP 400), so the path aborts."""
        def factory(Thing):
            def view(request):
                Thing.objects.create(label={"not": "a string"})
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        analysis = analyze_application(app)
        assert analysis.paths[0].aborted

    def test_unliftable_filter_value_goes_conservative(self):
        def factory(Thing):
            def view(request):
                Thing.objects.filter(label=(lambda: 1)).delete()
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        analysis = analyze_application(app)
        assert analysis.paths[0].conservative

    def test_python_level_crash_on_symbolic_goes_conservative(self):
        def factory(Thing):
            def view(request):
                # len() of a symbolic string cannot be intercepted.
                n = len(request.POST["label"])
                Thing.objects.create(label="x", n=n)
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        analysis = analyze_application(app)
        assert analysis.paths[0].conservative
        assert "analyzer gap" in analysis.paths[0].abort_reason

    def test_symbolic_while_loop_goes_conservative(self):
        def factory(Thing):
            def view(request, pk):
                thing = Thing.objects.get(pk=pk)
                while thing.n > 0:  # symbolic loop condition, never ends
                    thing.n = thing.n - 1
                thing.save()
                return HttpResponse()
            return view

        app, _ = tiny_app(factory, route="go/<int:pk>")
        analysis = analyze_application(app)
        conservative = [p for p in analysis.paths if p.conservative]
        assert conservative

    def test_conservative_path_restricted_against_everything(self):
        def factory(Thing):
            def view(request):
                for thing in Thing.objects.all():  # iteration: unsupported
                    thing.delete()
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        analysis = analyze_application(app)
        bad = analysis.effectful_paths[0]
        verdict = verify_pair(bad, bad, analysis.schema)
        assert verdict.commutativity.outcome == Outcome.CONSERVATIVE
        assert verdict.restricted


class TestVerifierDegradation:
    def test_timeout_counts_as_restriction(self):
        registry = Registry("fi-timeout")
        with registry.use():

            class Row(Model):
                a = IntegerField(default=0)

        def bump(request, pk):
            row = Row.objects.get(pk=pk)
            row.a = row.a + 1
            row.save()
            return HttpResponse()

        app = Application("fi", registry, [path("b/<int:pk>", bump, name="B")])
        analysis = analyze_application(app)
        p = analysis.effectful_paths[0]
        # A zero-second budget forces TIMEOUT on the first candidate.
        config = CheckConfig(timeout_s=0.0)
        checker = PairChecker(p, p, analysis.schema, config)
        result = checker.check_commutativity()
        assert result.outcome == Outcome.TIMEOUT
        assert result.outcome.restricts

    def test_interp_error_is_not_swallowed(self):
        """A malformed path (analyzer-contract violation) raises loudly
        instead of producing a bogus verdict."""
        from repro.soir import Schema, make_model
        from repro.soir.interp import InterpError, run_path
        from repro.soir.state import DBState

        schema = Schema()
        schema.add_model(make_model("M", {}))
        bad = CodePath(
            "bad", (),
            (C.Guard(E.Exists("M", E.Var("never_bound", INT))),),
        )
        with pytest.raises(InterpError):
            run_path(bad, DBState.empty(schema), {}, schema)


class TestDispatchResilience:
    def test_crash_mid_request_rolls_back(self):
        def factory(Thing):
            def view(request):
                Thing.objects.create(label="partial")
                raise KeyError("boom")
            return view

        app, Thing = tiny_app(factory)
        client = Client(app, Database(app.registry))
        assert client.get("/go").status == 400
        with client.db.activate():
            assert Thing.objects.count() == 0

    def test_unroutable_is_404_not_crash(self):
        def factory(Thing):
            def view(request):
                return HttpResponse()
            return view

        app, _ = tiny_app(factory)
        client = Client(app, Database(app.registry))
        assert client.get("/definitely/not/there").status == 404


class TestReplicationResilience:
    def test_rejected_operations_do_not_propagate(self):
        from repro.georep.replication import PoRReplicatedSystem
        from repro.soir import Schema, make_model
        from repro.soir.state import DBState

        schema = Schema()
        schema.add_model(make_model("Counter", {"v": INT}))
        state = DBState.empty(schema)
        state.insert_row("Counter", 1, {"id": 1, "v": 0})

        decrement = CodePath(
            "Dec", (),
            (
                C.Guard(E.Cmp(
                    Comparator.GT,
                    E.FieldGet(E.Deref(E.intlit(1), "Counter"), "v", INT),
                    E.intlit(0),
                )),
                C.Update(E.Singleton(E.SetField(
                    "v",
                    E.BinOp("-", E.FieldGet(E.Deref(E.intlit(1), "Counter"),
                                            "v", INT), E.intlit(1)),
                    E.Deref(E.intlit(1), "Counter"),
                ))),
            ),
        )
        system = PoRReplicatedSystem(schema, set(), initial=state)
        # v == 0 everywhere: every decrement is rejected at generation.
        for i in range(6):
            assert not system.submit(decrement, {}, i % 3)
        system.drain()
        assert system.rejected == 6
        assert system.converged()
        assert all(
            replica.table("Counter")[1]["v"] == 0
            for replica in system.replicas
        )
