"""Tests of the SOIR reference interpreter against the blog schema."""

import pytest

from repro.soir import (
    Argument,
    CodePath,
    DBState,
    ObjVal,
    commands as C,
    expr as E,
    run_path,
    precondition_holds,
)
from repro.soir.interp import Interpreter, compare, PathAborted
from repro.soir.types import (
    INT,
    STRING,
    Aggregation,
    Comparator,
    Direction,
    DRelation,
    ObjType,
    Order,
    RefType,
)

from helpers import blog_schema, blog_state


@pytest.fixture()
def schema():
    return blog_schema()


@pytest.fixture()
def state(schema):
    return blog_state(schema)


def interp(schema, state, env=None):
    return Interpreter(schema, state, env or {})


AUTHOR = DRelation("Article.author", Direction.FORWARD)
AUTHOR_REV = DRelation("Article.author", Direction.BACKWARD)


class TestExpressions:
    def test_all_returns_insertion_order(self, schema, state):
        qs = interp(schema, state).eval(E.All("Article"))
        assert [o.fields["id"] for o in qs.objs] == [1, 2, 3]

    def test_filter_plain_field(self, schema, state):
        e = E.Filter(E.All("Article"), (), "title", Comparator.EQ, E.strlit("Beta"))
        qs = interp(schema, state).eval(e)
        assert [o.fields["id"] for o in qs.objs] == [2]

    def test_filter_through_relation(self, schema, state):
        e = E.Filter(E.All("Article"), (AUTHOR,), "name", Comparator.EQ, E.strlit("john"))
        qs = interp(schema, state).eval(e)
        assert [o.fields["id"] for o in qs.objs] == [1, 2]

    def test_filter_multi_hop(self, schema, state):
        # Comments on articles authored by mary.
        e = E.Filter(
            E.All("Comment"),
            (DRelation("Comment.article"), AUTHOR),
            "name",
            Comparator.EQ,
            E.strlit("mary"),
        )
        qs = interp(schema, state).eval(e)
        assert [o.fields["id"] for o in qs.objs] == [11]

    def test_follow_forward(self, schema, state):
        e = E.Follow(E.All("Article"), (AUTHOR,), "User")
        qs = interp(schema, state).eval(e)
        assert sorted(o.fields["name"] for o in qs.objs) == ["john", "mary"]

    def test_follow_backward(self, schema, state):
        john = E.Filter(E.All("User"), (), "name", Comparator.EQ, E.strlit("john"))
        e = E.Follow(john, (AUTHOR_REV,), "Article")
        qs = interp(schema, state).eval(e)
        assert [o.fields["id"] for o in qs.objs] == [1, 2]

    def test_orderby_and_first_last(self, schema, state):
        by_created_desc = E.OrderBy(E.All("Article"), "created", Order.DESC)
        it = interp(schema, state)
        assert it.eval(E.FirstOf(by_created_desc)).fields["id"] == 3
        assert it.eval(E.LastOf(by_created_desc)).fields["id"] == 1

    def test_reverse(self, schema, state):
        e = E.ReverseSet(E.All("Article"))
        qs = interp(schema, state).eval(e)
        assert [o.fields["id"] for o in qs.objs] == [3, 2, 1]

    def test_first_of_empty_aborts(self, schema, state):
        e = E.FirstOf(E.Filter(E.All("Article"), (), "id", Comparator.EQ, E.intlit(99)))
        with pytest.raises(PathAborted):
            interp(schema, state).eval(e)

    def test_aggregates(self, schema, state):
        it = interp(schema, state)
        qs = E.All("Article")
        assert it.eval(E.Aggregate(qs, Aggregation.CNT, "id", INT)) == 3
        assert it.eval(E.Aggregate(qs, Aggregation.MAX, "created", INT)) == 300
        assert it.eval(E.Aggregate(qs, Aggregation.MIN, "created", INT)) == 100
        assert it.eval(E.Aggregate(qs, Aggregation.SUM, "created", INT)) == 600
        assert it.eval(E.Aggregate(qs, Aggregation.AVG, "created", INT)) == 200

    def test_aggregate_empty(self, schema, state):
        empty = E.Filter(E.All("Article"), (), "id", Comparator.EQ, E.intlit(99))
        it = interp(schema, state)
        assert it.eval(E.Aggregate(empty, Aggregation.CNT, "id", INT)) == 0
        assert it.eval(E.Aggregate(empty, Aggregation.MAX, "created", INT)) is None

    def test_exists_and_deref(self, schema, state):
        it = interp(schema, state)
        assert it.eval(E.Exists("User", E.strlit("john"))) is True
        assert it.eval(E.Exists("User", E.strlit("ghost"))) is False
        u = it.eval(E.Deref(E.strlit("john"), "User"))
        assert u.fields["name"] == "john"
        with pytest.raises(PathAborted):
            it.eval(E.Deref(E.strlit("ghost"), "User"))

    def test_member_and_empty(self, schema, state):
        it = interp(schema, state)
        art1 = E.Deref(E.intlit(1), "Article")
        johns = E.Filter(E.All("Article"), (AUTHOR,), "name", Comparator.EQ, E.strlit("john"))
        assert it.eval(E.MemberOf(art1, johns)) is True
        assert it.eval(E.IsEmpty(johns)) is False

    def test_setfield_is_functional(self, schema, state):
        it = interp(schema, state)
        base = E.Deref(E.intlit(1), "Article")
        changed = E.SetField("title", E.strlit("New"), base)
        obj = it.eval(changed)
        assert obj.fields["title"] == "New"
        # The database row is untouched.
        assert state.tables["Article"][1]["title"] == "Alpha"

    def test_arithmetic(self, schema, state):
        it = interp(schema, state)
        assert it.eval(E.BinOp("+", E.intlit(2), E.intlit(3))) == 5
        assert it.eval(E.BinOp("/", E.intlit(7), E.intlit(2))) == 3
        assert it.eval(E.BinOp("/", E.intlit(-7), E.intlit(2))) == -3
        assert it.eval(E.BinOp("concat", E.strlit("a"), E.strlit("b"))) == "ab"
        assert it.eval(E.Neg(E.intlit(4))) == -4
        with pytest.raises(PathAborted):
            it.eval(E.BinOp("/", E.intlit(1), E.intlit(0)))

    def test_boolean_connectives(self, schema, state):
        it = interp(schema, state)
        assert it.eval(E.And((E.true(), E.true()))) is True
        assert it.eval(E.Or((E.false(), E.true()))) is True
        assert it.eval(E.Not(E.false())) is True
        assert it.eval(E.Ite(E.true(), E.intlit(1), E.intlit(2))) == 1

    def test_var_binding(self, schema, state):
        it = interp(schema, state, {"x": 42})
        assert it.eval(E.Var("x", INT)) == 42

    def test_opaque_requires_pin(self, schema, state):
        from repro.soir.interp import InterpError

        it = interp(schema, state)
        with pytest.raises(InterpError):
            it.eval(E.Opaque("mystery", INT))
        it2 = interp(schema, state, {"mystery": 7})
        assert it2.eval(E.Opaque("mystery", INT)) == 7


class TestCompare:
    def test_null_semantics(self):
        assert compare(Comparator.EQ, None, None)
        assert not compare(Comparator.EQ, None, 1)
        assert compare(Comparator.NE, None, 1)
        assert not compare(Comparator.LT, None, 1)
        assert not compare(Comparator.GE, 1, None)

    def test_string_ops(self):
        assert compare(Comparator.CONTAINS, "hello world", "lo w")
        assert compare(Comparator.STARTSWITH, "hello", "he")
        assert compare(Comparator.IN, 2, (1, 2, 3))


class TestCommands:
    def test_update_modifies_rows(self, schema, state):
        renamed = E.SetField(
            "title", E.strlit("Renamed"), E.Deref(E.intlit(1), "Article")
        )
        path = CodePath("t", (), (C.Update(E.Singleton(renamed)),))
        out = run_path(path, state, {}, schema)
        assert out.committed
        assert out.state.tables["Article"][1]["title"] == "Renamed"
        # Input state untouched.
        assert state.tables["Article"][1]["title"] == "Alpha"

    def test_update_inserts_new_object(self, schema, state):
        new = E.MakeObj(
            "Article",
            (
                ("id", E.intlit(50)),
                ("url", E.strlit("a/50")),
                ("title", E.strlit("Delta")),
                ("content", E.strlit("x")),
                ("created", E.intlit(400)),
            ),
        )
        path = CodePath("t", (), (C.Update(E.Singleton(new)),))
        out = run_path(path, state, {}, schema)
        assert out.committed
        assert 50 in out.state.tables["Article"]
        # New row receives the next order number.
        assert out.state.order["Article"][50] == 3

    def test_update_unique_violation_aborts(self, schema, state):
        clash = E.MakeObj(
            "Article",
            (
                ("id", E.intlit(51)),
                ("url", E.strlit("a/1")),  # duplicates article 1's unique url
                ("title", E.strlit("Dup")),
                ("content", E.strlit("x")),
                ("created", E.intlit(1)),
            ),
        )
        path = CodePath("t", (), (C.Update(E.Singleton(clash)),))
        out = run_path(path, state, {}, schema)
        assert not out.committed
        assert "unique" in out.reason

    def test_guard_aborts(self, schema, state):
        path = CodePath(
            "t",
            (),
            (
                C.Guard(E.Exists("User", E.strlit("ghost"))),
                C.Delete(E.All("Comment")),
            ),
        )
        out = run_path(path, state, {}, schema)
        assert not out.committed
        assert out.state.tables["Comment"]  # unchanged

    def test_delete_cascades(self, schema, state):
        # Deleting article 1 cascades into comment 10 (Comment.article CASCADE).
        target = E.Filter(E.All("Article"), (), "id", Comparator.EQ, E.intlit(1))
        path = CodePath("t", (), (C.Delete(target),))
        out = run_path(path, state, {}, schema)
        assert out.committed
        assert 1 not in out.state.tables["Article"]
        assert 10 not in out.state.tables["Comment"]
        assert (10, 1) not in out.state.assocs["Comment.article"]
        assert (10, "mary") not in out.state.assocs["Comment.user"]

    def test_delete_set_null(self, schema, state):
        # Deleting user john clears Article.author pairs (SET_NULL) but
        # cascades comments authored by john.
        target = E.Filter(E.All("User"), (), "name", Comparator.EQ, E.strlit("john"))
        path = CodePath("t", (), (C.Delete(target),))
        out = run_path(path, state, {}, schema)
        assert out.committed
        assert "john" not in out.state.tables["User"]
        assert 1 in out.state.tables["Article"]  # article survives
        assert not {p for p in out.state.assocs["Article.author"] if p[1] == "john"}
        assert 11 not in out.state.tables["Comment"]  # comment cascaded

    def test_delete_protect_aborts(self, schema):
        from repro.soir import RelationSchema, Schema, make_model
        from repro.soir.types import STRING

        s = Schema()
        s.add_model(make_model("A", {}))
        s.add_model(make_model("B", {}))
        s.add_relation(RelationSchema("B.a", "B", "A", on_delete="protect"))
        state = DBState.empty(s)
        state.insert_row("A", 1, {"id": 1})
        state.insert_row("B", 2, {"id": 2})
        state.relation("B.a").add((2, 1))
        path = CodePath("t", (), (C.Delete(E.All("A")),))
        out = run_path(path, state, {}, s)
        assert not out.committed
        assert "protected" in out.reason

    def test_link_replaces_fk(self, schema, state):
        art = E.Deref(E.intlit(1), "Article")
        mary = E.Deref(E.strlit("mary"), "User")
        path = CodePath("t", (), (C.Link("Article.author", art, mary),))
        out = run_path(path, state, {}, schema)
        pairs = out.state.assocs["Article.author"]
        assert (1, "mary") in pairs
        assert (1, "john") not in pairs

    def test_delink(self, schema, state):
        art = E.Deref(E.intlit(1), "Article")
        john = E.Deref(E.strlit("john"), "User")
        path = CodePath("t", (), (C.Delink("Article.author", art, john),))
        out = run_path(path, state, {}, schema)
        assert (1, "john") not in out.state.assocs["Article.author"]

    def test_rlink_batch_transfer(self, schema, state):
        johns = E.Filter(E.All("Article"), (AUTHOR,), "name", Comparator.EQ, E.strlit("john"))
        mary = E.Deref(E.strlit("mary"), "User")
        path = CodePath("t", (), (C.RLink("Article.author", johns, mary),))
        out = run_path(path, state, {}, schema)
        pairs = out.state.assocs["Article.author"]
        assert pairs == {(1, "mary"), (2, "mary"), (3, "mary")}

    def test_clearlinks_target_end(self, schema, state):
        john = E.Deref(E.strlit("john"), "User")
        path = CodePath("t", (), (C.ClearLinks("Article.author", john, "target"),))
        out = run_path(path, state, {}, schema)
        assert {p for p in out.state.assocs["Article.author"] if p[1] == "john"} == set()
        assert (3, "mary") in out.state.assocs["Article.author"]

    def test_precondition_helper(self, schema, state):
        ok = CodePath("t", (), (C.Guard(E.Exists("User", E.strlit("john"))),))
        bad = CodePath("t", (), (C.Guard(E.Exists("User", E.strlit("ghost"))),))
        assert precondition_holds(ok, state, {}, schema)
        assert not precondition_holds(bad, state, {}, schema)


class TestStateEquality:
    def test_same_state_modulo_order(self, schema, state):
        other = state.clone()
        assert state.same_state(other)
        other.order["Article"][1] = 99
        assert state.same_state(other)  # order ignored by default
        assert not state.same_state(other, with_order=True)

    def test_data_difference_detected(self, schema, state):
        other = state.clone()
        other.tables["Article"][1]["title"] = "X"
        assert not state.same_state(other)

    def test_assoc_difference_detected(self, schema, state):
        other = state.clone()
        other.assocs["Article.author"].discard((1, "john"))
        assert not state.same_state(other)
