"""Tests for query sets, lookups, managers and database execution."""

import pytest

from repro.orm import (
    CASCADE,
    Database,
    FieldError,
    ForeignKey,
    IntegerField,
    IntegrityError,
    ManyToManyField,
    Model,
    PROTECT,
    ProtectedError,
    Registry,
    SET_NULL,
    TextField,
    TransactionError,
    ValidationError,
)
from repro.orm.query import parse_lookup
from repro.soir.types import Comparator, Direction


@pytest.fixture(scope="module")
def models():
    reg = Registry("qtest")
    with reg.use():
        class User(Model):
            name = TextField(primary_key=True)
            age = IntegerField(default=0)

        class Article(Model):
            url = TextField(unique=True)
            title = TextField(default="")
            views = IntegerField(default=0)
            author = ForeignKey(User, on_delete=SET_NULL, null=True)
            tags = ManyToManyField("Tag")

        class Tag(Model):
            label = TextField(unique=True)

        class Comment(Model):
            text = TextField(default="")
            user = ForeignKey(User, on_delete=CASCADE)
            article = ForeignKey(Article, on_delete=CASCADE)

        class Invoice(Model):
            number = TextField(unique=True)
            customer = ForeignKey(User, on_delete=PROTECT)

    class NS:
        pass

    ns = NS()
    ns.registry = reg
    ns.User, ns.Article, ns.Tag, ns.Comment, ns.Invoice = (
        User, Article, Tag, Comment, Invoice,
    )
    return ns


@pytest.fixture()
def db(models):
    database = Database(models.registry)
    with database.activate():
        yield database


@pytest.fixture()
def populated(db, models):
    john = models.User.objects.create(name="john", age=30)
    mary = models.User.objects.create(name="mary", age=25)
    a1 = models.Article.objects.create(url="a/1", title="Alpha", views=10, author=john)
    a2 = models.Article.objects.create(url="a/2", title="Beta", views=20, author=john)
    a3 = models.Article.objects.create(url="a/3", title="Gamma", views=30, author=mary)
    models.Comment.objects.create(text="nice", user=mary, article=a1)
    models.Comment.objects.create(text="hmm", user=john, article=a3)
    return db


class TestParseLookup:
    def test_plain_field(self, models):
        lk = parse_lookup(models.Article, "title", "x")
        assert lk.relpath == () and lk.field == "title"
        assert lk.op == Comparator.EQ and lk.value == "x"

    def test_op_suffix(self, models):
        lk = parse_lookup(models.Article, "views__gte", 5)
        assert lk.op == Comparator.GE

    def test_pk_alias(self, models):
        lk = parse_lookup(models.Article, "pk", 3)
        assert lk.field == "id"

    def test_fk_by_instance(self, models):
        user = models.User(name="z")
        lk = parse_lookup(models.Article, "author", user)
        assert len(lk.relpath) == 1
        assert lk.relpath[0].relation == "Article.author"
        assert lk.relpath[0].direction == Direction.FORWARD
        assert lk.field == "name" and lk.value == "z"

    def test_fk_id_shortcut(self, models):
        lk = parse_lookup(models.Article, "author_id", "z")
        assert lk.relpath[0].relation == "Article.author"
        assert lk.field == "name"

    def test_chained_relations(self, models):
        lk = parse_lookup(models.Comment, "article__author__name", "j")
        assert [h.relation for h in lk.relpath] == [
            "Comment.article",
            "Article.author",
        ]
        assert lk.field == "name"

    def test_reverse_accessor_lookup(self, models):
        # Users who authored an article with a given title.
        lk = parse_lookup(models.User, "article_set__title", "Alpha")
        assert lk.relpath[0].direction == Direction.BACKWARD
        assert lk.field == "title"

    def test_none_becomes_isnull(self, models):
        lk = parse_lookup(models.Article, "author", None)
        assert lk.op == Comparator.ISNULL and lk.value is True

    def test_isnull_on_relation(self, models):
        lk = parse_lookup(models.Article, "author__isnull", False)
        assert lk.op == Comparator.ISNULL and lk.value is False

    def test_in_with_instances(self, models):
        u1, u2 = models.User(name="a"), models.User(name="b")
        lk = parse_lookup(models.Article, "author__in", [u1, u2])
        assert lk.op == Comparator.IN and lk.value == ("a", "b")

    def test_unknown_field(self, models):
        with pytest.raises(FieldError):
            parse_lookup(models.Article, "bogus", 1)

    def test_field_after_field_rejected(self, models):
        with pytest.raises(FieldError):
            parse_lookup(models.Article, "title__views", 1)


class TestQueryExecution:
    def test_all_and_count(self, populated, models):
        assert models.Article.objects.count() == 3
        assert len(list(models.Article.objects.all())) == 3

    def test_filter_chains_are_lazy(self, populated, models):
        qs = models.Article.objects.filter(views__gte=15)
        qs2 = qs.filter(author__name="john")
        assert [a.title for a in qs2] == ["Beta"]
        # Original queryset unaffected (immutability).
        assert {a.title for a in qs} == {"Beta", "Gamma"}

    def test_exclude(self, populated, models):
        qs = models.Article.objects.exclude(title="Beta")
        assert {a.title for a in qs} == {"Alpha", "Gamma"}

    def test_exclude_relation_rejected(self, populated, models):
        with pytest.raises(FieldError):
            models.Article.objects.exclude(author__name="john")

    def test_exclude_isnull_flip(self, populated, models):
        models.Article.objects.create(url="a/4", title="NoAuthor")
        qs = models.Article.objects.exclude(author=None)
        assert {a.title for a in qs} == {"Alpha", "Beta", "Gamma"}

    def test_get_ok(self, populated, models):
        a = models.Article.objects.get(url="a/2")
        assert a.title == "Beta"

    def test_get_missing(self, populated, models):
        with pytest.raises(models.Article.DoesNotExist):
            models.Article.objects.get(url="nope")

    def test_get_multiple(self, populated, models):
        with pytest.raises(models.Article.MultipleObjectsReturned):
            models.Article.objects.get(author__name="john")

    def test_order_by_and_first_last(self, populated, models):
        qs = models.Article.objects.order_by("-views")
        assert [a.views for a in qs] == [30, 20, 10]
        assert qs.first().views == 30
        assert qs.last().views == 10
        assert models.Article.objects.order_by("views").reverse().first().views == 30

    def test_first_on_empty(self, populated, models):
        assert models.Article.objects.filter(views__gt=999).first() is None

    def test_getitem_len_bool(self, populated, models):
        qs = models.Article.objects.order_by("url")
        assert qs[0].url == "a/1"
        assert len(qs) == 3
        assert bool(qs)
        assert not models.Article.objects.filter(views__gt=999)

    def test_aggregates(self, populated, models):
        qs = models.Article.objects.all()
        assert qs.sum("views") == 60
        assert qs.max("views") == 30
        assert qs.min("views") == 10
        assert qs.avg("views") == 20
        assert models.Article.objects.filter(views__gt=999).sum("views") == 0
        assert models.Article.objects.filter(views__gt=999).max("views") is None

    def test_values_list(self, populated, models):
        titles = models.Article.objects.order_by("url").values_list("title")
        assert titles == ["Alpha", "Beta", "Gamma"]

    def test_nested_relation_filter(self, populated, models):
        # Comments on articles authored by mary (paper §2.3's nested filter).
        qs = models.Comment.objects.filter(article__author__name="mary")
        assert [c.text for c in qs] == ["hmm"]

    def test_in_lookup(self, populated, models):
        qs = models.Article.objects.filter(title__in=["Alpha", "Gamma"])
        assert {a.title for a in qs} == {"Alpha", "Gamma"}

    def test_contains_startswith(self, populated, models):
        assert models.Article.objects.filter(title__contains="et").count() == 1
        assert models.Article.objects.filter(title__startswith="Ga").count() == 1

    def test_get_or_create(self, populated, models):
        tag, created = models.Tag.objects.get_or_create(label="x")
        assert created
        tag2, created2 = models.Tag.objects.get_or_create(label="x")
        assert not created2 and tag2.pk == tag.pk


class TestWrites:
    def test_save_update(self, populated, models):
        a = models.Article.objects.get(url="a/1")
        a.title = "Alpha2"
        a.save()
        assert models.Article.objects.get(url="a/1").title == "Alpha2"

    def test_unique_violation(self, populated, models):
        with pytest.raises(IntegrityError):
            models.Article.objects.create(url="a/1", title="Dup")

    def test_field_validation_on_save(self, populated, models):
        with pytest.raises(ValidationError):
            models.Article.objects.create(url="a/9", title="X", views="many")

    def test_fk_must_exist(self, populated, models):
        ghost = models.User(name="ghost")  # never saved
        with pytest.raises(IntegrityError):
            models.Article.objects.create(url="a/9", author=ghost)

    def test_non_nullable_fk(self, populated, models):
        with pytest.raises(IntegrityError):
            models.Comment.objects.create(text="orphan")

    def test_bulk_update(self, populated, models):
        models.Article.objects.filter(author__name="john").update(views=0)
        assert models.Article.objects.filter(views=0).count() == 2

    def test_bulk_update_fk(self, populated, models):
        mary = models.User.objects.get(name="mary")
        models.Article.objects.filter(author__name="john").update(author=mary)
        assert models.Article.objects.filter(author=mary).count() == 3

    def test_bulk_delete_cascade(self, populated, models):
        models.Article.objects.filter(url="a/1").delete()
        assert models.Comment.objects.filter(text="nice").count() == 0

    def test_instance_delete(self, populated, models):
        a = models.Article.objects.get(url="a/2")
        a.delete()
        assert models.Article.objects.count() == 2

    def test_delete_set_null(self, populated, models):
        models.User.objects.get(name="john").delete()
        # Articles survive with author nulled; john's comment cascades.
        assert models.Article.objects.count() == 3
        assert models.Article.objects.filter(author=None).count() == 2
        assert models.Comment.objects.count() == 1

    def test_delete_protect(self, populated, models):
        john = models.User.objects.get(name="john")
        models.Invoice.objects.create(number="i/1", customer=john)
        with pytest.raises(ProtectedError):
            john.delete()

    def test_refresh_from_db(self, populated, models):
        a = models.Article.objects.get(url="a/1")
        models.Article.objects.filter(url="a/1").update(title="Fresh")
        a.refresh_from_db()
        assert a.title == "Fresh"

    def test_auto_id_allocation_unique(self, db, models):
        t1 = models.Tag.objects.create(label="a")
        t2 = models.Tag.objects.create(label="b")
        assert t1.pk != t2.pk

    def test_striped_id_allocation(self, models):
        db_a = Database(models.registry, site_id=0, sites=3)
        db_b = Database(models.registry, site_id=1, sites=3)
        with db_a.activate():
            ids_a = [models.Tag.objects.create(label=f"a{i}").pk for i in range(5)]
        with db_b.activate():
            ids_b = [models.Tag.objects.create(label=f"b{i}").pk for i in range(5)]
        assert not set(ids_a) & set(ids_b)


class TestRelationsRuntime:
    def test_fk_attribute_deref(self, populated, models):
        a = models.Article.objects.get(url="a/1")
        assert a.author.name == "john"
        assert a.author_id == "john"

    def test_fk_set_none(self, populated, models):
        a = models.Article.objects.get(url="a/1")
        a.author = None
        a.save()
        assert models.Article.objects.get(url="a/1").author is None

    def test_reverse_manager(self, populated, models):
        john = models.User.objects.get(name="john")
        assert john.article_set.count() == 2
        assert {a.title for a in john.article_set.filter(views__gte=15)} == {"Beta"}
        assert john.article_set.exists()

    def test_reverse_create(self, populated, models):
        john = models.User.objects.get(name="john")
        a = john.article_set.create(url="a/10", title="New")
        assert a.author.name == "john"

    def test_reverse_add_and_clear(self, populated, models):
        mary = models.User.objects.get(name="mary")
        a1 = models.Article.objects.get(url="a/1")
        mary.article_set.add(a1)
        assert a1.pk in [a.pk for a in mary.article_set.all()]
        mary.article_set.clear()
        assert mary.article_set.count() == 0

    def test_m2m_add_remove(self, populated, models):
        a1 = models.Article.objects.get(url="a/1")
        t1 = models.Tag.objects.create(label="news")
        t2 = models.Tag.objects.create(label="tech")
        a1.tags.add(t1, t2)
        assert {t.label for t in a1.tags.all()} == {"news", "tech"}
        a1.tags.remove(t1)
        assert {t.label for t in a1.tags.all()} == {"tech"}

    def test_m2m_set_and_reverse(self, populated, models):
        a1 = models.Article.objects.get(url="a/1")
        a2 = models.Article.objects.get(url="a/2")
        t = models.Tag.objects.create(label="shared")
        a1.tags.set([t])
        a2.tags.add(t)
        assert {a.url for a in t.article_set.all()} == {"a/1", "a/2"}
        t.article_set.remove(a1)
        assert {a.url for a in t.article_set.all()} == {"a/2"}

    def test_m2m_clear(self, populated, models):
        a1 = models.Article.objects.get(url="a/1")
        t = models.Tag.objects.create(label="x")
        a1.tags.add(t)
        a1.tags.clear()
        assert a1.tags.count() == 0


class TestTransactions:
    def test_rollback_on_exception(self, populated, models, db):
        with pytest.raises(RuntimeError):
            with db.atomic():
                models.Article.objects.all().delete()
                raise RuntimeError("boom")
        assert models.Article.objects.count() == 3

    def test_commit(self, populated, models, db):
        with db.atomic():
            models.Article.objects.filter(url="a/1").update(title="T")
        assert models.Article.objects.get(url="a/1").title == "T"

    def test_nested_joins_outer(self, populated, models, db):
        with pytest.raises(RuntimeError):
            with db.atomic():
                models.Article.objects.filter(url="a/1").update(title="T")
                with db.atomic():
                    models.Article.objects.filter(url="a/2").update(title="U")
                raise RuntimeError("boom")
        assert models.Article.objects.get(url="a/1").title == "Alpha"
        assert models.Article.objects.get(url="a/2").title == "Beta"

    def test_flush_inside_tx_rejected(self, populated, db):
        with pytest.raises(TransactionError):
            with db.atomic():
                db.flush()
