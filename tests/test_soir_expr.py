"""Unit tests for SOIR expression construction and traversal."""

import pytest

from repro.soir import expr as E
from repro.soir.pretty import pp_expr
from repro.soir.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    Aggregation,
    Comparator,
    Direction,
    DRelation,
    ObjType,
    Order,
    RefType,
    SetType,
)


def test_literal_types():
    assert E.intlit(5).type == INT
    assert E.strlit("x").type == STRING
    assert E.floatlit(1.5).type == FLOAT
    assert E.true().type == BOOL
    assert E.NoneLit(INT).type == INT


def test_binop_type_promotion():
    i = E.Var("i", INT)
    f = E.Var("f", FLOAT)
    assert E.BinOp("+", i, i).type == INT
    assert E.BinOp("+", i, f).type == FLOAT
    assert E.BinOp("concat", E.strlit("a"), E.strlit("b")).type == STRING


def test_binop_rejects_unknown_op():
    with pytest.raises(E.SoirTypeError):
        E.BinOp("xor", E.intlit(1), E.intlit(2))


def test_children_roundtrip():
    a, b = E.Var("a", INT), E.intlit(2)
    e = E.BinOp("+", a, b)
    assert e.children() == (a, b)
    swapped = e.with_children((b, a))
    assert swapped.left == b and swapped.right == a


def test_with_children_arity_check():
    e = E.BinOp("+", E.intlit(1), E.intlit(2))
    with pytest.raises(ValueError):
        e.with_children((E.intlit(1),))


def test_and_or_children():
    parts = (E.true(), E.false(), E.Var("b", BOOL))
    e = E.And(parts)
    assert e.children() == parts
    e2 = e.with_children(tuple(reversed(parts)))
    assert isinstance(e2, E.And)
    assert e2.args == tuple(reversed(parts))


def test_walk_preorder():
    a = E.Var("a", INT)
    e = E.Not(E.eq(a, E.intlit(1)))
    kinds = [type(n).__name__ for n in e.walk()]
    assert kinds == ["Not", "Cmp", "Var", "Lit"]


def test_conj_flattening():
    a, b = E.Var("a", BOOL), E.Var("b", BOOL)
    assert E.conj() == E.true()
    assert E.conj(a) == a
    assert E.conj(E.true(), a) == a
    got = E.conj(E.And((a, b)), a)
    assert isinstance(got, E.And)
    assert got.args == (a, b, a)


def test_disj_flattening():
    a = E.Var("a", BOOL)
    assert E.disj() == E.false()
    assert E.disj(E.false(), a) == a


def test_model_conversions_types():
    o = E.Var("o", ObjType("User"))
    assert E.Singleton(o).type == SetType("User")
    assert E.RefOf(o).type == RefType("User")
    qs = E.All("User")
    assert qs.type == SetType("User")
    assert E.AnyOf(qs).type == ObjType("User")
    assert E.FirstOf(qs).type == ObjType("User")
    assert E.LastOf(qs).type == ObjType("User")
    assert E.Deref(E.Var("r", RefType("User")), "User").type == ObjType("User")


def test_conversion_type_errors():
    i = E.Var("i", INT)
    with pytest.raises(E.SoirTypeError):
        _ = E.Singleton(i).type
    with pytest.raises(E.SoirTypeError):
        _ = E.RefOf(i).type


def test_filter_preserves_set_type():
    qs = E.All("Article")
    flt = E.Filter(
        qs,
        (DRelation("Article.author", Direction.FORWARD),),
        "name",
        Comparator.EQ,
        E.strlit("John"),
    )
    assert flt.type == SetType("Article")
    assert flt.children() == (qs, E.strlit("John"))


def test_follow_annotated_target():
    f = E.Follow(E.All("Article"), (DRelation("Article.author"),), "User")
    assert f.type == SetType("User")


def test_orderby_first_aggregate_types():
    qs = E.All("Article")
    assert E.OrderBy(qs, "created", Order.ASC).type == SetType("Article")
    assert E.ReverseSet(qs).type == SetType("Article")
    agg = E.Aggregate(qs, Aggregation.CNT, "id", INT)
    assert agg.type == INT


def test_makeobj_accessors():
    mo = E.MakeObj("User", (("name", E.strlit("j")),))
    assert mo.type == ObjType("User")
    assert mo.field_expr("name") == E.strlit("j")
    with pytest.raises(KeyError):
        mo.field_expr("missing")
    replaced = mo.with_children((E.strlit("k"),))
    assert replaced.field_expr("name") == E.strlit("k")


def test_opaque_children():
    dep = E.Var("x", INT)
    o = E.Opaque("ext", INT, (dep,))
    assert o.children() == (dep,)
    o2 = o.with_children((E.intlit(1),))
    assert o2.deps == (E.intlit(1),)
    assert o2.name == "ext"


def test_structural_equality_and_hash():
    e1 = E.eq(E.Var("a", INT), E.intlit(3))
    e2 = E.eq(E.Var("a", INT), E.intlit(3))
    assert e1 == e2
    assert hash(e1) == hash(e2)
    assert len({e1, e2}) == 1


def test_pretty_is_stable_key():
    e1 = E.eq(E.Var("a", INT), E.intlit(3))
    e2 = E.eq(E.Var("a", INT), E.intlit(3))
    assert pp_expr(e1) == pp_expr(e2) == "(a == 3)"
