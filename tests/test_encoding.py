"""Unit tests for the symbolic encoder: expression-level agreement with the
reference interpreter over concrete assignments (differential testing of
the Table-2 encoding)."""

import random

import pytest

from repro.smt.solver import UNKNOWN, evaluate
from repro.soir import commands as C, expr as E
from repro.soir.interp import Interpreter, apply_path, run_path
from repro.soir.path import Argument, CodePath
from repro.soir.types import (
    INT,
    STRING,
    Aggregation,
    Comparator,
    Direction,
    DRelation,
    Order,
)
from repro.verifier.encoding import Encoder, fresh_state, universe_of
from repro.verifier.scopes import StateGenerator, build_scope
from repro.smt import terms as T

from helpers import blog_schema


AUTHOR = DRelation("Article.author", Direction.FORWARD)


def article_scope(schema, *exprs, args=()):
    """A scope derived from a probe path containing the given expressions."""
    cmds = tuple(C.Guard(E.eq(e, e)) if str(e.type) != "Bool" else C.Guard(e)
                 for e in exprs)
    probe = CodePath("probe", tuple(args), cmds + (C.Delete(E.All("Article")),))
    return build_scope(schema, [probe]), probe


def assignment_for(bundle, state_of_db, schema, scope):
    """Map the encoded state's variables to a concrete DBState's values."""
    env = {}
    universe = universe_of(scope)
    for mname in scope.models:
        table = state_of_db.table(mname)
        model = schema.model(mname)
        for r in universe[mname]:
            env[f"S.{mname}.ids[{r}]"] = r in table
            for fschema in model.fields:
                if fschema.name == model.pk:
                    continue
                default = 0 if str(fschema.type) in ("Int", "Datetime") else ""
                row = table.get(r)
                env[f"S.{mname}.data[{r}].{fschema.name}"] = (
                    row[fschema.name] if row else default
                )
            order = state_of_db.order.get(mname, {})
            env[f"S.{mname}.order[{r}]"] = order.get(r, 0)
    for rname in scope.relations:
        pairs = state_of_db.relation(rname)
        rel = schema.relation(rname)
        for s in universe[rel.source]:
            for d in universe[rel.target]:
                env[f"S.{rname}[{s},{d}]"] = (s, d) in pairs
    return env


def eval_term(term, env):
    value = evaluate(term, env)
    assert value is not UNKNOWN, f"unbound vars in {sorted(term.free_vars())[:4]}"
    return value


SCALAR_EXPRS = [
    E.Aggregate(E.All("Article"), Aggregation.CNT, "id", INT),
    E.IsEmpty(E.Filter(E.All("Article"), (), "title", Comparator.EQ,
                       E.strlit("Beta"))),
    E.IsEmpty(E.Filter(E.All("Article"), (AUTHOR,), "name", Comparator.EQ,
                       E.strlit("john"))),
    E.Exists(E.All("Article").model, E.intlit(1)),
    E.FieldGet(E.FirstOf(E.OrderBy(E.All("Article"), "created", Order.DESC)),
               "created", INT),
    E.FieldGet(E.LastOf(E.OrderBy(E.All("Article"), "created", Order.ASC)),
               "created", INT),
    E.FieldGet(E.Deref(E.intlit(2), "Article"), "created", INT),
]


class TestDifferentialEncoding:
    """For concrete states within scope, the encoder's term evaluates to
    the interpreter's result."""

    @pytest.mark.parametrize("probe_expr", SCALAR_EXPRS)
    def test_expression_agreement(self, probe_expr):
        schema = blog_schema()
        scope, _ = article_scope(schema, probe_expr)
        generator = StateGenerator(scope)
        bundle = fresh_state("S", schema, scope, with_order=True)
        rng = random.Random(5)
        tested = 0
        for _ in range(40):
            db_state = generator.random_state(rng)
            if db_state is None:
                continue
            interp = Interpreter(schema, db_state, {})
            try:
                expected = interp.eval(probe_expr)
            except Exception:
                continue  # partial (empty set); encoder semantics differ
            encoder = Encoder(schema, scope, bundle.state.copy(), {},
                              mode="apply", uses_order=True)
            term = encoder.eval(probe_expr)
            env = assignment_for(bundle, db_state, schema, scope)
            # Opaque aggregate vars etc. have no binding -> skip those.
            if isinstance(term, T.Term):
                if term.free_vars() - set(env):
                    continue
                assert eval_term(term, env) == expected
                tested += 1
        assert tested >= 5

    def test_update_command_agreement(self):
        """Apply a MapSet update symbolically and concretely; compare a
        read-back field."""
        schema = blog_schema()
        update = CodePath(
            "u", (),
            (C.Update(E.MapSet(
                E.Filter(E.All("Article"), (), "title", Comparator.EQ,
                         E.strlit("Beta")),
                "content", E.strlit("rewritten"))),),
        )
        scope = build_scope(schema, [update])
        generator = StateGenerator(scope)
        bundle = fresh_state("S", schema, scope, with_order=False)
        rng = random.Random(9)
        tested = 0
        for _ in range(30):
            db_state = generator.random_state(rng)
            if db_state is None:
                continue
            expected = apply_path(update, db_state, {}, schema)
            encoder = Encoder(schema, scope, bundle.state.copy(), {},
                              mode="apply")
            encoder.exec_path(update)
            env = assignment_for(bundle, db_state, schema, scope)
            for r in universe_of(scope)["Article"]:
                id_term = encoder.state.ids["Article"][r]
                present = eval_term(id_term, env)
                assert present == (r in expected.table("Article"))
                if present:
                    content = eval_term(
                        encoder.state.data["Article"][r]["content"], env
                    )
                    assert content == expected.table("Article")[r]["content"]
            tested += 1
        assert tested >= 5

    def test_delete_cascade_agreement(self):
        """Cascading delete (Article -> Comment) agrees with the
        interpreter on which rows survive."""
        schema = blog_schema()
        delete = CodePath(
            "d", (Argument("t", STRING),),
            (C.Delete(E.Filter(E.All("Article"), (), "title", Comparator.EQ,
                               E.Var("t", STRING))),),
        )
        scope = build_scope(schema, [delete])
        generator = StateGenerator(scope)
        bundle = fresh_state("S", schema, scope, with_order=False)
        rng = random.Random(13)
        tested = 0
        for _ in range(30):
            db_state = generator.random_state(rng)
            if db_state is None:
                continue
            title = rng.choice(scope.field_domains[("Article", "title")])
            expected = apply_path(delete, db_state, {"t": title}, schema)
            encoder = Encoder(schema, scope, bundle.state.copy(),
                              {"t": T.const(title)}, mode="apply")
            encoder.exec_path(delete)
            env = assignment_for(bundle, db_state, schema, scope)
            for mname in ("Article", "Comment"):
                for r in universe_of(scope)[mname]:
                    present = eval_term(encoder.state.ids[mname][r], env)
                    assert present == (r in expected.table(mname)), (mname, r)
            tested += 1
        assert tested >= 5
