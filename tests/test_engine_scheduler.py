"""Tests for the verification engine: fingerprints, the persistent result
cache, the parallel scheduler, and the fast paths feeding it.

The equality tests use *sample-bounded* configs (high ``timeout_s``): a
wall-clock timeout is the one outcome that legitimately depends on machine
load, so determinism is asserted where the paper's semantics are
deterministic — see docs/ENGINE.md."""

from __future__ import annotations

import json

import pytest

from repro.analyzer import analyze_application
from repro.engine import (
    CACHE_FORMAT,
    FingerprintContext,
    ResultCache,
    fingerprint_config,
    fingerprint_path,
    fingerprint_schema,
    run_pair_sweep,
)
from repro.engine import scheduler as scheduler_module
from repro.soir import Schema, commands as C, expr as E, make_model
from repro.soir.path import CodePath
from repro.soir.types import STRING
from repro.verifier import (
    CheckConfig,
    CheckResult,
    Counterexample,
    Outcome,
    PairVerdict,
    classify_pair,
    operation_conflict_table,
    verdict_from_obj,
    verdict_to_obj,
    verify_application,
    verify_pair,
)
from repro.verifier.restrictions import VerificationReport
from repro.verifier.runner import (
    PRUNE_CONSERVATIVE,
    PRUNE_DISJOINT,
    PRUNE_ORDER,
)

#: deterministic budget: decided by sample exhaustion, never by the clock
CFG = CheckConfig(timeout_s=60.0, max_samples=60, max_exhaustive=800)


@pytest.fixture(scope="module")
def smallbank_analysis():
    from repro.apps.smallbank import build_app

    return analyze_application(build_app())


@pytest.fixture(scope="module")
def courseware_analysis():
    from repro.apps.courseware import build_app

    return analyze_application(build_app())


def two_model_schema() -> Schema:
    schema = Schema()
    schema.add_model(make_model("Log", {"line": STRING}))
    schema.add_model(make_model("Cache", {"blob": STRING}))
    return schema


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprints:
    def test_path_fingerprint_is_stable_and_content_sensitive(self):
        p1 = CodePath("p", (), (C.Delete(E.All("Log")),))
        p2 = CodePath("p", (), (C.Delete(E.All("Log")),))
        p3 = CodePath("p", (), (C.Delete(E.All("Cache")),))
        assert fingerprint_path(p1) == fingerprint_path(p2)
        assert fingerprint_path(p1) != fingerprint_path(p3)

    def test_schema_fingerprint_ignores_declaration_order(self):
        a = Schema()
        a.add_model(make_model("Log", {"line": STRING}))
        a.add_model(make_model("Cache", {"blob": STRING}))
        b = Schema()
        b.add_model(make_model("Cache", {"blob": STRING}))
        b.add_model(make_model("Log", {"line": STRING}))
        assert fingerprint_schema(a) == fingerprint_schema(b)

    def test_config_and_engine_reach_the_digest(self):
        base = fingerprint_config(CFG, "enum")
        assert base != fingerprint_config(CFG, "smt")
        bumped = CheckConfig(timeout_s=60.0, max_samples=61,
                             max_exhaustive=800)
        assert base != fingerprint_config(bumped, "enum")

    def test_pair_fingerprint_is_ordered(self):
        schema = two_model_schema()
        ctx = FingerprintContext(schema, CFG, "enum")
        p = CodePath("p", (), (C.Delete(E.All("Log")),))
        q = CodePath("q", (), (C.Delete(E.All("Cache")),))
        assert ctx.pair(p, q) != ctx.pair(q, p)
        assert ctx.pair(p, q) == ctx.pair(p, q)


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------


def make_verdict() -> PairVerdict:
    v = PairVerdict("P[0]", "Q[0]", left_view="P", right_view="Q")
    v.commutativity = CheckResult(
        "P[0]", "Q[0]", "commutativity", Outcome.FAIL, elapsed_s=0.25,
        witness=Counterexample("diverge", state="S", args_p="{'x': 1}"),
    )
    v.semantic = CheckResult(
        "P[0]", "Q[0]", "semantic", Outcome.PASS, elapsed_s=0.5,
    )
    return v


class TestVerdictSerialization:
    def test_round_trip(self):
        v = make_verdict()
        back = verdict_from_obj(json.loads(json.dumps(verdict_to_obj(v))))
        assert back == v

    def test_legacy_object_without_views(self):
        obj = verdict_to_obj(make_verdict())
        del obj["left_view"], obj["right_view"]
        back = verdict_from_obj(obj)
        assert back.left_view == "" and back.right_view == ""


class TestResultCache:
    def test_round_trip_zeroes_replayed_elapsed(self, tmp_path):
        cache = ResultCache(tmp_path, "demo")
        cache.put("fp1", make_verdict())
        cache.flush()
        reloaded = ResultCache(tmp_path, "demo")
        assert len(reloaded) == 1
        verdict, saved_s = reloaded.get("fp1")
        assert saved_s == pytest.approx(0.75)
        assert verdict.commutativity.elapsed_s == 0.0
        assert verdict.semantic.elapsed_s == 0.0
        assert verdict.commutativity.outcome is Outcome.FAIL
        assert verdict.commutativity.witness.description == "diverge"
        assert reloaded.get("missing") is None

    def test_version_mismatch_reads_as_empty_and_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path, "demo")
        cache.put("fp1", make_verdict())
        cache.flush()
        payload = json.loads(cache.path.read_text())
        payload["format"] = CACHE_FORMAT + 1
        cache.path.write_text(json.dumps(payload))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            reloaded = ResultCache(tmp_path, "demo")
        assert len(reloaded) == 0
        assert reloaded.quarantined == str(cache.path) + ".corrupt"

    def test_corrupt_file_reads_as_empty_and_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path, "demo")
        cache.put("fp1", make_verdict())
        cache.flush()
        cache.path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            reloaded = ResultCache(tmp_path, "demo")
        assert len(reloaded) == 0
        # the bad file is moved aside, not destroyed: evidence survives
        quarantine = cache.path.with_name(cache.path.name + ".corrupt")
        assert quarantine.read_text() == "{not json"
        assert not cache.path.exists()

    def test_cold_cache_does_not_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path, "demo")
        assert cache.quarantined is None
        assert len(cache) == 0

    def test_prune_drops_stale_entries(self, tmp_path):
        cache = ResultCache(tmp_path, "demo")
        cache.put("live", make_verdict())
        cache.put("stale", make_verdict())
        assert cache.prune({"live"}) == 1
        cache.flush()
        assert len(ResultCache(tmp_path, "demo")) == 1

    def test_clean_cache_never_writes(self, tmp_path):
        cache = ResultCache(tmp_path, "demo")
        cache.put("fp1", make_verdict())
        cache.flush()
        stamp = cache.path.stat().st_mtime_ns
        again = ResultCache(tmp_path, "demo")
        again.get("fp1")
        again.flush()
        assert again.path.stat().st_mtime_ns == stamp


# ---------------------------------------------------------------------------
# verify_pair fast paths
# ---------------------------------------------------------------------------


class TestFastPaths:
    def test_conservative_short_circuit(self):
        schema = two_model_schema()
        conservative = CodePath("c[0]", (), (), view="c", conservative=True)
        other = CodePath("o[0]", (), (C.Delete(E.All("Log")),), view="o")
        verdict, tag = classify_pair(conservative, other, schema, CFG)
        assert tag == PRUNE_CONSERVATIVE
        assert verdict.restricted
        assert verdict.commutativity.outcome is Outcome.CONSERVATIVE
        assert verdict.semantic.outcome is Outcome.CONSERVATIVE
        assert (verdict.left_view, verdict.right_view) == ("c", "o")
        # verify_pair resolves it identically, without solving
        assert verify_pair(conservative, other, schema, CFG) == verdict

    def test_order_primitives_with_order_disabled(self):
        schema = two_model_schema()
        ordered = CodePath(
            "p[0]", (),
            (C.Delete(E.FirstOf(E.All("Log"))),), view="p",
        )
        other = CodePath("q[0]", (), (C.Delete(E.All("Log")),), view="q")
        no_order = CheckConfig(order_enabled=False)
        verdict, tag = classify_pair(ordered, other, schema, no_order)
        assert tag == PRUNE_ORDER
        assert verdict.restricted
        assert "order primitives" in verdict.commutativity.detail
        # with the order encoding on, the fast layer does not fire
        assert classify_pair(ordered, other, schema, CFG) is None

    def test_disjoint_footprint_pass(self):
        schema = two_model_schema()
        p = CodePath("p[0]", (), (C.Delete(E.All("Log")),), view="p")
        q = CodePath("q[0]", (), (C.Delete(E.All("Cache")),), view="q")
        verdict, tag = classify_pair(p, q, schema, CFG)
        assert tag == PRUNE_DISJOINT
        assert not verdict.restricted
        assert verdict.commutativity.detail == "disjoint footprint"
        assert verdict.semantic.detail == "disjoint footprint"

    def test_overlapping_footprint_needs_solving(self):
        schema = two_model_schema()
        p = CodePath("p[0]", (), (C.Delete(E.All("Log")),), view="p")
        assert classify_pair(p, p, schema, CFG) is None


# ---------------------------------------------------------------------------
# Conflict table views
# ---------------------------------------------------------------------------


class TestConflictTableViews:
    def _report(self, verdict: PairVerdict) -> VerificationReport:
        report = VerificationReport("demo")
        verdict.commutativity = CheckResult(
            verdict.left, verdict.right, "commutativity", Outcome.FAIL)
        report.verdicts.append(verdict)
        return report

    def test_uses_view_field(self):
        verdict = PairVerdict("weird [name", "other [name",
                              left_view="AddCourse", right_view="DropCourse")
        table = operation_conflict_table(self._report(verdict))
        assert table == {frozenset(("AddCourse", "DropCourse"))}

    def test_legacy_fallback_parses_path_names(self):
        # A verdict deserialized from a legacy report has no view fields.
        verdict = PairVerdict("AddCourse[0]", "DropCourse[2]")
        table = operation_conflict_table(self._report(verdict))
        assert table == {frozenset(("AddCourse", "DropCourse"))}


# ---------------------------------------------------------------------------
# Scheduler: serial == parallel == cached replay
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_serial_parallel_cached_identical(self, tmp_path,
                                              smallbank_analysis):
        serial = verify_application(smallbank_analysis, CFG)
        parallel = verify_application(
            smallbank_analysis, CFG, jobs=2, use_cache=True,
            cache_dir=str(tmp_path),
        )
        cached = verify_application(
            smallbank_analysis, CFG, jobs=2, use_cache=True,
            cache_dir=str(tmp_path),
        )
        def untimed(report):
            # per-pair solve times are wall-clock: populated in every
            # mode but never identical across runs
            return [{k: v for k, v in verdict.items()
                     if not k.endswith("_s")}
                    for verdict in report.to_json_obj()["verdicts"]]

        baseline = serial.to_json_obj()
        assert baseline["restrictions"] == \
            parallel.to_json_obj()["restrictions"]
        assert baseline["restrictions"] == cached.to_json_obj()["restrictions"]
        assert untimed(serial) == untimed(parallel)
        assert untimed(serial) == untimed(cached)
        # serial fallback and worker pool both report per-check timings
        # for pairs that actually hit a solver; shared and pruned
        # verdicts are free by construction (elapsed 0)
        for report in (serial, parallel):
            solved = [v for v in report.to_json_obj()["verdicts"]
                      if "provenance" not in v]
            assert solved
            for verdict in solved:
                assert verdict["commutativity_s"] > 0.0
                assert verdict["semantic_s"] > 0.0
        assert parallel.metrics["mode"] == "parallel"
        assert parallel.metrics["jobs_used"] == 2
        assert cached.metrics["solver_calls"] == 0
        # the warm run replays representatives and fanned-out members
        assert cached.metrics["cache_hits"] == (
            parallel.metrics["solver_calls"] + parallel.metrics["shared"])

    def test_courseware_sweep_prunes_and_agrees(self, tmp_path,
                                                courseware_analysis):
        serial = verify_application(courseware_analysis, CFG)
        replay = verify_application(
            courseware_analysis, CFG, use_cache=True,
            cache_dir=str(tmp_path),
        )
        warm = verify_application(
            courseware_analysis, CFG, use_cache=True,
            cache_dir=str(tmp_path),
        )
        assert serial.restriction_pairs() == replay.restriction_pairs()
        assert serial.restriction_pairs() == warm.restriction_pairs()
        assert warm.metrics["solver_calls"] == 0
        # fast paths never consult the cache
        assert warm.metrics["pruned"] == serial.metrics["pruned"]
        assert warm.metrics["cache_hits"] + warm.metrics["pruned"] == \
            warm.metrics["pairs_total"]

    def test_timing_is_aggregate_not_wall_clock(self, tmp_path,
                                                smallbank_analysis):
        report = verify_application(
            smallbank_analysis, CFG, jobs=2, use_cache=True,
            cache_dir=str(tmp_path),
        )
        per_pair = sum(
            v.commutativity.elapsed_s + v.semantic.elapsed_s
            for v in report.verdicts
        )
        assert report.time_solve_s == pytest.approx(per_pair)
        assert report.time_solve_s > 0.0
        # on a contended pool the work exceeds the wall clock; at minimum
        # the two are independent measurements
        assert report.elapsed_s > 0.0
        warm = verify_application(
            smallbank_analysis, CFG, use_cache=True, cache_dir=str(tmp_path),
        )
        assert warm.time_solve_s == 0.0
        assert warm.metrics["cache_saved_s"] == pytest.approx(
            report.time_solve_s)

    def test_pool_failure_falls_back_to_serial(self, tmp_path, monkeypatch,
                                               smallbank_analysis):
        serial = verify_application(smallbank_analysis, CFG)

        def broken_context(*args, **kwargs):
            raise OSError("no fork for you")

        monkeypatch.setattr(scheduler_module.multiprocessing, "get_context",
                            broken_context)
        report = run_pair_sweep(smallbank_analysis, CFG, jobs=4)
        assert report.metrics["mode"] == "serial"
        assert "no fork for you" in report.metrics["fallback_reason"]
        assert serial.restriction_pairs() == report.restriction_pairs()

    @pytest.mark.parametrize("reduce", [False, True])
    def test_edited_path_invalidates_only_its_pairs(self, tmp_path,
                                                    smallbank_analysis,
                                                    reduce):
        import copy

        first = verify_application(
            smallbank_analysis, CFG, use_cache=True, cache_dir=str(tmp_path),
            reduce=reduce,
        )
        assert first.metrics["cache_misses"] == first.metrics["solver_calls"]
        edited = copy.copy(smallbank_analysis)
        paths = list(smallbank_analysis.paths)
        victim = next(p for p in paths if p.is_effectful())
        paths[paths.index(victim)] = CodePath(
            name=victim.name, args=victim.args,
            commands=victim.commands + (C.Delete(E.All("Account")),),
            view=victim.view,
        )
        edited.paths = paths
        second = verify_application(
            edited, CFG, use_cache=True, cache_dir=str(tmp_path),
            reduce=reduce,
        )
        n = len(edited.effectful_paths)
        # only the victim's row/column re-computes: n pairs, the rest
        # replay from cache.  Under reduction a re-computed pair may be
        # served by class sharing instead of a fresh solve, so misses
        # plus shared members cover the invalidated set.
        recomputed = second.metrics["cache_misses"] + \
            second.metrics.get("shared", 0)
        assert recomputed == n
        assert second.metrics["cache_hits"] == \
            second.metrics["pairs_total"] - n - \
            second.metrics.get("pruned", 0)
