"""Tests for the engine failure taxonomy, retry policy and deadline guard
(:mod:`repro.engine.failures`), and for the unknown-verdict plumbing
through reports and the explainer."""

from __future__ import annotations

import time

import pytest

from repro.engine.failures import (
    CRASH,
    DeadlineExceeded,
    PairFailure,
    RetryPolicy,
    SOLVER_ERROR,
    TIMEOUT,
    WorkerCrash,
    cap_text,
    classify_exception,
    deadline,
    default_deadline,
    degrade_config,
    plan_retry,
    unknown_verdict,
)
from repro.verifier import CheckConfig, Outcome
from repro.verifier.restrictions import VerificationReport


class TestDeadline:
    def test_interrupts_a_wedged_block(self):
        started = time.perf_counter()
        with pytest.raises(DeadlineExceeded):
            with deadline(0.1):
                time.sleep(5.0)
        assert time.perf_counter() - started < 2.0

    def test_noop_when_disabled(self):
        for seconds in (None, 0.0, -1.0):
            with deadline(seconds):
                pass  # must not raise or arm anything

    def test_restores_previous_timer_state(self):
        import signal

        before = signal.getitimer(signal.ITIMER_REAL)
        with deadline(30.0):
            pass
        assert signal.getitimer(signal.ITIMER_REAL) == before

    def test_default_deadline_dominates_cooperative_budget(self):
        config = CheckConfig(timeout_s=5.0)
        assert default_deadline(config) > 2 * config.timeout_s
        assert default_deadline(CheckConfig(timeout_s=0.01)) >= 10.0


class TestClassification:
    def test_taxonomy(self):
        assert classify_exception(DeadlineExceeded("late"))[0] == TIMEOUT
        assert classify_exception(WorkerCrash("boom"))[0] == CRASH
        kind, detail = classify_exception(ValueError("bad encoding"))
        assert kind == SOLVER_ERROR
        assert "bad encoding" in detail

    def test_details_are_capped(self):
        kind, detail = classify_exception(ValueError("x" * 10_000))
        assert kind == SOLVER_ERROR
        assert len(detail) <= 200
        assert cap_text("y" * 10_000).endswith("...")

    def test_describe_names_attempt_and_stage(self):
        failure = PairFailure(TIMEOUT, "P[0]", "Q[0]", 2, "worker",
                              "watchdog killed worker")
        text = failure.describe()
        assert "timeout" in text and "attempt 2" in text
        assert "worker" in text


class TestRetryPolicy:
    POLICY = RetryPolicy(max_attempts=3, backoff_s=0.05)

    def task(self, attempt=0, engine="enum", level=0):
        return (7, 1, 2, attempt, engine, level)

    def test_attempt_budget_is_bounded(self):
        assert plan_retry(self.task(attempt=2), CRASH, self.POLICY,
                          base_engine="enum") is None

    def test_crash_retries_same_engine_under_enum(self):
        nxt = plan_retry(self.task(), CRASH, self.POLICY, base_engine="enum")
        assert nxt == (7, 1, 2, 1, "enum", 0)

    def test_smt_crash_falls_back_to_enum(self):
        for kind in (CRASH, SOLVER_ERROR):
            nxt = plan_retry(self.task(engine="smt"), kind, self.POLICY,
                             base_engine="smt")
            assert nxt[4] == "enum"

    def test_smt_timeout_keeps_engine_but_degrades(self):
        nxt = plan_retry(self.task(engine="smt"), TIMEOUT, self.POLICY,
                         base_engine="smt")
        assert nxt[4] == "smt"
        assert nxt[5] == 1

    def test_backoff_grows_exponentially(self):
        assert self.POLICY.backoff_for(2) == pytest.approx(
            2 * self.POLICY.backoff_for(1))


class TestDegradeConfig:
    def test_halves_budgets_with_floors(self):
        config = CheckConfig(timeout_s=8.0, max_samples=400,
                             max_exhaustive=8000)
        once = degrade_config(config, 1)
        assert once.timeout_s == pytest.approx(4.0)
        assert once.max_samples == 200
        floor = degrade_config(config, 30)
        assert floor.timeout_s == pytest.approx(0.1)
        assert floor.max_samples == 20
        assert floor.max_exhaustive == 200

    def test_level_zero_is_identity(self):
        config = CheckConfig()
        assert degrade_config(config, 0) is config


class TestUnknownVerdict:
    def failure(self):
        return PairFailure(CRASH, "P[0]", "Q[0]", 3, "worker", "exit 13")

    def test_restricts_conservatively(self):
        verdict = unknown_verdict("P[0]", "Q[0]", self.failure(),
                                  left_view="P", right_view="Q")
        assert verdict.restricted
        assert verdict.unknown
        assert verdict.commutativity.outcome is Outcome.UNKNOWN
        assert "crash" in verdict.semantic.detail
        assert (verdict.left_view, verdict.right_view) == ("P", "Q")

    def test_report_surfaces_unknowns(self):
        report = VerificationReport("demo")
        report.verdicts.append(
            unknown_verdict("P[0]", "Q[0]", self.failure()))
        assert len(report.unknown_verdicts) == 1
        obj = report.to_json_obj()
        assert obj["unknowns"] == [["P[0]", "Q[0]"]]
        assert obj["verdicts"][0]["status"] == "unknown"
        assert report.summary()["unknowns"] == 1

    def test_explainer_renders_engine_failure_section(self):
        from repro.obs.explain import explain_report

        report = VerificationReport("demo")
        report.verdicts.append(
            unknown_verdict("P[0]", "Q[0]", self.failure()))
        text = explain_report(None, report)
        assert "could not decide" in text
        assert "engine crash on attempt 3" in text
        assert "not cached" in text
