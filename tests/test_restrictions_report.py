"""Tests for restriction-set reporting: outcomes, aggregation,
coordination-free classification and the deployment JSON artifact."""

import json

import pytest

from repro.verifier.restrictions import (
    CheckResult,
    Counterexample,
    Outcome,
    PairVerdict,
    VerificationReport,
)


def verdict(left, right, com: Outcome, sem: Outcome) -> PairVerdict:
    v = PairVerdict(left, right)
    v.commutativity = CheckResult(left, right, "commutativity", com)
    v.semantic = CheckResult(left, right, "semantic", sem)
    return v


@pytest.fixture()
def report():
    r = VerificationReport("demo")
    r.verdicts = [
        verdict("A", "A", Outcome.PASS, Outcome.PASS),
        verdict("A", "B", Outcome.FAIL, Outcome.PASS),
        verdict("A", "C", Outcome.PASS, Outcome.PASS),
        verdict("B", "B", Outcome.PASS, Outcome.FAIL),
        verdict("B", "C", Outcome.PASS, Outcome.TIMEOUT),
        verdict("C", "C", Outcome.PASS, Outcome.PASS),
        verdict("A", "D", Outcome.PASS, Outcome.PASS),
        verdict("D", "D", Outcome.PASS, Outcome.PASS),
    ]
    return r


class TestOutcome:
    def test_restricts(self):
        assert not Outcome.PASS.restricts
        assert Outcome.FAIL.restricts
        assert Outcome.TIMEOUT.restricts
        assert Outcome.CONSERVATIVE.restricts


class TestAggregation:
    def test_counts(self, report):
        assert report.checks == 8
        assert len(report.restrictions) == 3
        assert len(report.commutativity_failures) == 1
        assert len(report.semantic_failures) == 2  # FAIL + TIMEOUT

    def test_restriction_pairs(self, report):
        assert report.restriction_pairs() == {
            frozenset(("A", "B")),
            frozenset(("B",)),
            frozenset(("B", "C")),
        }

    def test_coordination_free(self, report):
        # A appears in the (A,B) restriction, B and C too; only D is free.
        assert report.coordination_free_operations() == {"D"}

    def test_summary(self, report):
        s = report.summary()
        assert s["checks"] == 8
        assert s["restrictions"] == 3
        assert s["com_failures"] == 1
        assert s["sem_failures"] == 2


class TestJsonArtifact:
    def test_shape_and_serializability(self, report):
        obj = report.to_json_obj()
        text = json.dumps(obj)  # must be JSON-serializable
        parsed = json.loads(text)
        assert parsed["app"] == "demo"
        assert ["A", "B"] in parsed["restrictions"]
        assert ["B"] in parsed["restrictions"]
        assert parsed["coordination_free"] == ["D"]
        assert len(parsed["verdicts"]) == 8
        first = parsed["verdicts"][0]
        assert set(first) == {"left", "right", "left_view", "right_view",
                              "commutativity", "semantic",
                              "commutativity_s", "semantic_s", "status"}
        assert {v["status"] for v in parsed["verdicts"]} == {"decided"}
        assert parsed["unknowns"] == []
        assert parsed["timing"]["wall_s"] == pytest.approx(0.0)

    def test_verdict_values_are_strings(self, report):
        obj = report.to_json_obj()
        values = {v["semantic"] for v in obj["verdicts"]}
        assert values <= {"pass", "fail", "timeout", "conservative"}


class TestWitness:
    def test_counterexample_fields(self):
        w = Counterexample("diverge", state="S", args_p="{'x': 1}")
        result = CheckResult("P", "Q", "commutativity", Outcome.FAIL,
                             witness=w)
        assert result.witness.description == "diverge"
        assert result.outcome.restricts
