"""Focused tests for symbolic values: operators, string predicates,
request-shape branching, and translation of arithmetic through effects."""

import pytest

from repro.analyzer import analyze_application
from repro.orm import (
    BooleanField,
    IntegerField,
    Model,
    Registry,
    TextField,
)
from repro.soir import pp_path
from repro.web import Application, HttpResponse, path


def build(view, route="go", registry_label=None, model_fields=None):
    registry = Registry(registry_label or f"sym-{id(view)}")
    with registry.use():

        class Item(Model):
            name = TextField(default="")
            score = IntegerField(default=0)
            flagged = BooleanField(default=False)

    app = Application("sym", registry, [path(route, view(Item), name="V")])
    return analyze_application(app)


class TestStringPredicates:
    def test_startswith_branches(self):
        def view(Item):
            def v(request):
                name = request.POST["name"]
                if name.startswith("tmp-"):
                    Item.objects.filter(name=name).delete()
                return HttpResponse()
            return v

        analysis = build(view)
        effectful = [p for p in analysis.effectful_paths]
        assert len(effectful) == 1
        text = pp_path(effectful[0])
        assert "guard((arg_POST_name startswith 'tmp-'))" in text

    def test_contains_coerces_to_branch(self):
        def view(Item):
            def v(request):
                if "x" in request.POST["name"]:
                    Item.objects.filter(flagged=True).delete()
                return HttpResponse()
            return v

        analysis = build(view)
        effectful = analysis.effectful_paths
        assert len(effectful) == 1
        assert "contains 'x'" in pp_path(effectful[0])

    def test_membership_in_concrete_tuple(self):
        def view(Item):
            def v(request):
                if request.POST["mode"] in ("purge", "wipe"):
                    Item.objects.all().delete()
                return HttpResponse()
            return v

        analysis = build(view)
        # 'mode' == purge, 'mode' == wipe (via tuple __contains__ -> two
        # branches), plus the no-op path.
        effectful = analysis.effectful_paths
        assert len(effectful) == 2
        assert len(analysis.paths) == 3


class TestArithmetic:
    def test_expression_flows_into_effect(self):
        def view(Item):
            def v(request, pk):
                item = Item.objects.get(pk=pk)
                item.score = item.score * 2 + request.post_int("bonus") - 1
                item.save()
                return HttpResponse()
            return v

        analysis = build(lambda Item: view(Item), route="go/<int:pk>")
        text = pp_path(analysis.effectful_paths[0])
        assert (
            "setf(score, (((deref<Item>(arg_url_pk).score * 2) + "
            "arg_POST_bonus) - 1)" in text
        )

    def test_comparison_guard(self):
        def view(Item):
            def v(request, pk):
                item = Item.objects.get(pk=pk)
                if item.score >= 10:
                    item.flagged = True
                    item.save()
                return HttpResponse()
            return v

        analysis = build(lambda Item: view(Item), route="go/<int:pk>")
        text = pp_path(analysis.effectful_paths[0])
        assert "guard((deref<Item>(arg_url_pk).score >= 10))" in text

    def test_reflected_operators(self):
        def view(Item):
            def v(request, pk):
                item = Item.objects.get(pk=pk)
                item.score = 100 - item.score
                item.save()
                return HttpResponse()
            return v

        analysis = build(lambda Item: view(Item), route="go/<int:pk>")
        text = pp_path(analysis.effectful_paths[0])
        assert "setf(score, (100 - deref<Item>(arg_url_pk).score)" in text


class TestRequestShape:
    def test_get_with_default(self):
        def view(Item):
            def v(request):
                label = request.POST.get("label", "untitled")
                Item.objects.create(name=label)
                return HttpResponse(status=201)
            return v

        analysis = build(view)
        effectful = analysis.effectful_paths
        assert len(effectful) == 2  # present / absent fan-out
        texts = [pp_path(p) for p in effectful]
        assert any("name=arg_POST_label" in t for t in texts)
        assert any("name='untitled'" in t for t in texts)
        present_args = {a.name for p in effectful for a in p.args}
        assert "has_POST_label" in present_args

    def test_method_branching(self):
        def view(Item):
            def v(request):
                if request.method == "POST":
                    Item.objects.create(name="posted")
                return HttpResponse()
            return v

        analysis = build(view)
        assert len(analysis.paths) == 2
        assert len(analysis.effectful_paths) == 1
        guard_text = pp_path(analysis.effectful_paths[0])
        assert "guard((arg_method == 'POST'))" in guard_text


class TestObjectIdentity:
    def test_object_equality_compares_refs(self):
        def view(Item):
            def v(request, a, b):
                first = Item.objects.get(pk=a)
                second = Item.objects.get(pk=b)
                if first == second:
                    first.flagged = True
                    first.save()
                return HttpResponse()
            return v

        analysis = build(lambda Item: view(Item), route="go/<int:a>/<int:b>")
        text = pp_path(analysis.effectful_paths[0])
        assert (
            "guard((refof(deref<Item>(arg_url_a)) == "
            "refof(deref<Item>(arg_url_b))))" in text
        )

    def test_truthiness_of_first_uses_existence(self):
        def view(Item):
            def v(request):
                top = Item.objects.order_by("-score").first()
                if top:
                    top.flagged = True
                    top.save()
                return HttpResponse()
            return v

        analysis = build(view)
        text = pp_path(analysis.effectful_paths[0])
        assert "guard(not(empty(orderby(score, desc, all<Item>))))" in text
        assert "first(orderby(score, desc, all<Item>))" in text
