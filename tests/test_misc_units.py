"""Small-unit coverage: clock, http primitives, state canonicalization,
registry edge cases, pretty-path provenance."""

import pytest

from repro.orm import clock
from repro.orm.registry import Registry, default_registry
from repro.soir.state import DBState, ObjVal, QuerySetVal
from repro.web.http import HttpRequest, JsonResponse, QueryDict

from helpers import blog_schema, blog_state


class TestClock:
    def test_monotonic(self):
        clock.reset(500)
        values = [clock.now() for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_reset(self):
        clock.reset(10)
        first = clock.now()
        clock.reset(10)
        assert clock.now() == first


class TestHttp:
    def test_querydict_missing_key_raises(self):
        qd = QueryDict({"a": 1})
        assert qd["a"] == 1
        with pytest.raises(KeyError):
            qd["missing"]
        assert qd.get("missing", 9) == 9

    def test_request_defaults(self):
        request = HttpRequest()
        assert request.method == "GET"
        assert request.path == "/"
        assert request.POST == {}
        assert "GET /" in repr(request)

    def test_method_uppercased(self):
        assert HttpRequest("post").method == "POST"

    def test_post_int_coercion(self):
        request = HttpRequest("POST", "/x", POST={"n": "42"})
        assert request.post_int("n") == 42
        with pytest.raises(ValueError):
            HttpRequest("POST", "/x", POST={"n": "nan"}).post_int("n")

    def test_json_response(self):
        response = JsonResponse({"a": 1}, status=201)
        assert response.content == {"a": 1}
        assert response.status == 201
        assert not response.ok or response.status < 300


class TestDBState:
    def test_clone_is_deep_for_rows(self):
        schema = blog_schema()
        state = blog_state(schema)
        copy = state.clone()
        copy.tables["Article"][1]["title"] = "mutated"
        assert state.tables["Article"][1]["title"] == "Alpha"
        copy.assocs["Article.author"].clear()
        assert state.assocs["Article.author"]

    def test_canonical_stable_under_key_order(self):
        schema = blog_schema()
        a = blog_state(schema)
        b = blog_state(schema)
        # Re-insert rows in a different order: canonical must not care.
        row = b.tables["Article"].pop(1)
        b.tables["Article"][1] = row
        assert a.canonical() == b.canonical()

    def test_insert_row_assigns_increasing_order(self):
        state = DBState()
        state.insert_row("M", "x", {"id": "x"})
        state.insert_row("M", "y", {"id": "y"})
        assert state.order["M"]["x"] < state.order["M"]["y"]
        # Re-merging an existing row keeps its order number.
        first_order = state.order["M"]["x"]
        state.insert_row("M", "x", {"id": "x"})
        assert state.order["M"]["x"] == first_order

    def test_objval_replace_is_functional(self):
        obj = ObjVal("M", {"id": 1, "x": 2})
        new = obj.replace("x", 9)
        assert obj.fields["x"] == 2 and new.fields["x"] == 9

    def test_querysetval_pks(self):
        qs = QuerySetVal("M", [ObjVal("M", {"id": 3}), ObjVal("M", {"id": 1})])
        assert qs.pks("id") == [3, 1]


class TestRegistry:
    def test_default_registry_is_fallback(self):
        assert Registry.active() is default_registry()

    def test_use_scopes_activation(self):
        mine = Registry("scoped")
        with mine.use():
            assert Registry.active() is mine
        assert Registry.active() is default_registry()

    def test_get_model_unknown(self):
        from repro.orm import FieldError

        with pytest.raises(FieldError):
            Registry("empty").get_model("Nope")

    def test_schema_requires_reverse_target(self):
        """A dangling string FK whose target never registers surfaces at
        schema derivation, not silently."""
        from repro.orm import CASCADE, ForeignKey, Model
        from repro.soir import SchemaError

        registry = Registry("dangling")
        with registry.use():

            class Orphan(Model):
                parent = ForeignKey("NeverDefined", on_delete=CASCADE)

        with pytest.raises(SchemaError):
            registry.to_soir_schema()
