"""Tests for the daemon's HTTP control plane.

Most tests exercise :class:`ControlPlane.dispatch` directly — the
transport-free surface — so routing, serialization, status codes and
the Prometheus contract are all checked without a socket.  One class
binds a real ephemeral-port server and round-trips over urllib, because
the ``Content-Type`` a scraper negotiates on only exists on the wire.
"""

from __future__ import annotations

import json
import urllib.request
from types import SimpleNamespace

import pytest

from repro.metrics import parse_prometheus
from repro.service import (
    ControlPlane,
    PROM_CONTENT_TYPE,
    ServiceHTTPServer,
    VerificationService,
    directory_spec,
    encode_response,
    export_builtin_app,
)
from repro.verifier import CheckConfig

QUICK = CheckConfig(timeout_s=60.0, max_samples=60, max_exhaustive=800)


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-http")
    export_builtin_app("todo", root / "app")
    service = VerificationService(
        [directory_spec("todo", str(root / "app"))], QUICK,
        cache_dir=str(root / "cache"))
    service.run_cycle()
    return SimpleNamespace(service=service, plane=ControlPlane(service))


def get(plane, path, method="GET"):
    response = plane.dispatch(method, path)
    status, content_type, body = encode_response(response)
    obj = (json.loads(body) if content_type.startswith("application/json")
           else body.decode())
    return SimpleNamespace(status=status, content_type=content_type,
                           body=body, obj=obj)


class TestControlPlane:
    def test_apps(self, ctx):
        result = get(ctx.plane, "/apps")
        assert result.status == 200
        [app] = result.obj["apps"]
        assert app["app"] == "todo" and app["verified"]
        assert app["version"] == 1
        assert app["last_cycle"]["solver_calls"] > 0
        assert app["watched_files"] >= 1

    def test_restrictions(self, ctx):
        result = get(ctx.plane, "/apps/todo/restrictions")
        assert result.status == 200
        assert result.obj["version"] == 1
        assert result.obj["restrictions"]  # sorted list of sorted pairs
        assert result.obj["restrictions"] == sorted(
            result.obj["restrictions"])
        assert all(pair == sorted(pair)
                   for pair in result.obj["conflict_table"])

    def test_report(self, ctx):
        result = get(ctx.plane, "/apps/todo/report")
        assert result.status == 200
        assert result.obj["app"] == "todo"
        assert result.obj["checks"]

    def test_unknown_app_is_404(self, ctx):
        for path in ("/apps/nope/restrictions", "/apps/nope/report"):
            assert get(ctx.plane, path).status == 404

    def test_unknown_route_is_404(self, ctx):
        assert get(ctx.plane, "/no/such/route").status == 404

    def test_reverify_requires_post(self, ctx):
        assert get(ctx.plane, "/apps/todo/reverify").status == 405

    def test_post_reverify_runs_warm(self, ctx):
        result = get(ctx.plane, "/apps/todo/reverify", method="POST")
        assert result.status == 200
        assert result.obj["trigger"] == "forced"
        assert result.obj["solver_calls"] == 0  # warm: nothing invalidated
        assert result.obj["invalidated_count"] == 0

    def test_metrics_prometheus_contract(self, ctx):
        result = get(ctx.plane, "/metrics")
        assert result.status == 200
        assert result.content_type == PROM_CONTENT_TYPE
        families = parse_prometheus(result.obj)  # strict: raises on drift
        assert "noctua_service_reverifies_total" in families
        assert "noctua_service_cycle_seconds" in families
        assert "noctua_solver_calls_total" in families

    def test_metrics_json(self, ctx):
        result = get(ctx.plane, "/metrics/json")
        assert result.status == 200
        snapshot = result.obj
        names = {fam["name"] for fam in snapshot["families"]}
        assert "noctua_service_reverifies_total" in names

    def test_trace_last(self, ctx):
        result = get(ctx.plane, "/trace/last")
        assert result.status == 200
        assert result.obj["app"] == "todo"
        names = {root["name"] for root in result.obj["roots"]}
        assert any("pair-sweep" in name for name in names)

    def test_healthz(self, ctx):
        result = get(ctx.plane, "/healthz")
        assert result.status == 200
        assert result.obj == {"status": "ok", "apps": 1}

    def test_requests_are_metered(self, ctx):
        registry = ctx.service.registry
        before = registry.value("noctua_service_http_requests_total",
                                route="healthz", status="200") or 0.0
        get(ctx.plane, "/healthz")
        after = registry.value("noctua_service_http_requests_total",
                               route="healthz", status="200")
        assert after == before + 1


class TestOverTheWire:
    @pytest.fixture()
    def server(self, ctx):
        server = ServiceHTTPServer(ctx.service, port=0)
        server.start()
        yield server
        server.shutdown()

    def test_health_and_metrics_headers(self, server):
        with urllib.request.urlopen(f"{server.url}/healthz",
                                    timeout=10) as resp:
            assert resp.status == 200
            assert json.loads(resp.read())["status"] == "ok"
        with urllib.request.urlopen(f"{server.url}/metrics",
                                    timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"] == PROM_CONTENT_TYPE
            parse_prometheus(resp.read().decode())

    def test_wire_post_reverify(self, server):
        request = urllib.request.Request(
            f"{server.url}/apps/todo/reverify", method="POST")
        with urllib.request.urlopen(request, timeout=30) as resp:
            assert resp.status == 200
            assert json.loads(resp.read())["trigger"] == "forced"
