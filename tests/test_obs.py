"""Tests for the observability layer: spans, the tracer, renderers,
worker span forwarding, and the no-tracing-no-cost contract.

Span-tree equality between serial and parallel sweeps is asserted
modulo ordering and timing: same multiset of (kind, name) spans, same
pair routes and verdict attributes — see docs/OBSERVABILITY.md."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.analyzer import analyze_application
from repro.engine import run_pair_sweep
from repro.engine.metrics import EngineMetrics
from repro.obs.tracer import NULL_CONTEXT, NULL_SPAN
from repro.verifier import CheckConfig

#: deterministic budget: decided by sample exhaustion, never by the clock
CFG = CheckConfig(timeout_s=60.0, max_samples=60, max_exhaustive=800)


@pytest.fixture(scope="module")
def courseware_analysis():
    from repro.apps.courseware import build_app

    return analyze_application(build_app())


# ---------------------------------------------------------------------------
# Core tracer behavior
# ---------------------------------------------------------------------------


class TestSpans:
    def test_nesting(self):
        tracer = obs.Tracer()
        with tracer.span("outer", "pair-sweep") as outer:
            with tracer.span("inner-a", "pair", route="solved") as a:
                a.set(restricted=True)
            with tracer.span("inner-b", "pair"):
                with tracer.span("leaf", "check"):
                    pass
        assert [s.name for s in tracer.roots] == ["outer"]
        assert [c.name for c in outer.children] == ["inner-a", "inner-b"]
        assert outer.children[1].children[0].kind == "check"
        assert outer.children[0].attrs == {
            "route": "solved", "restricted": True,
        }

    def test_timings_and_self_time(self):
        tracer = obs.Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.wall_s >= inner.wall_s >= 0.0
        assert outer.self_wall_s == pytest.approx(
            outer.wall_s - inner.wall_s
        )

    def test_exception_still_finishes_span(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.roots[0].wall_s > 0.0
        assert not tracer._stack

    def test_ring_buffer_bounded(self):
        tracer = obs.Tracer(max_records=4)
        for i in range(10):
            tracer.record(f"r{i}", "pair")
        assert len(tracer.ring) == 4
        assert [r["name"] for r in tracer.ring] == ["r6", "r7", "r8", "r9"]
        # the span forest is unaffected by the ring cap
        assert len(tracer.roots) == 10

    def test_record_attaches_under_open_span(self):
        tracer = obs.Tracer()
        with tracer.span("parent") as parent:
            tracer.record("child", "solver-call", wall_s=0.5, result="sat")
        assert parent.children[0].name == "child"
        assert parent.children[0].wall_s == 0.5

    def test_walk_and_find(self):
        tracer = obs.Tracer()
        with tracer.span("a", "pair-sweep"):
            with tracer.span("b", "pair"):
                tracer.record("c", "check")
            tracer.record("d", "pair")
        names = [s.name for s in tracer.roots[0].walk()]
        assert names == ["a", "b", "c", "d"]
        assert [s.name for s in tracer.roots[0].find("pair")] == ["b", "d"]


class TestActivation:
    def test_disabled_helpers_are_noops(self):
        assert obs.current() is None
        assert not obs.enabled()
        assert obs.tracer.span("x", "pair") is NULL_CONTEXT
        with obs.tracer.span("x") as s:
            assert s is NULL_SPAN
            s.set(ignored=1)
            s.incr("ignored")
        obs.add_attrs(ignored=1)
        obs.incr("ignored")
        obs.record("ignored")

    def test_activate_scopes_the_tracer(self):
        tracer = obs.Tracer()
        with obs.activate(tracer):
            assert obs.current() is tracer
            with obs.tracer.span("live", "pair"):
                obs.add_attrs(k="v")
        assert obs.current() is None
        assert tracer.roots[0].attrs == {"k": "v"}


class TestSerialization:
    def test_span_obj_roundtrip(self):
        tracer = obs.Tracer()
        with tracer.span("root", "pair", left="P", right="Q") as root:
            with tracer.span("kid", "check"):
                pass
        obj = obs.span_to_obj(root)
        json.dumps(obj)  # JSON-safe
        back = obs.span_from_obj(obj)
        assert back.name == "root" and back.kind == "pair"
        assert back.attrs == {"left": "P", "right": "Q"}
        assert back.children[0].name == "kid"
        assert back.wall_s == root.wall_s

    def test_jsonl_sink_and_checker_contract(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = obs.Tracer(sink=obs.JsonlSink(str(path)))
        with tracer.span("root", "pair-sweep"):
            with tracer.span("kid", "pair"):
                pass
        tracer.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        # children close (and are written) before their parent
        assert [r["name"] for r in records] == ["kid", "root"]
        by_id = {r["id"]: r for r in records}
        kid, root = records
        assert root["parent"] is None
        assert kid["parent"] == root["id"]
        assert by_id[kid["parent"]]["name"] == "root"

    def test_graft_renumbers_into_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        worker = obs.Tracer()
        with worker.span("pair", "pair"):
            with worker.span("check", "check"):
                pass
        obj = obs.span_to_obj(worker.roots[0])
        parent = obs.Tracer(sink=obs.JsonlSink(str(path)))
        with parent.span("sweep", "pair-sweep") as sweep:
            parent.graft(obj, parent=sweep)
        parent.close()
        assert sweep.children[0].children[0].name == "check"
        records = [json.loads(line) for line in path.read_text().splitlines()]
        ids = {r["id"] for r in records}
        assert len(ids) == len(records)  # grafted spans got fresh ids
        for r in records:
            assert r["parent"] is None or r["parent"] in ids


class TestRenderers:
    def _forest(self):
        tracer = obs.Tracer()
        with tracer.span("sweep", "pair-sweep"):
            with tracer.span("P x Q", "pair", route="solved", pid=1):
                tracer.record("c", "check", wall_s=0.01)
            tracer.record("A x B", "pair", wall_s=0.5, route="solved", pid=2)
            tracer.record("pruned", "pair", route="pruned:disjoint")
        return tracer.roots

    def test_render_tree(self):
        lines = obs.render_tree(self._forest())
        assert lines[0].startswith("sweep")
        assert any("route=solved" in line for line in lines)
        assert sum(1 for line in lines if line.startswith("  ")) >= 3

    def test_phase_breakdown(self):
        rows = obs.phase_breakdown(self._forest())
        by_kind = {r["kind"]: r for r in rows}
        assert by_kind["pair"]["count"] == 3
        assert by_kind["pair-sweep"]["count"] == 1

    def test_slowest_pairs(self):
        lines = obs.slowest_pairs_table(self._forest(), top=1)
        assert "A x B" in lines[1]  # slowest solved pair, not the pruned one


# ---------------------------------------------------------------------------
# End-to-end: the instrumented pipeline
# ---------------------------------------------------------------------------


ALL_KINDS = {
    "app-analysis", "soir-lowering", "endpoint", "path-finding",
    "pair-sweep", "pair", "check", "solver-call",
}


def traced_run(jobs: int):
    from repro.apps.courseware import build_app

    tracer = obs.Tracer()
    with obs.activate(tracer):
        analysis = analyze_application(build_app())
        report = run_pair_sweep(analysis, CFG, jobs=jobs, use_cache=False)
    return tracer, report


def tree_signature(span) -> tuple:
    """(kind, name, sorted child signatures) — order/timing independent."""
    return (
        span.kind, span.name,
        tuple(sorted(tree_signature(c) for c in span.children)),
    )


class TestPipelineTracing:
    def test_all_phases_covered(self):
        tracer, report = traced_run(jobs=1)
        kinds = {s.kind for root in tracer.roots for s in root.walk()}
        assert ALL_KINDS <= kinds
        assert len(report.restrictions) == 2

    @staticmethod
    def _untimed(report):
        verdicts = report.to_json_obj()["verdicts"]
        return [
            {k: v for k, v in verdict.items() if not k.endswith("_s")}
            for verdict in verdicts
        ]

    def test_serial_and_parallel_traces_equivalent(self):
        serial, report_s = traced_run(jobs=1)
        parallel, report_p = traced_run(jobs=2)
        # identical reports (modulo wall-clock timings)...
        assert self._untimed(report_s) == self._untimed(report_p)
        # ...and span trees equal modulo ordering (worker spans grafted)
        sig_s = sorted(tree_signature(r) for r in serial.roots)
        sig_p = sorted(tree_signature(r) for r in parallel.roots)
        assert sig_s == sig_p
        sweep = parallel.roots[-1]
        assert sweep.attrs["mode"] == "parallel"
        pids = {
            s.attrs["pid"] for s in sweep.find("pair")
            if s.attrs.get("route") == "solved"
        }
        assert len(pids) >= 1  # worker pids survived the graft

    def test_untraced_run_identical_report_and_no_solver_spans(
        self, courseware_analysis
    ):
        traced_tracer, traced_report = traced_run(jobs=1)
        plain_report = run_pair_sweep(
            courseware_analysis, CFG, jobs=1, use_cache=False
        )
        assert obs.current() is None
        # byte-identical deployment artifact, modulo wall-clock noise
        obj_a, obj_b = (
            r.to_json_obj() for r in (traced_report, plain_report)
        )
        assert obj_a["restrictions"] == obj_b["restrictions"]
        assert obj_a["metrics"]["solver_calls"] == (
            obj_b["metrics"]["solver_calls"]
        )
        for verdict_a, verdict_b in zip(obj_a["verdicts"], obj_b["verdicts"]):
            assert verdict_a["commutativity"] == verdict_b["commutativity"]
            assert verdict_a["semantic"] == verdict_b["semantic"]
            # per-pair timings populated on both paths (may differ in value)
            assert (verdict_a["commutativity_s"] is None) == (
                verdict_b["commutativity_s"] is None
            )

    def test_metrics_are_a_projection_of_the_sweep_span(self):
        tracer, report = traced_run(jobs=1)
        sweep = tracer.roots[-1]
        assert sweep.kind == "pair-sweep"
        rebuilt = EngineMetrics.from_sweep(sweep).to_dict()
        assert rebuilt == report.metrics
        # 10 pairs: 2 fast-pruned, 1 class-shared, 7 solved
        assert rebuilt["solver_calls"] == 7
        assert rebuilt["shared"] == 1
        assert rebuilt["pruned"] == 2
