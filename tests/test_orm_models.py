"""Tests for model declaration, fields and the metaclass."""

import pytest

from repro.orm import (
    AutoField,
    BooleanField,
    CASCADE,
    CharField,
    Database,
    DateTimeField,
    EmailField,
    FieldError,
    FloatField,
    ForeignKey,
    IntegerField,
    ManyToManyField,
    Model,
    PositiveIntegerField,
    Registry,
    SET_NULL,
    TextField,
    ValidationError,
)
from repro.orm.fields import NOT_PROVIDED
from repro.soir.types import BOOL, DATETIME, FLOAT, INT, STRING


@pytest.fixture()
def registry():
    return Registry("test")


class TestFieldValidation:
    def test_integer_type_check(self):
        f = IntegerField()
        f.name = "n"
        f.validate(3)
        with pytest.raises(ValidationError):
            f.validate("x")
        with pytest.raises(ValidationError):
            f.validate(True)  # bools are not ints here

    def test_positive_integer(self):
        f = PositiveIntegerField()
        f.name = "n"
        f.validate(0)
        f.validate(10)
        with pytest.raises(ValidationError):
            f.validate(-1)

    def test_null_handling(self):
        f = IntegerField()
        f.name = "n"
        with pytest.raises(ValidationError):
            f.validate(None)
        f2 = IntegerField(null=True)
        f2.name = "n"
        f2.validate(None)

    def test_choices(self):
        f = CharField(choices=[("a", "Alpha"), ("b", "Beta")])
        f.name = "c"
        f.validate("a")
        with pytest.raises(ValidationError):
            f.validate("z")

    def test_plain_choices(self):
        f = IntegerField(choices=[1, 2, 3])
        f.name = "c"
        f.validate(2)
        with pytest.raises(ValidationError):
            f.validate(9)

    def test_charfield_max_length(self):
        f = CharField(max_length=3)
        f.name = "c"
        f.validate("abc")
        with pytest.raises(ValidationError):
            f.validate("abcd")

    def test_email(self):
        f = EmailField()
        f.name = "e"
        f.validate("a@b.c")
        with pytest.raises(ValidationError):
            f.validate("nope")

    def test_boolean(self):
        f = BooleanField()
        f.name = "b"
        f.validate(True)
        with pytest.raises(ValidationError):
            f.validate(1)

    def test_float_accepts_int(self):
        f = FloatField()
        f.name = "f"
        f.validate(1)
        f.validate(1.5)
        with pytest.raises(ValidationError):
            f.validate("1.5")

    def test_defaults(self):
        f = IntegerField(default=7)
        assert f.has_default() and f.get_default() == 7
        g = IntegerField(default=lambda: 9)
        assert g.get_default() == 9
        h = IntegerField()
        assert not h.has_default()
        assert h.default is NOT_PROVIDED

    def test_soir_types(self):
        assert IntegerField().soir_type == INT
        assert TextField().soir_type == STRING
        assert BooleanField().soir_type == BOOL
        assert FloatField().soir_type == FLOAT
        assert DateTimeField().soir_type == DATETIME


class TestModelMeta:
    def test_auto_pk_added(self, registry):
        with registry.use():
            class Thing(Model):
                name = TextField(default="")

        assert Thing._meta.pk.name == "id"
        assert isinstance(Thing._meta.pk, AutoField)

    def test_explicit_pk(self, registry):
        with registry.use():
            class User(Model):
                name = TextField(primary_key=True)

        assert User._meta.pk.name == "name"
        assert not isinstance(User._meta.pk, AutoField)

    def test_double_pk_rejected(self, registry):
        with pytest.raises(FieldError), registry.use():
            class Bad(Model):
                a = TextField(primary_key=True)
                b = TextField(primary_key=True)

    def test_mixin_field_inheritance(self, registry):
        """Fields arrive through abstract bases / mixins — the dynamic
        feature (C1) static analyzers cannot see."""
        with registry.use():
            class Timestamped(Model):
                class Meta:
                    abstract = True
                created = DateTimeField(auto_now_add=True)

            class Owned(Model):
                class Meta:
                    abstract = True
                owner = TextField(default="")

            class Doc(Timestamped, Owned):
                body = TextField(default="")

        names = [f.name for f in Doc._meta.columns]
        assert "created" in names and "owner" in names and "body" in names
        assert "Doc" in registry.models
        assert "Timestamped" not in registry.models  # abstract not registered

    def test_per_class_exceptions(self, registry):
        with registry.use():
            class A(Model):
                pass

            class B(Model):
                pass

        assert A.DoesNotExist is not B.DoesNotExist
        assert issubclass(A.DoesNotExist, Exception)

    def test_duplicate_registration_rejected(self, registry):
        with registry.use():
            class A(Model):
                pass
        with pytest.raises(FieldError), registry.use():
            class A(Model):  # noqa: F811
                pass

    def test_unique_together_normalization(self, registry):
        with registry.use():
            class P(Model):
                a = TextField(default="")
                b = TextField(default="")
                class Meta:
                    unique_together = ("a", "b")

            class Q(Model):
                a = TextField(default="")
                b = TextField(default="")
                class Meta:
                    unique_together = (("a", "b"),)

        assert P._meta.unique_together == (("a", "b"),)
        assert Q._meta.unique_together == (("a", "b"),)

    def test_init_kwargs(self, registry):
        with registry.use():
            class T(Model):
                name = TextField(default="anon")
                score = IntegerField(default=0)

        t = T(name="x")
        assert t.name == "x" and t.score == 0
        with pytest.raises(FieldError):
            T(bogus=1)

    def test_init_pk_alias(self, registry):
        with registry.use():
            class T(Model):
                pass

        t = T(pk=5)
        assert t.id == 5 and t.pk == 5

    def test_equality_and_hash(self, registry):
        with registry.use():
            class T(Model):
                pass

        a, b = T(pk=1), T(pk=1)
        c = T(pk=2)
        assert a == b and a != c
        assert hash(a) == hash(b)
        unsaved1, unsaved2 = T(), T()
        assert unsaved1 != unsaved2  # identity equality when pk unset
        assert repr(a) == "<T pk=1>"


class TestRelationsMeta:
    def test_reverse_accessor_installed(self, registry):
        with registry.use():
            class User(Model):
                name = TextField(primary_key=True)

            class Post(Model):
                author = ForeignKey(User, on_delete=CASCADE)

        assert "post_set" in User._meta.reverse_relations

    def test_related_name(self, registry):
        with registry.use():
            class User(Model):
                name = TextField(primary_key=True)

            class Post(Model):
                author = ForeignKey(User, on_delete=CASCADE, related_name="posts")

        assert "posts" in User._meta.reverse_relations

    def test_string_forward_reference(self, registry):
        """FK can name its target before the target exists (Django allows
        this); the reverse accessor is installed on late registration."""
        with registry.use():
            class Post(Model):
                author = ForeignKey("User", on_delete=CASCADE)

            class User(Model):
                name = TextField(primary_key=True)

        assert "post_set" in User._meta.reverse_relations

    def test_schema_derivation(self, registry):
        with registry.use():
            class User(Model):
                name = TextField(primary_key=True)

            class Post(Model):
                title = TextField(default="")
                views = PositiveIntegerField(default=0)
                author = ForeignKey(User, on_delete=SET_NULL, null=True)
                tags = ManyToManyField("Tag")

            class Tag(Model):
                label = TextField(unique=True)

        schema = registry.to_soir_schema()
        assert set(schema.models) == {"User", "Post", "Tag"}
        assert schema.model("Post").field("views").min_value == 0
        assert schema.model("Tag").field("label").unique
        rel = schema.relation("Post.author")
        assert rel.kind == "fk" and rel.on_delete == "set_null" and rel.nullable
        m2m = schema.relation("Post.tags")
        assert m2m.kind == "m2m"
        assert schema.model("User").pk == "name"
        assert not schema.model("User").auto_pk
        assert schema.model("Post").auto_pk
