"""Tests for the baseline analyzers and Noctua/baseline agreement
(paper Table 5)."""

import pytest

from repro.analyzer import analyze_application
from repro.apps.courseware import build_app as build_courseware
from repro.apps.smallbank import build_app as build_smallbank
from repro.baselines import (
    check_pair,
    courseware_spec,
    hamsaz,
    rigi,
    smallbank_spec,
)
from repro.baselines.specs import clone_state
from repro.verifier import verify_application


class TestSpecs:
    def test_smallbank_states_are_valid(self):
        spec = smallbank_spec()
        states = spec.states()
        assert len(states) == 81  # 3^4 combinations
        assert all(spec.invariant(s) for s in states)

    def test_courseware_invariant_filters(self):
        spec = courseware_spec()
        states = spec.states()
        assert any(not spec.invariant(s) for s in states) is False or True
        # enrolments in generated states always reference present entities
        for s in states:
            assert spec.invariant(s)

    def test_arg_vectors(self):
        spec = smallbank_spec()
        op = spec.operation("SendPayment")
        vectors = list(op.arg_vectors())
        assert {"src": "a", "dst": "b", "v": 1} in vectors
        assert len(vectors) == 2 * 2 * 3

    def test_clone_state_isolation(self):
        spec = smallbank_spec()
        state = spec.states()[0]
        copy = clone_state(state)
        copy["accounts"]["a"]["checking"] += 99
        assert state["accounts"]["a"]["checking"] != copy["accounts"]["a"]["checking"]


class TestRigiSmallBank:
    @pytest.fixture(scope="class")
    def report(self):
        return rigi.analyze(smallbank_spec())

    def test_no_commutativity_failures(self, report):
        assert report.commutativity_failures == set()

    def test_four_semantic_failures(self, report):
        assert report.semantic_failures == {
            frozenset(("TransactSavings",)),
            frozenset(("SendPayment",)),
            frozenset(("Amalgamate",)),
            frozenset(("Amalgamate", "SendPayment")),
        }

    def test_restrictions_union(self, report):
        assert len(report.restrictions) == 4


class TestHamsazCourseware:
    @pytest.fixture(scope="class")
    def report(self):
        return hamsaz.analyze(courseware_spec())

    def test_single_conflict(self, report):
        assert report.conflicting == {frozenset(("AddCourse", "DeleteCourse"))}

    def test_single_invalidation(self, report):
        assert report.invalidating == {frozenset(("Enroll", "DeleteCourse"))}

    def test_must_synchronize(self, report):
        assert len(report.must_synchronize) == 2


class TestUniqueIdToggle:
    def test_addcourse_self_conflicts_without_fresh_ids(self):
        spec = courseware_spec()
        add = spec.operation("AddCourse")
        with_ids = check_pair(spec, add, add, unique_ids=True)
        without = check_pair(spec, add, add, unique_ids=False)
        assert not with_ids.restricted
        assert without.restricted  # same fresh ID -> both checks break


class TestAgreementWithNoctua:
    """The cross-implementation check behind paper Table 5: Noctua's
    analysis of the *application code* agrees with the baselines' analysis
    of the hand-written *specifications*."""

    def _noctua_failures(self, app):
        analysis = analyze_application(app)
        report = verify_application(analysis)
        com = {
            frozenset((v.left.split("[")[0], v.right.split("[")[0]))
            for v in report.commutativity_failures
        }
        sem = {
            frozenset((v.left.split("[")[0], v.right.split("[")[0]))
            for v in report.semantic_failures
        }
        return com, sem

    def test_smallbank_agreement(self):
        com, sem = self._noctua_failures(build_smallbank())
        baseline = rigi.analyze(smallbank_spec())
        assert com == baseline.commutativity_failures
        assert sem == baseline.semantic_failures

    def test_courseware_agreement(self):
        com, sem = self._noctua_failures(build_courseware())
        baseline = hamsaz.analyze(courseware_spec())
        assert com == baseline.conflicting
        assert sem == baseline.invalidating
