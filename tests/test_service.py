"""Tests for the continuous verification service (daemon layer).

The expensive fixtures run one *cold* sweep of the todo app under the
quick config (55 pairs, ~a second) and then clone the whole tree — app
sources plus the warm on-disk cache — per test, so every incremental
scenario starts from an identical, deterministic baseline.
"""

from __future__ import annotations

import os
import shutil
from types import SimpleNamespace

import pytest

from repro.apps.todo import build_app as build_todo
from repro.georep import (
    Deployment,
    DeploymentConfig,
    RequestSpec,
    RestrictionSetSubscription,
)
from repro.georep.workload import Workload
from repro.orm import Database
from repro.service import (
    SpecError,
    SourceWatcher,
    VerificationService,
    builtin_spec,
    directory_spec,
    export_builtin_app,
    parse_app_arg,
)
from repro.verifier import CheckConfig

#: the CLI's --quick config; every count below is pinned against it
QUICK = CheckConfig(timeout_s=60.0, max_samples=60, max_exhaustive=800)

#: the edit that touches one view (CompleteTask) without changing any
#: verdict: exactly the 10 CompleteTask pairs out of 55 miss the warm
#: cache and re-solve (todo's creating updates defeat rw-pruning)
PRIORITY_OLD = "task.done = True"
PRIORITY_NEW = "task.done = True\n        task.priority = 1"

#: the edit that changes the restriction set: ToggleStar becomes a
#: delete, so its conflict row changes and the version must bump
STAR_OLD = """\
        if task.starred:
            task.starred = False
        else:
            task.starred = True
        task.save()"""
STAR_NEW = "        task.delete()"


def edit(app_dir, old: str, new: str) -> None:
    source = app_dir / "app.py"
    text = source.read_text()
    assert old in text, f"fixture drift: {old!r} not in exported app.py"
    source.write_text(text.replace(old, new))


def make_service(root) -> SimpleNamespace:
    app_dir = root / "app"
    if not app_dir.is_dir():
        export_builtin_app("todo", app_dir)
    spec = directory_spec("todo", str(app_dir))
    service = VerificationService(
        [spec], QUICK, cache_dir=str(root / "cache"))
    return SimpleNamespace(root=root, app_dir=app_dir, service=service)


@pytest.fixture(scope="module")
def cold(tmp_path_factory):
    """One cold-swept todo service; treat as read-only."""
    ctx = make_service(tmp_path_factory.mktemp("service-cold"))
    stats = ctx.service.run_cycle()
    assert len(stats) == 1
    ctx.stats = stats[0]
    return ctx


@pytest.fixture()
def clone(cold, tmp_path):
    """A fresh service over a copy of the cold tree (warm cache)."""
    root = tmp_path / "tree"
    shutil.copytree(cold.root, root)
    return make_service(root)


class TestSourceWatcher:
    def test_prime_then_clean_poll(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("y = 2\n")
        watcher = SourceWatcher(tmp_path)
        assert watcher.prime() == 2
        delta = watcher.poll()
        assert not delta.changed and delta.files == ()

    def test_touch_without_content_change_is_no_delta(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        watcher = SourceWatcher(tmp_path)
        watcher.prime()
        stat = target.stat()
        os.utime(target, ns=(stat.st_atime_ns + 10_000_000,
                             stat.st_mtime_ns + 10_000_000))
        assert not watcher.poll().changed  # digest unchanged

    def test_modify_add_remove(self, tmp_path):
        a, b = tmp_path / "a.py", tmp_path / "b.py"
        a.write_text("x = 1\n")
        b.write_text("y = 2\n")
        watcher = SourceWatcher(tmp_path)
        watcher.prime()
        a.write_text("x = 3\n")
        b.unlink()
        (tmp_path / "c.py").write_text("z = 4\n")
        delta = watcher.poll()
        assert delta.modified == ("a.py",)
        assert delta.removed == ("b.py",)
        assert delta.added == ("c.py",)
        assert delta.files == ("a.py", "b.py", "c.py")
        # the poll rebased the snapshot: next poll is clean
        assert not watcher.poll().changed

    def test_non_python_files_ignored(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        watcher = SourceWatcher(tmp_path)
        watcher.prime()
        (tmp_path / "notes.txt").write_text("ignored")
        assert not watcher.poll().changed


class TestSpecs:
    def test_parse_builtin(self):
        spec = parse_app_arg("todo")
        assert spec.builtin and spec.name == "todo"
        assert spec.build().name  # importable and buildable

    def test_parse_directory(self, tmp_path):
        export_builtin_app("todo", tmp_path / "t")
        spec = parse_app_arg(f"mytodo={tmp_path / 't'}")
        assert not spec.builtin and spec.name == "mytodo"

    def test_unknown_builtin_rejected(self):
        with pytest.raises(SpecError):
            parse_app_arg("no-such-app")

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SpecError):
            parse_app_arg(f"x={tmp_path / 'absent'}")

    def test_export_rewrites_relative_imports(self, tmp_path):
        export_builtin_app("todo", tmp_path / "t")
        text = (tmp_path / "t" / "app.py").read_text()
        assert "from repro.orm import" in text
        assert "from ..." not in text

    def test_exported_app_analyzes_like_builtin(self, tmp_path):
        export_builtin_app("todo", tmp_path / "t")
        exported = directory_spec("todo", str(tmp_path / "t")).build()
        assert ({p.name for p in exported.endpoints()}
                == {p.name for p in builtin_spec("todo").build().endpoints()})


class TestColdCycle:
    def test_cold_solves_every_unpruned_pair(self, cold):
        stats = cold.stats
        assert stats.trigger == "initial"
        assert stats.pairs_total == 55  # 10 effectful paths
        assert stats.solver_calls == len(stats.invalidated) > 0
        assert stats.cache_hits == 0
        assert stats.restrictions > 0
        assert stats.unknowns == 0
        assert stats.version == 1 and stats.version_changed

    def test_clean_poll_skips_reverification(self, cold):
        assert cold.service.run_cycle() == []

    def test_forced_warm_cycle_solves_nothing(self, cold):
        [stats] = cold.service.run_cycle(force=True)
        assert stats.trigger == "forced"
        assert stats.invalidated == ()
        assert stats.solver_calls == 0
        assert stats.cache_hits == cold.stats.solver_calls
        assert stats.version == 1 and not stats.version_changed

    def test_registry_counts_cycles(self, cold):
        registry = cold.service.registry
        assert registry.value(
            "noctua_service_reverifies_total", app="todo") >= 1
        assert registry.value(
            "noctua_service_restriction_version", app="todo") == 1.0


class TestIncrementalInvalidation:
    def test_single_view_edit_invalidates_only_its_pairs(self, cold, clone):
        edit(clone.app_dir, PRIORITY_OLD, PRIORITY_NEW)
        [stats] = clone.service.run_cycle()
        assert stats.files == ("app.py",)
        # only CompleteTask pairs miss the warm cache...
        assert all(any(name.startswith("CompleteTask") for name in pair)
                   for pair in stats.invalidated)
        assert len(stats.invalidated) == 10
        # ...and the sweep solved exactly those (EngineMetrics)
        assert stats.solver_calls == len(stats.invalidated)
        assert stats.cache_hits == cold.stats.solver_calls - 10
        # stale fingerprints of the edited view were pruned
        assert stats.pruned_entries == 10
        # acceptance bar: warm work < 20% of the cold pair count
        assert stats.solver_calls < 0.20 * cold.stats.pairs_total

    def test_same_edit_yields_same_invalidated_set(self, cold, tmp_path):
        runs = []
        for i in range(2):
            root = tmp_path / f"tree{i}"
            shutil.copytree(cold.root, root)
            ctx = make_service(root)
            edit(ctx.app_dir, PRIORITY_OLD, PRIORITY_NEW)
            [stats] = ctx.service.run_cycle()
            runs.append(stats)
        assert runs[0].invalidated == runs[1].invalidated
        assert runs[0].solver_calls == runs[1].solver_calls
        assert runs[0].restrictions == runs[1].restrictions

    def test_version_bumps_only_when_conflicts_change(self, clone):
        service = clone.service
        [warm] = service.run_cycle(force=True)  # adopt the warm cache
        assert warm.version == 1
        subscription = service.subscribe("todo")
        assert subscription.version == 1
        _, table_v1 = subscription.current()

        # verdict-preserving edit: re-verifies, publishes nothing
        edit(clone.app_dir, PRIORITY_OLD, PRIORITY_NEW)
        [stats] = service.run_cycle()
        assert stats.trigger == "change"
        assert not stats.version_changed and stats.version == 1
        assert subscription.version == 1

        # restriction-changing edit: ToggleStar becomes a delete
        edit(clone.app_dir, STAR_OLD, STAR_NEW)
        [stats] = service.run_cycle()
        assert stats.trigger == "change"
        assert stats.version_changed and stats.version == 2
        assert subscription.version == 2
        _, table_v2 = subscription.current()
        assert table_v2 != table_v1
        assert any("ToggleStar" in pair for pair in table_v2 - table_v1)


def todo_workload(app, db, write_ratio=0.4, seed=11) -> Workload:
    """Seed ten tasks and build a small read/write mix."""
    Task = app.registry.get_model("Task")
    with db.activate():
        pks = [Task.objects.create(title=f"t{i}").pk for i in range(10)]
    wl = Workload(app, db, write_ratio, seed)
    wl.reads = [
        lambda rng: RequestSpec("/tasks", "GET", {}, False),
        lambda rng: RequestSpec("/tasks/pending", "GET", {}, False),
    ]
    wl.writes = [
        lambda rng: RequestSpec(
            f"/tasks/{rng.choice(pks)}/complete", "POST", {}, True),
        lambda rng: RequestSpec(
            f"/tasks/{rng.choice(pks)}/star", "POST", {}, True),
    ]
    return wl


class TestHotReload:
    CONFIG = DeploymentConfig(duration_ms=300.0, warmup_ms=20.0,
                              clients_per_site=2)

    def test_subscription_publish_and_version(self):
        subscription = RestrictionSetSubscription()
        assert subscription.version == 0
        table = {frozenset({"A", "B"})}
        assert subscription.publish(table) == 1
        assert subscription.publish(table, version=5) == 5
        version, got = subscription.current()
        assert version == 5 and got == table
        got.add(frozenset({"C"}))  # current() returns a copy
        assert subscription.current()[1] == table

    def test_deployment_reloads_mid_run(self):
        app = build_todo()
        db = Database(app.registry)
        workload = todo_workload(app, db)
        subscription = RestrictionSetSubscription()
        v1 = {frozenset({"CompleteTask", "ToggleStar"})}
        subscription.publish(v1, version=1)
        deployment = Deployment(app, db, workload, set(),
                                config=self.CONFIG,
                                subscription=subscription)
        assert deployment.restriction_version == 1  # adopted at start
        v2 = v1 | {frozenset({"CompleteTask"})}
        deployment.sim.schedule(
            100.0, lambda: subscription.publish(v2, version=2))
        summary = deployment.run()
        assert deployment.restriction_version == 2
        assert deployment.restriction_reloads == 1
        assert deployment.coordinator.conflict_table == v2
        assert summary.requests > 0
        assert summary.error_fraction == 0.0

    def test_service_publish_reaches_running_deployment(self, clone):
        """The full loop: edit -> re-verify -> publish -> hot reload,
        while the deployment is mid-simulation."""
        service = clone.service
        service.run_cycle(force=True)  # warm adopt, version 1
        subscription = service.subscribe("todo")
        app = build_todo()
        db = Database(app.registry)
        deployment = Deployment(app, db, todo_workload(app, db), set(),
                                config=self.CONFIG,
                                subscription=subscription)
        assert deployment.restriction_version == 1

        def change_and_reverify():
            edit(clone.app_dir, STAR_OLD, STAR_NEW)
            service.run_cycle()

        deployment.sim.schedule(100.0, change_and_reverify)
        summary = deployment.run()
        # the deployment observed the new set without restart...
        assert deployment.restriction_version == 2
        assert deployment.restriction_reloads == 1
        state = service.apps["todo"]
        assert deployment.coordinator.conflict_table == state.conflict_table
        # ...and converged cleanly under the reloaded restrictions
        assert summary.requests > 0
        assert summary.error_fraction == 0.0
