"""Tests for the 'why restricted?' explainer (``repro.obs.explain``).

The explainer must be deterministic: seeded witness search, sorted
rendering, and no timing figures in the output — running it twice on
the same pair yields byte-identical text."""

from __future__ import annotations

import pytest

from repro.analyzer import analyze_application
from repro.engine import run_pair_sweep
from repro.obs.explain import ExplainError, explain_pair, explain_report
from repro.verifier import CheckConfig

#: deterministic budget: decided by sample exhaustion, never by the clock
CFG = CheckConfig(timeout_s=60.0, max_samples=60, max_exhaustive=800)


@pytest.fixture(scope="module")
def courseware_analysis():
    from repro.apps.courseware import build_app

    return analyze_application(build_app())


@pytest.fixture(scope="module")
def smallbank_analysis():
    from repro.apps.smallbank import build_app

    return analyze_application(build_app())


class TestResolution:
    def test_unknown_name(self, courseware_analysis):
        with pytest.raises(ExplainError, match="no code path named"):
            explain_pair(courseware_analysis, "Nope[0]", "AddCourse[0]", CFG)

    def test_view_name_resolves_to_single_effectful_path(
        self, courseware_analysis
    ):
        by_view = explain_pair(
            courseware_analysis, "AddCourse", "DeleteCourse", CFG
        )
        by_path = explain_pair(
            courseware_analysis, "AddCourse[0]", "DeleteCourse[0]", CFG
        )
        assert by_view == by_path

    def test_non_effectful_path_rejected(self, courseware_analysis):
        # ListCourses is a read-only view: no effectful path to explain
        with pytest.raises(ExplainError):
            explain_pair(courseware_analysis, "ListCourses", "AddCourse", CFG)


class TestCommutativityWitness:
    def test_deterministic(self, courseware_analysis):
        first = explain_pair(
            courseware_analysis, "AddCourse[0]", "DeleteCourse[0]", CFG
        )
        second = explain_pair(
            courseware_analysis, "AddCourse[0]", "DeleteCourse[0]", CFG
        )
        assert first == second

    def test_witness_content(self, courseware_analysis):
        text = explain_pair(
            courseware_analysis, "AddCourse[0]", "DeleteCourse[0]", CFG
        )
        assert "RESTRICTED" in text
        assert "commutativity: FAIL" in text
        assert "witness arguments:" in text
        assert "diverging state:" in text
        assert "Course[" in text
        assert "SOIR operations responsible:" in text
        # no wall-clock numbers may leak into the deterministic output
        assert "elapsed" not in text and " s)" not in text


class TestSemanticWitness:
    def test_invalidated_invariant(self, smallbank_analysis):
        text = explain_pair(
            smallbank_analysis, "TransactSavings", "TransactSavings", CFG
        )
        assert "RESTRICTED" in text
        assert "invalidate" in text
        # the failing guard is printed as the invalidated invariant
        assert "invalidated invariant" in text or "failing operation" in text

    def test_deterministic(self, smallbank_analysis):
        first = explain_pair(
            smallbank_analysis, "TransactSavings", "TransactSavings", CFG
        )
        second = explain_pair(
            smallbank_analysis, "TransactSavings", "TransactSavings", CFG
        )
        assert first == second


class TestUnrestrictedPair:
    def test_reports_scope_examined(self, courseware_analysis):
        text = explain_pair(
            courseware_analysis, "Register[0]", "Register[0]", CFG
        )
        assert "NOT RESTRICTED" in text
        assert "scenarios" in text


class TestExplainReport:
    def test_covers_every_restriction(self, courseware_analysis):
        report = run_pair_sweep(
            courseware_analysis, CFG, jobs=1, use_cache=False
        )
        assert len(report.restrictions) == 2
        text = explain_report(courseware_analysis, report, CFG)
        assert text.count("RESTRICTED") >= len(report.restrictions)
        for verdict in report.restrictions:
            assert verdict.left in text and verdict.right in text

    def test_limit_annotates_remainder(self, courseware_analysis):
        report = run_pair_sweep(
            courseware_analysis, CFG, jobs=1, use_cache=False
        )
        text = explain_report(courseware_analysis, report, CFG, limit=1)
        assert "1 further restricted pair" in text
        assert "--explain-all" in text


class TestExplainFlip:
    def test_renders_from_plain_dict(self):
        from repro.obs.explain import explain_flip

        text = explain_flip({
            "seed": 3, "step": 7, "op": "tighten-unique",
            "direction": "restricting",
            "digest_restricted": "abcdef0123456789",
            "digest_unrestricted": "9876543210fedcba",
            "isolation": "por", "first_level": "por",
            "paths": ["P", "Q"],
        })
        assert "tighten-unique" in text
        assert "restricted abcdef012345" in text
        assert "first diverging level: por" in text

    def test_real_flip_record_roundtrips(self):
        from repro.difftest.directed import DirectedConfig, run_directed
        from repro.obs.explain import explain_flip

        report = run_directed(1, config=DirectedConfig(budget=30))
        if not report.flips:
            import pytest

            pytest.skip("seed 0 walk found no flip at this budget")
        text = explain_flip(report.flips[0].to_obj())
        assert "flip: seed 0" in text
        assert report.flips[0].op in text
