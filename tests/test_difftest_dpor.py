"""The DPOR-pruned k-path schedule oracle: the sleep-set pruner keeps
exactly one representative per Mazurkiewicz trace, the pruned schedule
set reaches the *same* divergence verdict as brute-force enumeration on
random cases, and every reported witness replays concretely through the
reference interpreter.
"""

from __future__ import annotations

import pytest

from repro.difftest.dpor import (
    KScheduleReport,
    dependency_matrix,
    dpor_schedules,
    full_schedules,
    localize_divergence,
    run_schedule_oracle,
)
from repro.difftest.gen import generate_case_k
from repro.difftest.oracle import OracleConfig
from repro.soir.interp import apply_path

pytestmark = pytest.mark.difftest

CFG = OracleConfig(max_states=12, max_env_pairs=16, max_combos=400)


def _dep(pairs: set, k: int) -> list[list[bool]]:
    dep = [[i == j for j in range(k)] for i in range(k)]
    for i, j in pairs:
        dep[i][j] = dep[j][i] = True
    return dep


class TestSleepSets:
    def test_all_independent_one_schedule(self):
        assert len(dpor_schedules(3, _dep(set(), 3))) == 1

    def test_all_dependent_full_factorial(self):
        dep = _dep({(0, 1), (0, 2), (1, 2)}, 3)
        assert sorted(dpor_schedules(3, dep)) == sorted(full_schedules(3))

    def test_one_dependent_pair(self):
        """Only 0 and 1 interact: the two relative orders of (0, 1) are
        the two traces, so exactly two schedules survive."""
        assert len(dpor_schedules(3, _dep({(0, 1)}, 3))) == 2

    def test_chain_dependency(self):
        """dep = {(0,1), (1,2)}: traces are distinguished by the order
        of 0 vs 1 and of 1 vs 2 — four consistent combinations, but the
        sleep-set pruner may keep an extra representative; at minimum it
        must beat full enumeration and cover all six finals' traces."""
        schedules = dpor_schedules(3, _dep({(0, 1), (1, 2)}, 3))
        assert 4 <= len(schedules) < 6
        projections = {
            (s.index(0) < s.index(1), s.index(1) < s.index(2))
            for s in schedules
        }
        assert len(projections) == 4

    def test_k4_independent(self):
        assert len(dpor_schedules(4, _dep(set(), 4))) == 1
        dep = _dep({(i, j) for i in range(4) for j in range(i + 1, 4)}, 4)
        assert len(dpor_schedules(4, dep)) == 24


class TestDependencyMatrix:
    def test_generated_case_matrix_is_symmetric(self):
        case = generate_case_k(0, 3)
        dep = dependency_matrix(case.paths, case.schema)
        for i in range(3):
            assert dep[i][i]
            for j in range(3):
                assert dep[i][j] == dep[j][i]


class TestVerdictEquivalence:
    """The acceptance property: for random 3-path cases, the pruned
    schedule set produces exactly the divergence verdict brute-force
    interleaving enumeration produces — and explores at most half the
    schedules on the benchmark aggregate."""

    SEEDS = range(0, 18)

    def test_pruned_equals_bruteforce(self):
        explored = full = 0
        for seed in self.SEEDS:
            case = generate_case_k(seed, 3)
            pruned = run_schedule_oracle(case.paths, case.schema, CFG)
            brute = run_schedule_oracle(case.paths, case.schema, CFG,
                                        prune=False)
            assert (pruned.divergence is None) == (brute.divergence is None), \
                f"seed {seed}: pruned and brute-force verdicts differ"
            explored += pruned.schedules_explored
            full += pruned.schedules_full
        assert explored <= full / 2, (
            f"pruning explored {explored}/{full} schedules — the "
            f"footprint independence relation stopped biting"
        )

    def test_witness_replays(self):
        found = 0
        for seed in self.SEEDS:
            report = run_schedule_oracle(
                generate_case_k(seed, 3).paths,
                generate_case_k(seed, 3).schema, CFG,
            )
            w = report.divergence
            if w is None:
                continue
            found += 1
            case = generate_case_k(seed, 3)
            finals = []
            for sched in (w.schedule_a, w.schedule_b):
                s = w.state
                for idx in sched:
                    s = apply_path(case.paths[idx], s, w.envs[idx],
                                   case.schema)
                finals.append(s)
            assert not finals[0].same_state(finals[1])
        assert found >= 1, "no divergent 3-path case in the seed block"

    def test_witness_localizes_to_adjacent_pair(self):
        for seed in self.SEEDS:
            case = generate_case_k(seed, 3)
            report = run_schedule_oracle(case.paths, case.schema, CFG)
            w = report.divergence
            if w is None:
                continue
            i, j = w.pair
            s_ij = apply_path(
                case.paths[j],
                apply_path(case.paths[i], w.mid_state, w.envs[i],
                           case.schema),
                w.envs[j], case.schema,
            )
            s_ji = apply_path(
                case.paths[i],
                apply_path(case.paths[j], w.mid_state, w.envs[j],
                           case.schema),
                w.envs[i], case.schema,
            )
            assert not s_ij.same_state(s_ji)


class TestLocalization:
    def test_no_divergence_no_localization(self):
        case = generate_case_k(0, 3)
        # identical envs applied from the same state in any order of a
        # single path trivially agree with themselves
        path = case.paths[0]
        got = localize_divergence(
            (path,), ({a.name: 1 for a in path.args},),
            __import__("repro.soir.state", fromlist=["DBState"])
            .DBState.empty(case.schema),
            case.schema,
        )
        assert got is None


class TestReportShape:
    def test_pruning_ratio(self):
        r = KScheduleReport(k=3, schedules_explored=3, schedules_full=6)
        assert r.pruning_ratio == 0.5
        assert KScheduleReport(k=2).pruning_ratio == 1.0

    def test_budget_note(self):
        cfg = OracleConfig(max_states=12, max_env_pairs=16, max_combos=1)
        case = generate_case_k(3, 3)
        report = run_schedule_oracle(case.paths, case.schema, cfg)
        if report.divergence is None:
            assert "combo budget exhausted" in report.notes
