"""Differential fuzzing of the two verification engines.

Random SOIR code paths are assembled from templates over a small fixed
schema; for every generated pair, the enumerative engine and the symbolic
engine must return the same verdicts.  This is the deep cross-check that
the §4.2 encoding means the same thing as the reference interpreter —
template-based so every generated path is well-formed by construction.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.soir import RelationSchema, Schema, commands as C, expr as E, make_model
from repro.soir.path import Argument, CodePath
from repro.soir.types import INT, STRING, Comparator
from repro.verifier import CheckConfig, Outcome, PairChecker, SmtPairChecker
from repro.soir.validate import validate_path


def fuzz_schema() -> Schema:
    schema = Schema()
    schema.add_model(make_model("Box", {"size": INT, "tag": STRING},
                                unique=("tag",)))
    schema.add_model(make_model("Slot", {"cap": INT}))
    schema.add_relation(RelationSchema(
        "Box.slot", source="Box", target="Slot", kind="fk",
        on_delete="cascade", nullable=True, reverse_name="boxes",
    ))
    schema.validate()
    return schema


SCHEMA = fuzz_schema()
BOX_FIELDS = (("size", INT), ("tag", STRING))


def deref_box(pk_expr):
    return E.Deref(pk_expr, "Box")


def template_insert(index: int):
    pk = Argument(f"fresh{index}", INT, source="fresh", unique_id=True)
    tag = Argument(f"tag{index}", STRING)
    make = E.MakeObj("Box", (
        ("id", E.Var(pk.name, INT)),
        ("size", E.intlit(index)),
        ("tag", E.Var(tag.name, STRING)),
    ))
    commands = (
        C.Guard(E.Not(E.Exists("Box", E.Var(pk.name, INT)))),
        C.Guard(E.IsEmpty(E.Filter(E.All("Box"), (), "tag", Comparator.EQ,
                                   E.Var(tag.name, STRING)))),
        C.Update(E.Singleton(make)),
    )
    return (pk, tag), commands


def template_bump(index: int):
    pk = Argument(f"pk{index}", INT, source="url")
    obj = deref_box(E.Var(pk.name, INT))
    commands = (
        C.Guard(E.Exists("Box", E.Var(pk.name, INT))),
        C.Update(E.Singleton(E.SetField(
            "size", E.BinOp("+", E.FieldGet(obj, "size", INT), E.intlit(1)),
            obj,
        ))),
    )
    return (pk,), commands


def template_guarded_withdraw(index: int):
    pk = Argument(f"pk{index}", INT, source="url")
    amount = Argument(f"amt{index}", INT)
    obj = deref_box(E.Var(pk.name, INT))
    new_size = E.BinOp("-", E.FieldGet(obj, "size", INT),
                       E.Var(amount.name, INT))
    commands = (
        C.Guard(E.Exists("Box", E.Var(pk.name, INT))),
        C.Guard(E.Cmp(Comparator.GE, new_size, E.intlit(0))),
        C.Update(E.Singleton(E.SetField("size", new_size, obj))),
    )
    return (pk, amount), commands


def template_delete(index: int):
    pk = Argument(f"pk{index}", INT, source="url")
    commands = (
        C.Delete(E.Filter(E.All("Box"), (), "id", Comparator.EQ,
                          E.Var(pk.name, INT))),
    )
    return (pk,), commands


def template_set_tag(index: int):
    pk = Argument(f"pk{index}", INT, source="url")
    tag = Argument(f"tag{index}", STRING)
    commands = (
        C.Guard(E.Exists("Box", E.Var(pk.name, INT))),
        C.Update(E.MapSet(
            E.Filter(E.All("Box"), (), "id", Comparator.EQ,
                     E.Var(pk.name, INT)),
            "tag", E.Var(tag.name, STRING),
        )),
    )
    return (pk, tag), commands


TEMPLATES = [
    template_insert,
    template_bump,
    template_guarded_withdraw,
    template_delete,
    template_set_tag,
]


def build_path(name: str, picks: list[int]) -> CodePath:
    args: list[Argument] = []
    commands: list[C.Command] = []
    for position, pick in enumerate(picks):
        new_args, new_commands = TEMPLATES[pick](position)
        args.extend(new_args)
        commands.extend(new_commands)
    path = CodePath(name, tuple(args), tuple(commands))
    validate_path(path, SCHEMA)
    return path


CFG = CheckConfig(timeout_s=6.0)


@pytest.mark.slow
@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(0, len(TEMPLATES) - 1), min_size=1, max_size=2),
    st.lists(st.integers(0, len(TEMPLATES) - 1), min_size=1, max_size=2),
)
def test_engines_agree_on_random_pairs(picks_p, picks_q):
    p = build_path("P", picks_p)
    q = build_path("Q", picks_q)
    enum_checker = PairChecker(p, q, SCHEMA, CFG)
    smt_checker = SmtPairChecker(p, q, SCHEMA, CFG)
    for kind in ("commutativity", "semantic"):
        enum_result = getattr(enum_checker, f"check_{kind}")()
        smt_result = getattr(smt_checker, f"check_{kind}")()
        if Outcome.TIMEOUT in (enum_result.outcome, smt_result.outcome):
            continue  # budget artefacts are not disagreements
        assert enum_result.outcome == smt_result.outcome, (
            kind, picks_p, picks_q,
            enum_result.witness, smt_result.witness,
        )


# Historical enum/smt disagreements used to be pinned here as
# test_regression_pairs_agree; they now live in the shared corpus format
# (tests/corpus/fuzz-double-withdraw-env-cap.json and
# tests/corpus/fuzz-merge-unique-tag.json) and are replayed by
# tests/test_corpus.py alongside every mismatch the differential tester
# ever pins.


@pytest.mark.parametrize("pick", range(len(TEMPLATES)))
def test_each_template_self_pair_has_definite_verdict(pick):
    p = build_path("P", [pick])
    q = build_path("Q", [pick])
    checker = PairChecker(p, q, SCHEMA, CFG)
    assert checker.check_commutativity().outcome in (Outcome.PASS, Outcome.FAIL)
    assert checker.check_semantic().outcome in (Outcome.PASS, Outcome.FAIL)
