"""Tests for the symbolic analyzer (path discovery + SOIR translation)."""

import pytest

from repro.analyzer import analyze_application, PathFinder
from repro.analyzer.pathfinder import LoopLimitExceeded
from repro.orm import (
    CASCADE,
    DateTimeField,
    ForeignKey,
    IntegerField,
    Model,
    PositiveIntegerField,
    Registry,
    SET_NULL,
    TextField,
)
from repro.soir import commands as C, expr as E, pp_command, pp_path
from repro.web import Application, HttpResponse, path
from repro.web.views import ModelViewSet


@pytest.fixture(scope="module")
def blog():
    reg = Registry("blog-analyzer")
    with reg.use():
        class User(Model):
            name = TextField(primary_key=True)

        class Article(Model):
            url = TextField(unique=True)
            author = ForeignKey(User, on_delete=SET_NULL, null=True)
            title = TextField(default="")
            follows = PositiveIntegerField(default=0)
            created = DateTimeField(auto_now_add=True)

        class Follow(Model):
            user = ForeignKey(User, on_delete=CASCADE)
            article = ForeignKey(Article, on_delete=CASCADE)

            class Meta:
                unique_together = ("user_key", "article_key")

            user_key = TextField(default="")
            article_key = TextField(default="")

    def batch_update(request, username):
        user = User.objects.get(name=username)
        articles = Article.objects.filter(author=user)
        if request.POST["action"] == "delete":
            articles.delete()
        elif request.POST["action"] == "transfer":
            to_user = User.objects.get(name=request.POST["to_user"])
            articles.update(author=to_user)
        else:
            raise RuntimeError()

    def create_article(request):
        author = User.objects.get(name=request.POST["author"])
        Article.objects.create(url=request.POST["url"], author=author)
        return HttpResponse(status=201)

    def follow_article(request, pk):
        article = Article.objects.get(pk=pk)
        user = User.objects.get(name=request.POST["user"])
        Follow.objects.create(
            user=user,
            article=article,
            user_key=request.POST["user"],
            article_key=request.POST["url"],
        )
        article.follows = article.follows + 1
        article.save()
        return HttpResponse(status=201)

    def read_only(request):
        return HttpResponse(Article.objects.count())

    def iterate_badly(request):
        total = 0
        for article in Article.objects.all():
            total += 1
        return HttpResponse(total)

    def optional_param(request):
        if "tag" in request.POST:
            Article.objects.filter(title=request.POST["tag"]).delete()
        return HttpResponse()

    class ArticleViewSet(ModelViewSet):
        model = Article
        fields = ("title",)

    patterns = [
        path("batch_update/<username>", batch_update, name="batch_update"),
        path("articles/new", create_article, name="create_article"),
        path("articles/<int:pk>/follow", follow_article, name="follow_article"),
        path("stats", read_only, name="read_only"),
        path("bad", iterate_badly, name="iterate_badly"),
        path("optional", optional_param, name="optional_param"),
        *ArticleViewSet.urls(),
    ]
    app = Application("blog", reg, patterns)
    return analyze_application(app)


def by_view(result, view_name):
    return [p for p in result.paths if p.view == view_name]


class TestPathDiscovery:
    def test_batch_update_paths(self, blog):
        paths = by_view(blog, "batch_update")
        assert len(paths) == 5
        ok = [p for p in paths if not p.aborted and not p.conservative]
        assert len(ok) == 2  # BU_delete and BU_transfer

    def test_batch_update_delete_path(self, blog):
        delete = by_view(blog, "batch_update")[0]
        text = pp_path(delete)
        assert "guard(exists<User>(arg_url_username))" in text
        assert "guard((arg_POST_action == 'delete'))" in text
        assert "delete(filter(Article.author+" in text

    def test_batch_update_transfer_path(self, blog):
        transfer = by_view(blog, "batch_update")[1]
        text = pp_path(transfer)
        assert "rlink<Article.author>" in text
        assert "guard(not((arg_POST_action == 'delete')))" in text
        assert "guard(exists<User>(arg_POST_to_user))" in text

    def test_arguments_discovered_not_declared(self, blog):
        transfer = by_view(blog, "batch_update")[1]
        names = {a.name for a in transfer.args}
        assert names == {"arg_url_username", "arg_POST_action", "arg_POST_to_user"}
        # The delete path never touches to_user.
        delete = by_view(blog, "batch_update")[0]
        assert "arg_POST_to_user" not in {a.name for a in delete.args}

    def test_aborted_paths_recorded_not_effectful(self, blog):
        paths = by_view(blog, "batch_update")
        aborted = [p for p in paths if p.aborted]
        assert len(aborted) == 3
        assert all(not p.is_effectful() for p in aborted)
        reasons = {p.abort_reason.split(":")[0] for p in aborted}
        assert "RuntimeError" in reasons
        assert "DoesNotExist" in reasons

    def test_read_only_view_not_effectful(self, blog):
        paths = by_view(blog, "read_only")
        assert len(paths) == 1
        assert not paths[0].is_effectful()

    def test_branch_trace_provenance(self, blog):
        delete = by_view(blog, "batch_update")[0]
        assert delete.branch_trace
        assert delete.branch_trace[-1][1] is True  # 'delete' branch taken


class TestInsertTranslation:
    def test_create_emits_fresh_unique_id(self, blog):
        created = [
            p for p in by_view(blog, "create_article") if p.is_effectful()
        ][0]
        fresh = [a for a in created.args if a.unique_id]
        assert len(fresh) == 1
        assert fresh[0].name.startswith("new_Article_id")

    def test_create_emits_nonexistence_and_unique_guards(self, blog):
        created = [
            p for p in by_view(blog, "create_article") if p.is_effectful()
        ][0]
        text = pp_path(created)
        assert "guard(not(exists<Article>(new_Article_id" in text
        # unique url field:
        assert "guard(empty(filter(url == arg_POST_url, all<Article>)))" in text
        assert "update(singleton(new<Article>(" in text
        assert "link<Article.author>" in text

    def test_callable_default_becomes_argument(self, blog):
        created = [
            p for p in by_view(blog, "create_article") if p.is_effectful()
        ][0]
        defaults = [a for a in created.args if a.name.startswith("default_Article_created")]
        assert len(defaults) == 1
        assert not defaults[0].unique_id

    def test_constant_default_is_literal(self, blog):
        created = [
            p for p in by_view(blog, "create_article") if p.is_effectful()
        ][0]
        text = pp_path(created)
        assert "follows=0" in text

    def test_unique_together_guard(self, blog):
        follow = [
            p for p in by_view(blog, "follow_article") if p.is_effectful()
        ][0]
        text = pp_path(follow)
        assert (
            "guard(empty(filter(article_key == arg_POST_url, "
            "filter(user_key == arg_POST_user, all<Follow>))))" in text
        )

    def test_counter_increment(self, blog):
        follow = [
            p for p in by_view(blog, "follow_article") if p.is_effectful()
        ][0]
        text = pp_path(follow)
        assert "setf(follows, (deref<Article>(arg_url_pk).follows + 1)" in text


class TestFallbacks:
    def test_iteration_is_conservative(self, blog):
        paths = by_view(blog, "iterate_badly")
        assert len(paths) == 1
        assert paths[0].conservative
        assert paths[0].is_effectful()  # conservatively assumed effectful
        assert "iteration" in paths[0].abort_reason

    def test_optional_param_presence_branch(self, blog):
        paths = by_view(blog, "optional_param")
        assert len(paths) == 2
        with_tag = [p for p in paths if any(a.name == "arg_POST_tag" for a in p.args)]
        assert len(with_tag) == 1
        assert "has_POST_tag" in {a.name for a in paths[0].args}

    def test_viewset_closures_analyzed(self, blog):
        # The runtime-constructed viewset views are analyzable endpoints.
        destroy = by_view(blog, "article-delete")
        assert destroy
        effectful = [p for p in destroy if p.is_effectful()]
        assert len(effectful) == 1
        assert "delete(singleton(deref<Article>(arg_url_pk)))" in pp_path(effectful[0])


class TestPathFinder:
    def test_single_run_no_decisions(self):
        pf = PathFinder()
        pf.begin_run()
        assert not pf.advance()

    def test_dfs_enumeration(self):
        """Two independent conditions -> four paths, DFS order."""
        pf = PathFinder()
        seen = []
        while True:
            pf.begin_run()
            a = pf.decide("a")
            b = pf.decide("b")
            seen.append((a, b))
            if not pf.advance():
                break
        assert seen == [(True, True), (True, False), (False, True), (False, False)]

    def test_dependent_branches_pruned(self):
        """A condition only consulted on one side is dropped with it."""
        pf = PathFinder()
        seen = []
        while True:
            pf.begin_run()
            if pf.decide("a"):
                seen.append(("a", pf.decide("b")))
            else:
                seen.append(("!a", None))
            if not pf.advance():
                break
        assert seen == [("a", True), ("a", False), ("!a", None)]

    def test_consistent_within_run(self):
        pf = PathFinder()
        pf.begin_run()
        assert pf.decide("x") == pf.decide("x")

    def test_loop_limit(self):
        pf = PathFinder(loop_limit=3)
        pf.begin_run()
        with pytest.raises(LoopLimitExceeded):
            for _ in range(10):
                pf.decide("cond")

    def test_trace(self):
        pf = PathFinder()
        pf.begin_run()
        pf.decide("a")
        pf.decide("b")
        pf.advance()
        pf.begin_run()
        pf.decide("a")
        pf.decide("b")
        assert pf.trace() == (("a", True), ("b", False))


class TestStats:
    def test_result_stats_shape(self, blog):
        stats = blog.stats()
        assert stats["app"] == "blog"
        assert stats["models"] == 3
        assert stats["relations"] == 3
        assert stats["code_paths"] == len(blog.paths)
        assert stats["effectful_paths"] == len(blog.effectful_paths)
        assert stats["analysis_time_s"] > 0
