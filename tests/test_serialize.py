"""Round-trip tests for SOIR JSON serialization, over every bundled app."""

import json

import pytest

from repro.analyzer import analyze_application
from repro.apps.courseware import build_app as build_courseware
from repro.apps.ownphotos import build_app as build_ownphotos
from repro.apps.postgraduation import build_app as build_postgraduation
from repro.apps.smallbank import build_app as build_smallbank
from repro.apps.todo import build_app as build_todo
from repro.apps.zhihu import build_app as build_zhihu
from repro.soir import expr as E, pp_path
from repro.soir.serialize import (
    SerializationError,
    dumps,
    expr_from_obj,
    expr_to_obj,
    loads,
    type_from_obj,
    type_to_obj,
)
from repro.soir.types import (
    INT,
    STRING,
    Comparator,
    DRelation,
    ListType,
    ObjType,
    Order,
    SetType,
)
from repro.verifier import CheckConfig, verify_application

BUILDERS = [
    build_todo,
    build_postgraduation,
    build_zhihu,
    build_ownphotos,
    build_smallbank,
    build_courseware,
]


class TestTypeRoundTrip:
    @pytest.mark.parametrize("t", [
        INT, STRING, ObjType("User"), SetType("Article"), ListType(INT),
        ListType(ListType(STRING)),
    ])
    def test_roundtrip(self, t):
        assert type_from_obj(type_to_obj(t)) == t

    def test_bad_scalar(self):
        with pytest.raises(SerializationError):
            type_from_obj("Quaternion")


class TestExprRoundTrip:
    def test_nested_expr(self):
        e = E.Filter(
            E.OrderBy(E.All("Article"), "created", Order.DESC),
            (DRelation("Article.author"),),
            "name",
            Comparator.EQ,
            E.BinOp("concat", E.strlit("j"), E.Var("x", STRING)),
        )
        assert expr_from_obj(expr_to_obj(e)) == e

    def test_tuple_literal(self):
        e = E.Lit((1, 2, 3), ListType(INT))
        obj = json.loads(json.dumps(expr_to_obj(e)))
        assert expr_from_obj(obj) == e


@pytest.mark.parametrize("builder", BUILDERS)
def test_full_analysis_roundtrip(builder):
    """Every path of every application serializes and round-trips."""
    result = analyze_application(builder())
    text = dumps(result)
    restored = loads(text)
    assert restored.app_name == result.app_name
    assert len(restored.paths) == len(result.paths)
    for original, loaded in zip(result.paths, restored.paths):
        assert loaded == original
        assert pp_path(loaded) == pp_path(original)
    assert set(restored.schema.models) == set(result.schema.models)
    assert set(restored.schema.relations) == set(result.schema.relations)


def test_verification_on_deserialized_result():
    """Analysis and verification genuinely decouple across serialization."""
    result = analyze_application(build_smallbank())
    restored = loads(dumps(result))
    report = verify_application(restored, CheckConfig())
    assert len(report.semantic_failures) == 4
    assert len(report.commutativity_failures) == 0
