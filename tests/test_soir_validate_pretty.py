"""Tests for SOIR validation and pretty-printing."""

import pytest

from repro.soir import (
    Argument,
    CodePath,
    commands as C,
    expr as E,
    pp_command,
    pp_expr,
    pp_path,
    validate_path,
    ValidationError,
)
from repro.soir.types import (
    INT,
    STRING,
    Aggregation,
    Comparator,
    Direction,
    DRelation,
    ObjType,
    Order,
    RefType,
)

from helpers import blog_schema

AUTHOR = DRelation("Article.author", Direction.FORWARD)


@pytest.fixture()
def schema():
    return blog_schema()


def path_of(*cmds, args=()):
    return CodePath("p", tuple(args), tuple(cmds))


class TestValidate:
    def test_valid_path_passes(self, schema):
        arg = Argument("username", STRING, source="url")
        p = path_of(
            C.Guard(E.Exists("User", E.Var("username", STRING))),
            C.Delete(
                E.Filter(E.All("Article"), (AUTHOR,), "name", Comparator.EQ,
                         E.Var("username", STRING))
            ),
            args=[arg],
        )
        validate_path(p, schema)  # no raise

    def test_undeclared_variable(self, schema):
        p = path_of(C.Guard(E.Exists("User", E.Var("nope", STRING))))
        with pytest.raises(ValidationError, match="undeclared"):
            validate_path(p, schema)

    def test_variable_type_mismatch(self, schema):
        arg = Argument("x", INT)
        p = path_of(C.Guard(E.Exists("User", E.Var("x", STRING))), args=[arg])
        with pytest.raises(ValidationError, match="used at type"):
            validate_path(p, schema)

    def test_unknown_model(self, schema):
        p = path_of(C.Delete(E.All("Ghost")))
        with pytest.raises(ValidationError, match="unknown model"):
            validate_path(p, schema)

    def test_unknown_field_in_filter(self, schema):
        p = path_of(
            C.Delete(E.Filter(E.All("Article"), (), "nope", Comparator.EQ, E.intlit(1)))
        )
        with pytest.raises(ValidationError, match="no field"):
            validate_path(p, schema)

    def test_bad_relation_chain(self, schema):
        # Article.author goes Article -> User; starting from User is wrong.
        p = path_of(
            C.Delete(E.Filter(E.All("User"), (AUTHOR,), "name", Comparator.EQ,
                              E.strlit("x")))
        )
        with pytest.raises(ValidationError, match="hop"):
            validate_path(p, schema)

    def test_follow_wrong_annotation(self, schema):
        p = path_of(C.Delete(E.Follow(E.All("Article"), (AUTHOR,), "Comment")))
        with pytest.raises(ValidationError, match="ends at"):
            validate_path(p, schema)

    def test_makeobj_missing_field(self, schema):
        mo = E.MakeObj("User", ())
        p = path_of(C.Update(E.Singleton(mo)))
        with pytest.raises(ValidationError, match="missing fields"):
            validate_path(p, schema)

    def test_makeobj_unknown_field(self, schema):
        mo = E.MakeObj("User", (("name", E.strlit("a")), ("age", E.intlit(1))))
        p = path_of(C.Update(E.Singleton(mo)))
        with pytest.raises(ValidationError, match="unknown fields"):
            validate_path(p, schema)

    def test_guard_must_be_bool(self, schema):
        p = path_of(C.Guard(E.intlit(1)))
        with pytest.raises(ValidationError, match="guard condition"):
            validate_path(p, schema)

    def test_link_model_mismatch(self, schema):
        art = E.Deref(E.intlit(1), "Article")
        p = path_of(C.Link("Article.author", art, art))
        with pytest.raises(ValidationError, match="link target"):
            validate_path(p, schema)

    def test_unknown_relation(self, schema):
        art = E.Deref(E.intlit(1), "Article")
        usr = E.Deref(E.strlit("j"), "User")
        p = path_of(C.Link("nope", art, usr))
        with pytest.raises(ValidationError, match="unknown relation"):
            validate_path(p, schema)

    def test_clearlinks_end_check(self, schema):
        usr = E.Deref(E.strlit("j"), "User")
        p = path_of(C.ClearLinks("Article.author", usr, "source"))
        with pytest.raises(ValidationError, match="clearlinks"):
            validate_path(p, schema)
        # Correct end validates.
        validate_path(path_of(C.ClearLinks("Article.author", usr, "target")), schema)


class TestPretty:
    def test_expr_forms(self):
        assert pp_expr(E.strlit("x")) == "'x'"
        assert pp_expr(E.NoneLit(INT)) == "none:Int"
        assert pp_expr(E.Not(E.true())) == "not(True)"
        assert pp_expr(E.All("User")) == "all<User>"
        assert pp_expr(E.Deref(E.strlit("j"), "User")) == "deref<User>('j')"
        flt = E.Filter(E.All("Article"), (AUTHOR,), "name", Comparator.EQ, E.strlit("j"))
        assert pp_expr(flt) == "filter(Article.author+.name == 'j', all<Article>)"
        ob = E.OrderBy(E.All("Article"), "created", Order.DESC)
        assert pp_expr(ob) == "orderby(created, desc, all<Article>)"
        agg = E.Aggregate(E.All("Article"), Aggregation.CNT, "id", INT)
        assert pp_expr(agg) == "aggregate(cnt, id, all<Article>)"

    def test_command_forms(self):
        assert pp_command(C.Guard(E.true())) == "guard(True)"
        assert pp_command(C.Delete(E.All("User"))) == "delete(all<User>)"
        art = E.Deref(E.intlit(1), "Article")
        usr = E.Deref(E.strlit("j"), "User")
        assert (
            pp_command(C.Link("Article.author", art, usr))
            == "link<Article.author>(deref<Article>(1), deref<User>('j'))"
        )

    def test_path_form(self):
        p = CodePath(
            "op",
            (Argument("n", STRING, unique_id=True),),
            (C.Guard(E.Exists("User", E.Var("n", STRING))),),
        )
        text = pp_path(p)
        assert "path op:" in text
        assert "args(n: String!)" in text
        assert "guard(exists<User>(n));" in text
