"""Tests for the unified metrics layer: the registry (counters, gauges,
fixed-bucket histograms), contextvar scoping, the no-metrics-no-cost
contract, the exposition formats (JSON round-trip, Prometheus text
format, snapshot diff), and the end-to-end instrumentation of the
engine, the solver backends and the georep runtime."""

from __future__ import annotations

import contextvars
import threading
import time

import pytest

from repro import metrics as mx
from repro.analyzer import analyze_application
from repro.metrics.registry import FAMILIES, HISTOGRAM, Histogram
from repro.verifier import CheckConfig, verify_application

#: deterministic budget: decided by sample exhaustion, never by the clock
CFG = CheckConfig(timeout_s=60.0, max_samples=60, max_exhaustive=800)


@pytest.fixture(scope="module")
def courseware_analysis():
    from repro.apps.courseware import build_app

    return analyze_application(build_app())


# ---------------------------------------------------------------------------
# Registry core
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_basics(self):
        reg = mx.MetricsRegistry()
        reg.inc("noctua_engine_cache_hits_total")
        reg.inc("noctua_engine_cache_hits_total", 2)
        assert reg.value("noctua_engine_cache_hits_total") == 3

    def test_labeled_series_are_independent(self):
        reg = mx.MetricsRegistry()
        reg.inc("noctua_engine_pairs_total", route="solved")
        reg.inc("noctua_engine_pairs_total", 4, route="cached")
        assert reg.value("noctua_engine_pairs_total", route="solved") == 1
        assert reg.value("noctua_engine_pairs_total", route="cached") == 4
        assert reg.total("noctua_engine_pairs_total") == 5
        assert reg.value("noctua_engine_pairs_total", route="unknown") == 0

    def test_unknown_family_raises(self):
        reg = mx.MetricsRegistry()
        with pytest.raises(KeyError):
            reg.inc("noctua_engine_cache_hitz_total")

    def test_kind_mismatch_raises(self):
        reg = mx.MetricsRegistry()
        with pytest.raises(TypeError):
            reg.inc("noctua_solver_call_seconds")
        with pytest.raises(TypeError):
            reg.observe("noctua_engine_cache_hits_total", 1.0)

    def test_histogram_buckets(self):
        hist = Histogram((1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 3.0, 10.0):
            hist.observe(value)
        # edges are inclusive upper bounds; last slot is +Inf
        assert hist.counts == [2, 1, 1, 1]
        assert hist.cumulative() == [2, 3, 4, 5]
        assert hist.count == 5
        assert hist.sum == pytest.approx(16.0)

    def test_every_histogram_family_has_increasing_edges(self):
        for spec in FAMILIES.values():
            if spec.kind == HISTOGRAM:
                edges = list(spec.buckets)
                assert edges == sorted(set(edges)), spec.name


class TestBucketDeterminism:
    def test_same_observations_same_snapshot(self):
        """Bucket edges come from the family declaration, never from the
        data — two registries fed identical observations are identical,
        which is what makes histograms comparable across runs."""
        snaps = []
        for _ in range(2):
            reg = mx.MetricsRegistry()
            for value in (0.0001, 0.003, 0.003, 0.2, 7.0, 100.0):
                reg.observe("noctua_solver_call_seconds", value,
                            backend="enum")
            snaps.append(reg.snapshot())
        assert snaps[0] == snaps[1]
        (fam,) = snaps[0]["families"]
        assert tuple(fam["buckets"]) == mx.SECONDS_BUCKETS

    def test_observation_order_does_not_change_counts(self):
        values = [0.01, 5.0, 0.3, 0.0007, 0.3]
        a, b = mx.MetricsRegistry(), mx.MetricsRegistry()
        for v in values:
            a.observe("noctua_solver_call_seconds", v, backend="enum")
        for v in reversed(values):
            b.observe("noctua_solver_call_seconds", v, backend="enum")
        ha = a.histogram("noctua_solver_call_seconds", backend="enum")
        hb = b.histogram("noctua_solver_call_seconds", backend="enum")
        assert ha.counts == hb.counts
        assert ha.count == hb.count


# ---------------------------------------------------------------------------
# Contextvar scoping and the disabled-mode contract
# ---------------------------------------------------------------------------


class TestScoping:
    def test_disabled_by_default(self):
        assert mx.current() is None
        assert not mx.enabled()
        # module-level helpers are silent no-ops with no registry active
        mx.inc("noctua_engine_cache_hits_total")
        mx.observe("noctua_solver_call_seconds", 1.0, backend="enum")
        mx.set_gauge("noctua_engine_cache_hits_total", 1.0)

    def test_activate_scopes_and_restores(self):
        reg = mx.MetricsRegistry()
        with mx.activate(reg):
            assert mx.current() is reg
            mx.inc("noctua_engine_cache_hits_total")
        assert mx.current() is None
        assert reg.value("noctua_engine_cache_hits_total") == 1

    def test_context_isolation(self):
        """Two contexts metering concurrently never see each other's
        registry — the property that lets concurrent sweeps meter
        independently."""
        regs = [mx.MetricsRegistry(), mx.MetricsRegistry()]

        def meter(reg: mx.MetricsRegistry, n: int) -> None:
            with mx.activate(reg):
                for _ in range(n):
                    assert mx.current() is reg
                    mx.inc("noctua_engine_cache_hits_total")

        ctx_a = contextvars.copy_context()
        ctx_b = contextvars.copy_context()
        ctx_a.run(meter, regs[0], 7)
        ctx_b.run(meter, regs[1], 3)
        assert regs[0].value("noctua_engine_cache_hits_total") == 7
        assert regs[1].value("noctua_engine_cache_hits_total") == 3

    def test_thread_isolation(self):
        regs = [mx.MetricsRegistry() for _ in range(4)]

        def meter(reg: mx.MetricsRegistry, n: int) -> None:
            with mx.activate(reg):
                for _ in range(n):
                    mx.inc("noctua_engine_cache_hits_total")

        threads = [
            threading.Thread(target=meter, args=(reg, 10 * (i + 1)))
            for i, reg in enumerate(regs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert [
            reg.value("noctua_engine_cache_hits_total") for reg in regs
        ] == [10, 20, 30, 40]

    def test_disabled_mode_overhead(self):
        """With no registry active each helper call is one contextvar
        read — the budget here is deliberately generous (5 µs/call) so
        the assertion survives loaded CI machines while still catching
        an accidental always-on slow path."""
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            mx.inc("noctua_engine_cache_hits_total")
        elapsed = time.perf_counter() - start
        assert elapsed < n * 5e-6, f"{elapsed / n * 1e9:.0f} ns/call"


# ---------------------------------------------------------------------------
# Exposition: JSON round-trip, Prometheus text format, diff
# ---------------------------------------------------------------------------


def _sample_registry() -> mx.MetricsRegistry:
    reg = mx.MetricsRegistry()
    reg.inc("noctua_engine_cache_hits_total", 3)
    reg.inc("noctua_engine_pairs_total", 2, route="solved")
    reg.inc("noctua_engine_pairs_total", route="pruned:disjoint")
    for value in (0.002, 0.03, 0.03, 1.7):
        reg.observe("noctua_solver_call_seconds", value, backend="enum")
    reg.observe("noctua_solver_call_seconds", 0.2, backend="smt")
    return reg


class TestExposition:
    def test_json_round_trip(self):
        snap = _sample_registry().snapshot()
        text = mx.snapshot_to_json(snap)
        assert mx.snapshot_from_json(text) == snap

    def test_snapshot_rejects_garbage(self):
        with pytest.raises(ValueError):
            mx.snapshot_from_json("{}")
        with pytest.raises(ValueError):
            mx.snapshot_from_json('{"version": 1, "families": 3}')

    def test_prometheus_round_trip(self):
        snap = _sample_registry().snapshot()
        families = mx.parse_prometheus(mx.snapshot_to_prometheus(snap))
        assert set(families) == {fam["name"] for fam in snap["families"]}
        pairs = families["noctua_engine_pairs_total"]
        assert pairs["kind"] == "counter"
        assert (
            "noctua_engine_pairs_total", {"route": "solved"}, 2.0
        ) in pairs["samples"]

    def test_prometheus_histogram_is_cumulative_and_inf_terminated(self):
        snap = _sample_registry().snapshot()
        text = mx.snapshot_to_prometheus(snap)
        families = mx.parse_prometheus(text)  # the parser enforces both
        hist = families["noctua_solver_call_seconds"]
        enum_buckets = [
            (labels["le"], value)
            for name, labels, value in hist["samples"]
            if name.endswith("_bucket") and labels.get("backend") == "enum"
        ]
        assert enum_buckets[-1] == ("+Inf", 4.0)
        counts = [v for _, v in enum_buckets]
        assert counts == sorted(counts)

    def test_prometheus_parser_rejects_malformed(self):
        with pytest.raises(ValueError):
            mx.parse_prometheus("loose_sample 1\n")  # no TYPE block
        broken = (
            "# TYPE bad histogram\n"
            'bad_bucket{le="1"} 5\n'
            'bad_bucket{le="+Inf"} 3\n'  # not cumulative
            "bad_sum 1.0\nbad_count 3\n"
        )
        with pytest.raises(ValueError):
            mx.parse_prometheus(broken)

    def test_diff_snapshots(self):
        before = _sample_registry().snapshot()
        reg = _sample_registry()
        reg.inc("noctua_engine_cache_hits_total", 2)
        reg.observe("noctua_solver_call_seconds", 0.5, backend="enum")
        after = reg.snapshot()
        rows = mx.diff_snapshots(before, after)
        by_key = {(r["name"], tuple(sorted(r["labels"].items()))): r
                  for r in rows}
        hits = by_key[("noctua_engine_cache_hits_total", ())]
        assert (hits["before"], hits["after"], hits["delta"]) == (3, 5, 2)
        enum = by_key[(
            "noctua_solver_call_seconds", (("backend", "enum"),)
        )]
        assert enum["delta"] == 1  # one more observation
        assert enum["sum_delta"] == pytest.approx(0.5)
        # identical snapshots diff to nothing
        assert mx.diff_snapshots(after, after) == []
        assert mx.render_diff([]) == ["(no differences)"]

    def test_render_table_mentions_every_family(self):
        snap = _sample_registry().snapshot()
        text = "\n".join(mx.render_table(snap))
        for fam in snap["families"]:
            assert fam["name"] in text


# ---------------------------------------------------------------------------
# End-to-end instrumentation
# ---------------------------------------------------------------------------


class TestEngineInstrumentation:
    def test_sweep_populates_registry(self, courseware_analysis):
        reg = mx.MetricsRegistry()
        with mx.activate(reg):
            report = verify_application(courseware_analysis, CFG,
                                        use_cache=False)
        m = report.metrics
        pairs = "noctua_engine_pairs_total"
        # the ambient registry and the report metrics are projections of
        # the same fold — they must agree exactly
        assert reg.value(pairs, route="solved") == m["solver_calls"]
        assert reg.total(pairs) == m["pairs_total"]
        assert reg.value(pairs, route="pruned:disjoint") == \
            m["pruned_disjoint"]
        assert reg.value("noctua_engine_sweeps_total", mode="serial") == 1
        hist = reg.histogram("noctua_engine_pair_solve_seconds",
                             backend="enum")
        assert hist is not None and hist.count == m["solver_calls"]
        assert hist.sum == pytest.approx(m["solve_cpu_s"])
        # serial sweep: enum checks run in-process, so the backend
        # latency histogram fills too (two checks per solved pair)
        calls = reg.histogram("noctua_solver_call_seconds", backend="enum")
        assert calls is not None and calls.count == 2 * m["solver_calls"]

    def test_cache_hits_and_misses_are_counted(self, courseware_analysis,
                                               tmp_path):
        reg = mx.MetricsRegistry()
        with mx.activate(reg):
            verify_application(courseware_analysis, CFG, use_cache=True,
                               cache_dir=str(tmp_path))
            verify_application(courseware_analysis, CFG, use_cache=True,
                               cache_dir=str(tmp_path))
        hits = reg.value("noctua_engine_cache_hits_total")
        misses = reg.value("noctua_engine_cache_misses_total")
        shared = reg.value("noctua_engine_class_shared_total")
        assert misses > 0  # cold sweep
        # the warm sweep replays every solved pair plus the class
        # members the cold sweep fanned out into the cache
        assert hits == misses + shared

    def test_unmetered_sweep_is_unchanged(self, courseware_analysis):
        """No registry active: the sweep neither fails nor meters."""
        report = verify_application(courseware_analysis, CFG,
                                    use_cache=False)
        assert report.metrics["solver_calls"] > 0


class TestGeorepInstrumentation:
    def test_fault_counters_still_behave_like_attributes(self):
        from repro.georep import FaultCounters

        counters = FaultCounters()
        assert counters.dropped == 0
        counters.dropped += 1
        counters.partition_ms += 2.5
        counters.redelivered = 7
        assert counters.dropped == 1
        assert counters.partition_ms == pytest.approx(2.5)
        assert counters.as_dict()["redelivered"] == 7
        with pytest.raises(AttributeError):
            counters.not_a_counter = 1
        other = FaultCounters(dropped=1, partition_ms=2.5, redelivered=7)
        assert counters.as_dict() == other.as_dict()
        assert counters == other

    def test_fault_counters_forward_to_ambient_registry(self):
        from repro.georep import FaultCounters

        reg = mx.MetricsRegistry()
        with mx.activate(reg):
            counters = FaultCounters()
            counters.dropped += 2
            counters.crashes += 1
            counters.partition_ms += 10.0
            # metered at their source in replication.py, not forwarded
            counters.redelivered = 5
        fam = "noctua_georep_faults_total"
        assert reg.value(fam, kind="dropped") == 2
        assert reg.value(fam, kind="crashes") == 1
        assert reg.value(fam, kind="redelivered") == 0
        assert reg.value("noctua_georep_partition_ms_total") == 10.0

    def test_chaos_run_fills_georep_families(self):
        from repro.apps.todo import build_app
        from repro.georep import FaultConfig, run_chaos

        analysis = analyze_application(build_app())
        faults = FaultConfig.chaos(2, span=60.0, sites=3, outages=1)
        reg = mx.MetricsRegistry()
        with mx.activate(reg):
            run_chaos(analysis, set(), seed=2, operations=60,
                      faults=faults)
        delivered = reg.series("noctua_georep_delivered_total")
        assert delivered and sum(v for _, v in delivered) > 0
        recovery = reg.histogram("noctua_chaos_recovery_seconds")
        assert recovery is not None and recovery.count == 1
        assert reg.total("noctua_chaos_runs_total") == 1

    def test_chaos_determinism_is_preserved_under_metering(self):
        """Metering must not perturb the seeded fault schedule: the same
        seed produces identical counters with and without a registry."""
        from repro.apps.todo import build_app
        from repro.georep import FaultConfig, run_chaos

        analysis = analyze_application(build_app())

        def run():
            faults = FaultConfig.chaos(5, span=40.0, sites=3)
            return run_chaos(analysis, set(), seed=5, operations=40,
                             faults=faults)

        bare = run()
        with mx.activate(mx.MetricsRegistry()):
            metered = run()
        assert bare.counters.as_dict() == metered.counters.as_dict()
