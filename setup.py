"""Legacy setuptools shim.

Allows `pip install -e .` in offline environments lacking the `wheel`
package (PEP 660 editable installs require it; the legacy develop path
does not).  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
