#!/usr/bin/env python3
"""Validate the exports of ``noctua metrics --out``.

Checks (exits non-zero with a line per failure):

1. the Prometheus text export parses strictly — every sample sits under
   a ``# TYPE`` block, histogram bucket series are cumulative and end at
   ``+Inf``, and ``_count`` matches the ``+Inf`` bucket (the parser is
   :func:`repro.metrics.parse_prometheus`, so the scrape format the
   repo emits is the format this tool accepts);
2. the JSON snapshot contains the metric families a metered smoke suite
   must emit: cache hits and misses, solver-call latency histograms for
   *both* backends (enum and smt), and georep delivery counters;
3. the two exports agree family-by-family (same family set).

Used by ``make metrics-demo`` and the CI metrics-smoke job::

    noctua metrics courseware --quick --jobs 2 \
        --out metrics.json --out metrics.prom
    python tools/check_metrics.py metrics.prom metrics.json

With ``--url`` the same round-trip runs against a *live* ``noctua
serve`` daemon instead of export files: ``GET /metrics`` must carry the
Prometheus exposition content type (``text/plain; version=0.0.4``) and
strictly parse, ``GET /metrics/json`` must be a loadable snapshot, and
the service families a verification cycle emits must be present.  The
two scrapes are separate requests (the daemon keeps counting between
them), so URL mode checks each payload on its own rather than
family-set equality::

    python tools/check_metrics.py --url http://127.0.0.1:8642
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.metrics import load_snapshot, parse_prometheus  # noqa: E402
from repro.service import PROM_CONTENT_TYPE  # noqa: E402

#: families a metered smoke suite must emit, with the label series that
#: must be present (empty tuple = any series will do)
REQUIRED_FAMILIES: dict[str, tuple[dict[str, str], ...]] = {
    "noctua_engine_cache_hits_total": (),
    "noctua_engine_cache_misses_total": (),
    "noctua_engine_pairs_total": ({"route": "solved"},),
    "noctua_solver_call_seconds": (
        {"backend": "enum"}, {"backend": "smt"},
    ),
    "noctua_solver_calls_total": (),
    "noctua_georep_delivered_total": (),
}


#: families a ``noctua serve`` daemon must expose after at least one
#: verification cycle plus the scrape itself
REQUIRED_SERVICE_FAMILIES = (
    "noctua_service_cycles_total",
    "noctua_service_reverifies_total",
    "noctua_service_invalidated_pairs_total",
    "noctua_service_restriction_version",
    "noctua_service_cycle_seconds",
    "noctua_service_http_requests_total",
    "noctua_solver_calls_total",
)


def snapshot_series(snapshot: dict, name: str) -> list[dict[str, str]]:
    for fam in snapshot["families"]:
        if fam["name"] == name:
            return [row["labels"] for row in fam["series"]]
    return []


def check_url(base: str) -> int:
    """Round-trip the metrics endpoints of a live daemon."""
    base = base.rstrip("/")
    problems: list[str] = []
    # Liveness first — it also guarantees the http-requests counter has
    # a sample by the time /metrics snapshots (the daemon meters each
    # request *after* answering it).
    try:
        with urllib.request.urlopen(f"{base}/healthz", timeout=30) as resp:
            if resp.status != 200:
                problems.append(f"{base}/healthz: status {resp.status}")
    except OSError as exc:
        print(f"check_metrics: GET {base}/healthz: {exc}", file=sys.stderr)
        return 1
    try:
        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as resp:
            content_type = resp.headers.get("Content-Type", "")
            text = resp.read().decode("utf-8")
    except OSError as exc:
        print(f"check_metrics: GET {base}/metrics: {exc}", file=sys.stderr)
        return 1
    if content_type != PROM_CONTENT_TYPE:
        problems.append(f"{base}/metrics: Content-Type {content_type!r} "
                        f"!= {PROM_CONTENT_TYPE!r}")
    try:
        families = parse_prometheus(text)
    except ValueError as exc:
        problems.append(f"{base}/metrics: does not parse strictly: {exc}")
        families = {}
    for name in REQUIRED_SERVICE_FAMILIES:
        if families and name not in families:
            problems.append(f"{base}/metrics: family {name} missing "
                            f"(has the daemon run a cycle?)")
    try:
        with urllib.request.urlopen(f"{base}/metrics/json",
                                    timeout=30) as resp:
            snapshot = json.loads(resp.read().decode("utf-8"))
    except (OSError, ValueError) as exc:
        problems.append(f"{base}/metrics/json: {exc}")
        snapshot = None
    if snapshot is not None and not isinstance(
            snapshot.get("families"), list):
        problems.append(f"{base}/metrics/json: no families list")

    for problem in problems:
        print(problem)
    if problems:
        print(f"check_metrics: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    samples = sum(len(fam["samples"]) for fam in families.values())
    print(f"check_metrics: {base}: {len(families)} families, {samples} "
          f"samples, exposition content type and strict parse OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("prom", nargs="?",
                        help="Prometheus text export (.prom)")
    parser.add_argument("json", nargs="?",
                        help="JSON snapshot export (.json)")
    parser.add_argument("--url", metavar="BASE",
                        help="check a live `noctua serve` daemon at BASE "
                             "instead of export files")
    args = parser.parse_args()

    if args.url:
        if args.prom or args.json:
            parser.error("--url replaces the file arguments")
        return check_url(args.url)
    if not (args.prom and args.json):
        parser.error("need PROM and JSON files (or --url BASE)")

    problems: list[str] = []

    try:
        families = parse_prometheus(
            pathlib.Path(args.prom).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"check_metrics: {args.prom}: {exc}", file=sys.stderr)
        return 1
    try:
        snapshot = load_snapshot(args.json)
    except (OSError, ValueError) as exc:
        print(f"check_metrics: {args.json}: {exc}", file=sys.stderr)
        return 1

    for name, required_series in REQUIRED_FAMILIES.items():
        series = snapshot_series(snapshot, name)
        if not series:
            problems.append(f"{args.json}: family {name} missing or empty")
            continue
        for required in required_series:
            if not any(all(labels.get(k) == v for k, v in required.items())
                       for labels in series):
                problems.append(
                    f"{args.json}: family {name} has no series "
                    f"matching {required}")

    snapshot_names = {fam["name"] for fam in snapshot["families"]}
    prom_names = set(families)
    for name in sorted(snapshot_names - prom_names):
        problems.append(f"{args.prom}: family {name} in JSON but not in "
                        f"Prometheus export")
    for name in sorted(prom_names - snapshot_names):
        problems.append(f"{args.json}: family {name} in Prometheus export "
                        f"but not in JSON")

    for problem in problems:
        print(problem)
    if problems:
        print(f"check_metrics: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    samples = sum(len(fam["samples"]) for fam in families.values())
    print(f"check_metrics: {len(families)} families, {samples} samples, "
          f"Prometheus text format parses, required families present")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
