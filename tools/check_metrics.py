#!/usr/bin/env python3
"""Validate the exports of ``noctua metrics --out``.

Checks (exits non-zero with a line per failure):

1. the Prometheus text export parses strictly — every sample sits under
   a ``# TYPE`` block, histogram bucket series are cumulative and end at
   ``+Inf``, and ``_count`` matches the ``+Inf`` bucket (the parser is
   :func:`repro.metrics.parse_prometheus`, so the scrape format the
   repo emits is the format this tool accepts);
2. the JSON snapshot contains the metric families a metered smoke suite
   must emit: cache hits and misses, solver-call latency histograms for
   *both* backends (enum and smt), and georep delivery counters;
3. the two exports agree family-by-family (same family set).

Used by ``make metrics-demo`` and the CI metrics-smoke job::

    noctua metrics courseware --quick --jobs 2 \
        --out metrics.json --out metrics.prom
    python tools/check_metrics.py metrics.prom metrics.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.metrics import load_snapshot, parse_prometheus  # noqa: E402

#: families a metered smoke suite must emit, with the label series that
#: must be present (empty tuple = any series will do)
REQUIRED_FAMILIES: dict[str, tuple[dict[str, str], ...]] = {
    "noctua_engine_cache_hits_total": (),
    "noctua_engine_cache_misses_total": (),
    "noctua_engine_pairs_total": ({"route": "solved"},),
    "noctua_solver_call_seconds": (
        {"backend": "enum"}, {"backend": "smt"},
    ),
    "noctua_solver_calls_total": (),
    "noctua_georep_delivered_total": (),
}


def snapshot_series(snapshot: dict, name: str) -> list[dict[str, str]]:
    for fam in snapshot["families"]:
        if fam["name"] == name:
            return [row["labels"] for row in fam["series"]]
    return []


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("prom", help="Prometheus text export (.prom)")
    parser.add_argument("json", help="JSON snapshot export (.json)")
    args = parser.parse_args()

    problems: list[str] = []

    try:
        families = parse_prometheus(
            pathlib.Path(args.prom).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"check_metrics: {args.prom}: {exc}", file=sys.stderr)
        return 1
    try:
        snapshot = load_snapshot(args.json)
    except (OSError, ValueError) as exc:
        print(f"check_metrics: {args.json}: {exc}", file=sys.stderr)
        return 1

    for name, required_series in REQUIRED_FAMILIES.items():
        series = snapshot_series(snapshot, name)
        if not series:
            problems.append(f"{args.json}: family {name} missing or empty")
            continue
        for required in required_series:
            if not any(all(labels.get(k) == v for k, v in required.items())
                       for labels in series):
                problems.append(
                    f"{args.json}: family {name} has no series "
                    f"matching {required}")

    snapshot_names = {fam["name"] for fam in snapshot["families"]}
    prom_names = set(families)
    for name in sorted(snapshot_names - prom_names):
        problems.append(f"{args.prom}: family {name} in JSON but not in "
                        f"Prometheus export")
    for name in sorted(prom_names - snapshot_names):
        problems.append(f"{args.json}: family {name} in Prometheus export "
                        f"but not in JSON")

    for problem in problems:
        print(problem)
    if problems:
        print(f"check_metrics: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    samples = sum(len(fam["samples"]) for fam in families.values())
    print(f"check_metrics: {len(families)} families, {samples} samples, "
          f"Prometheus text format parses, required families present")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
