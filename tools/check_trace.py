#!/usr/bin/env python3
"""Validate a JSONL trace file produced by ``noctua trace --out``.

Checks (exits non-zero with a line per failure):

1. every line parses as JSON with the required record fields
   (``id``/``parent``/``name``/``kind``/``pid``/``wall_s``/``cpu_s``/
   ``attrs``);
2. every non-null ``parent`` refers to a span id present in the file
   (children are written before their parents, so ids are collected
   first);
3. the trace covers the whole pipeline: all of ``--require``'s span
   kinds appear (default: the analysis and verification phases).

Used by the CI trace-smoke step::

    noctua trace courseware --quick --jobs 2 --out trace.jsonl
    python tools/check_trace.py trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys

REQUIRED_FIELDS = (
    "id", "parent", "name", "kind", "pid", "wall_s", "cpu_s", "attrs",
)
DEFAULT_KINDS = (
    "app-analysis", "soir-lowering", "endpoint", "path-finding",
    "pair-sweep", "pair", "check", "solver-call",
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL trace file")
    parser.add_argument(
        "--require", default=",".join(DEFAULT_KINDS), metavar="KINDS",
        help="comma-separated span kinds that must appear "
             f"(default: {','.join(DEFAULT_KINDS)})")
    args = parser.parse_args()

    problems: list[str] = []
    records: list[tuple[int, dict]] = []
    with open(args.trace, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: not JSON ({exc})")
                continue
            missing = [k for k in REQUIRED_FIELDS if k not in obj]
            if missing:
                problems.append(
                    f"line {lineno}: missing fields {missing}")
                continue
            records.append((lineno, obj))

    ids = {obj["id"] for _, obj in records}
    for lineno, obj in records:
        parent = obj["parent"]
        if parent is not None and parent not in ids:
            problems.append(
                f"line {lineno}: span {obj['id']} has dangling "
                f"parent {parent}")

    kinds = {obj["kind"] for _, obj in records}
    for kind in filter(None, args.require.split(",")):
        if kind not in kinds:
            problems.append(f"required span kind never emitted: {kind}")

    for problem in problems:
        print(problem)
    if problems:
        print(f"check_trace: {len(problems)} problem(s) in {args.trace}",
              file=sys.stderr)
        return 1
    print(f"check_trace: {len(records)} spans, {len(kinds)} kinds, "
          f"all parent links resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
