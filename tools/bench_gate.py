#!/usr/bin/env python3
"""Perf regression gate over the ``BENCH_pair_sweep.json`` trajectory.

``benchmarks/bench_pair_sweep.py`` appends one dated entry per run to
the ``trajectory`` list in the benchmark file.  This gate compares the
*latest* entry against the most recent earlier entry with the same
configuration key (``smoke`` flag, ``jobs`` count, app set — entries
with different keys are not comparable) and exits non-zero when total
cold wall time or total cold solve time regressed by more than
``--threshold`` (default +25%).

With fewer than two comparable entries it reports "no baseline" and
exits zero — the first committed run of a new configuration seeds the
trajectory rather than failing it.

Used by ``make bench-sweep`` and the CI bench smoke job::

    python benchmarks/bench_pair_sweep.py --smoke --jobs 2
    python tools/bench_gate.py --threshold 1.0
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_FILE = REPO_ROOT / "BENCH_pair_sweep.json"

#: trajectory totals the gate checks, as (key, label, unit).
#: Entries predating a metric carry no value for it: ``check()`` skips
#: a metric whose baseline is absent/zero, so adding one here stays
#: backward compatible with the committed trajectory.
GATED_METRICS = (
    ("cold_wall_s", "total cold wall time", "s"),
    ("cold_solve_s", "total cold solve time", "s"),
    ("incr_warm_wall_s", "incremental one-edit re-verify time", "s"),
    ("solver_calls", "total cold solver calls", ""),
)

#: totals reported for context but never gated — the reduction layer's
#: effect (classes formed, pairs statically pruned) is informative, but
#: a *drop* in pruning is not by itself a regression (an app change can
#: legitimately shift pairs between routes).
REPORTED_METRICS = (
    ("class_count", "signature classes", ""),
    ("pruned_pairs", "statically pruned pairs", ""),
)


def _fmt(value: float, unit: str) -> str:
    return f"{value:.3f}{unit}" if unit else f"{value:.0f}"


def config_key(entry: dict) -> tuple:
    return (entry.get("smoke"), entry.get("jobs"),
            tuple(entry.get("apps", ())))


def find_baseline(trajectory: list[dict]) -> tuple[dict | None, dict | None]:
    """Return (latest, baseline): the newest entry and the most recent
    earlier entry with the same configuration key, if any."""
    if not trajectory:
        return None, None
    latest = trajectory[-1]
    key = config_key(latest)
    for entry in reversed(trajectory[:-1]):
        if config_key(entry) == key:
            return latest, entry
    return latest, None


def check(latest: dict, baseline: dict, threshold: float) -> list[str]:
    """Regression messages for every gated metric beyond the threshold."""
    problems: list[str] = []
    for metric, label, unit in GATED_METRICS:
        new = float(latest.get("totals", {}).get(metric, 0.0))
        old = float(baseline.get("totals", {}).get(metric, 0.0))
        if old <= 1e-9:
            continue  # nothing measurable to regress against
        ratio = new / old
        if ratio > 1.0 + threshold:
            problems.append(
                f"{label} regressed {ratio - 1.0:+.0%}: "
                f"{_fmt(old, unit)} ({baseline.get('date', '?')}) -> "
                f"{_fmt(new, unit)} ({latest.get('date', '?')}), "
                f"threshold +{threshold:.0%}"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--file", default=str(DEFAULT_FILE),
                        help="benchmark trajectory file "
                             "(default: BENCH_pair_sweep.json at the "
                             "repo root)")
    parser.add_argument("--threshold", type=float, default=0.25,
                        metavar="FRACTION",
                        help="allowed fractional regression before "
                             "failing (default: 0.25 = +25%%; CI uses a "
                             "looser value to absorb runner noise)")
    args = parser.parse_args(argv)

    path = pathlib.Path(args.file)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        print(f"bench_gate: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"bench_gate: {path} is not JSON: {exc}", file=sys.stderr)
        return 1
    trajectory = data.get("trajectory")
    if not isinstance(trajectory, list) or not trajectory:
        print(f"bench_gate: {path} has no trajectory (run "
              f"benchmarks/bench_pair_sweep.py first)", file=sys.stderr)
        return 1

    latest, baseline = find_baseline(trajectory)
    if baseline is None:
        print(f"bench_gate: no comparable baseline for the latest entry "
              f"({latest.get('date', '?')}, key={config_key(latest)}); "
              f"trajectory seeded, nothing to gate")
        return 0

    problems = check(latest, baseline, args.threshold)
    for problem in problems:
        print(f"bench_gate: FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1
    for metric, label, unit in GATED_METRICS:
        new = latest.get("totals", {}).get(metric, 0.0)
        old = baseline.get("totals", {}).get(metric, 0.0)
        if old <= 1e-9 and new <= 1e-9:
            continue  # metric absent from both entries
        delta = (new / old - 1.0) if old > 1e-9 else 0.0
        print(f"bench_gate: ok: {label} {_fmt(old, unit)} -> "
              f"{_fmt(new, unit)} ({delta:+.0%})")
    for metric, label, unit in REPORTED_METRICS:
        new = latest.get("totals", {}).get(metric)
        if new is None:
            continue
        old = baseline.get("totals", {}).get(metric)
        prev = _fmt(float(old), unit) if old is not None else "n/a"
        print(f"bench_gate: info: {label} {prev} -> "
              f"{_fmt(float(new), unit)} (not gated)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
