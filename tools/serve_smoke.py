#!/usr/bin/env python3
"""End-to-end smoke for ``noctua serve`` (the CI service-smoke job).

Drives the *real* CLI daemon as a subprocess and asserts the full
continuous-verification story over its HTTP API:

1. start ``noctua serve`` on an exported copy of the todo app
   (ephemeral port) and wait for the cold verification cycle;
2. scrape ``/metrics`` and check the Prometheus exposition content
   type via ``tools/check_metrics.py --url``;
3. edit one endpoint (a verdict-preserving change to ``complete_task``)
   and wait for the *incremental* re-verify: the daemon must solve
   exactly the invalidated pairs, under 20% of the cold pair count,
   without bumping the restriction version;
4. edit ``toggle_star`` into a delete — a restriction-changing edit —
   and wait for the version bump;
5. hot-reload a live georep deployment *from the HTTP API*: a local
   :class:`RestrictionSetSubscription` is fed by ``GET
   /apps/todo/restrictions``, first with the version-1 table, then —
   mid-simulation — with the served version-2 table; the deployment
   must observe the swap without restart and finish with zero errors;
6. SIGINT the daemon and require a clean exit.

Exits non-zero with a diagnostic on the first failed step.  Run via
``make serve-demo`` or directly::

    python tools/serve_smoke.py
"""

from __future__ import annotations

import json
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.apps.todo import build_app as build_todo  # noqa: E402
from repro.georep import (  # noqa: E402
    Deployment,
    DeploymentConfig,
    RequestSpec,
    RestrictionSetSubscription,
)
from repro.georep.workload import Workload  # noqa: E402
from repro.orm import Database  # noqa: E402

PRIORITY_OLD = "task.done = True"
PRIORITY_NEW = "task.done = True\n        task.priority = 1"
STAR_OLD = """\
        if task.starred:
            task.starred = False
        else:
            task.starred = True
        task.save()"""
STAR_NEW = "        task.delete()"

DEADLINE_S = 120.0


def fail(message: str) -> None:
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as resp:
        return json.loads(resp.read().decode("utf-8"))


def wait_for(describe: str, predicate, deadline_s: float = DEADLINE_S):
    """Poll ``predicate`` until it returns a truthy value."""
    started = time.monotonic()
    while time.monotonic() - started < deadline_s:
        try:
            value = predicate()
        except OSError:
            value = None
        if value:
            return value
        time.sleep(0.2)
    fail(f"timed out waiting for {describe}")


def edit(app_dir: pathlib.Path, old: str, new: str) -> None:
    source = app_dir / "app.py"
    text = source.read_text()
    if old not in text:
        fail(f"fixture drift: {old!r} not in exported app.py")
    source.write_text(text.replace(old, new))


def table_from_obj(obj: dict) -> set[frozenset[str]]:
    return {frozenset(pair) for pair in obj["conflict_table"]}


def todo_workload(app, db) -> Workload:
    Task = app.registry.get_model("Task")
    with db.activate():
        pks = [Task.objects.create(title=f"t{i}").pk for i in range(10)]
    wl = Workload(app, db, write_ratio=0.4, seed=11)
    wl.reads = [
        lambda rng: RequestSpec("/tasks", "GET", {}, False),
        lambda rng: RequestSpec("/tasks/pending", "GET", {}, False),
    ]
    wl.writes = [
        lambda rng: RequestSpec(
            f"/tasks/{rng.choice(pks)}/complete", "POST", {}, True),
        lambda rng: RequestSpec(
            f"/tasks/{rng.choice(pks)}/star", "POST", {}, True),
    ]
    return wl


def main() -> int:
    from repro.service import export_builtin_app

    tmp = pathlib.Path(tempfile.mkdtemp(prefix="noctua-serve-smoke-"))
    app_dir = tmp / "app"
    export_builtin_app("todo", app_dir)

    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--apps", f"todo={app_dir}", "--port", "0",
         "--poll-interval", "0.2", "--quick",
         "--cache-dir", str(tmp / "cache")],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=REPO)
    lines: list[str] = []

    def pump() -> None:
        for line in daemon.stdout:
            print(f"  daemon| {line}", end="", flush=True)
            lines.append(line)

    threading.Thread(target=pump, daemon=True).start()

    try:
        url = wait_for(
            "the daemon to announce its URL",
            lambda: next((line.split()[-1] for line in lines
                          if line.startswith("serving on ")), None))

        # 1. cold cycle
        cold = wait_for(
            "the cold verification cycle",
            lambda: next((app for app in get_json(f"{url}/apps")["apps"]
                          if app["app"] == "todo" and app["verified"]),
                         None))["last_cycle"]
        if cold["solver_calls"] != cold["invalidated_count"]:
            fail(f"cold cycle solved {cold['solver_calls']} != "
                 f"{cold['invalidated_count']} invalidated")
        if cold["pairs_total"] <= 0 or cold["version"] != 1:
            fail(f"unexpected cold cycle: {cold}")
        print(f"serve_smoke: cold cycle ok "
              f"({cold['solver_calls']}/{cold['pairs_total']} pairs)")
        restrictions_v1 = get_json(f"{url}/apps/todo/restrictions")

        # 2. Prometheus contract, against the served payload
        check = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_metrics.py"),
             "--url", url])
        if check.returncode != 0:
            fail("check_metrics --url failed against the daemon")

        # 3. verdict-preserving edit -> incremental re-verify
        edit(app_dir, PRIORITY_OLD, PRIORITY_NEW)
        warm = wait_for(
            "the incremental re-verify after the edit",
            lambda: next(
                (app["last_cycle"]
                 for app in get_json(f"{url}/apps")["apps"]
                 if app["app"] == "todo"
                 and app["last_cycle"]["trigger"] == "change"), None))
        if warm["solver_calls"] != warm["invalidated_count"]:
            fail(f"warm cycle solved {warm['solver_calls']} != "
                 f"{warm['invalidated_count']} invalidated")
        if not 0 < warm["solver_calls"] < 0.20 * cold["pairs_total"]:
            fail(f"warm cycle solved {warm['solver_calls']} pairs, "
                 f"expected 0 < n < 20% of {cold['pairs_total']}")
        if warm["version_changed"]:
            fail("verdict-preserving edit must not bump the version")
        print(f"serve_smoke: incremental re-verify ok "
              f"({warm['solver_calls']}/{cold['pairs_total']} pairs, "
              f"version stable)")

        # 4. restriction-changing edit -> version bump
        edit(app_dir, STAR_OLD, STAR_NEW)
        restrictions_v2 = wait_for(
            "the restriction version bump",
            lambda: (lambda obj: obj if obj["version"] == 2 else None)(
                get_json(f"{url}/apps/todo/restrictions")))
        if table_from_obj(restrictions_v2) == table_from_obj(
                restrictions_v1):
            fail("version bumped but the conflict table is unchanged")
        print("serve_smoke: restriction version bump ok (v1 -> v2)")

        # 5. georep hot reload, fed from the HTTP API
        subscription = RestrictionSetSubscription()
        subscription.publish(table_from_obj(restrictions_v1), version=1)
        app = build_todo()
        db = Database(app.registry)
        deployment = Deployment(
            app, db, todo_workload(app, db), set(),
            config=DeploymentConfig(duration_ms=300.0, warmup_ms=20.0,
                                    clients_per_site=2),
            subscription=subscription)
        deployment.sim.schedule(
            100.0,
            lambda: subscription.publish(
                table_from_obj(get_json(f"{url}/apps/todo/restrictions")),
                version=2))
        summary = deployment.run()
        if deployment.restriction_version != 2:
            fail(f"deployment still at version "
                 f"{deployment.restriction_version} after the publish")
        if deployment.restriction_reloads != 1:
            fail(f"expected exactly one hot reload, got "
                 f"{deployment.restriction_reloads}")
        if deployment.coordinator.conflict_table != table_from_obj(
                restrictions_v2):
            fail("deployment conflict table does not match the served set")
        if summary.requests <= 0 or summary.error_fraction != 0.0:
            fail(f"deployment unhealthy under the reloaded set: "
                 f"{summary.requests} requests, "
                 f"{summary.error_fraction:.3f} errors")
        print(f"serve_smoke: georep hot reload ok "
              f"({summary.requests} requests, 0 errors, "
              f"{deployment.restriction_reloads} reload)")

        # 6. clean shutdown
        daemon.send_signal(signal.SIGINT)
        code = daemon.wait(timeout=30)
        if code != 0:
            fail(f"daemon exited {code} on SIGINT")
        if not any("shutting down" in line for line in lines):
            fail("daemon did not announce a clean shutdown")
        print("serve_smoke: clean shutdown ok")
        print("serve_smoke: PASS")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=10)
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
