#!/usr/bin/env python3
"""Documentation linter: dead links and stale CLI flags.

Two checks over the repository's Markdown (README.md + docs/*.md):

1. **Dead relative links** — every ``[text](target)`` whose target is
   not an URL/anchor must resolve to a file or directory relative to
   the document.
2. **Stale CLI flags** — every ``noctua <subcommand> ...`` invocation
   found in docs (inline code or fenced blocks) is checked against the
   real argparse parser in ``repro.cli``: the subcommand must exist and
   each ``--flag`` must be accepted by that subcommand.  Docs drift is
   caught the moment a flag is renamed.
3. **Undocumented subcommands** — the reverse direction: every
   subcommand the real parser accepts must appear as ``noctua <sub>``
   in at least one document, so new CLI surface (e.g. ``serve``,
   ``cache``) cannot ship undocumented.
4. **Stale metric family names** — every ``noctua_*`` metric token in
   docs (after stripping Prometheus exposition suffixes
   ``_bucket``/``_sum``/``_count``) must be declared in the closed
   catalogue ``repro.metrics.registry.FAMILIES``, so renaming a family
   breaks the lint, not a dashboard.
5. **Stale ``--engine`` values** — every engine name documented next to
   an ``--engine`` flag (``--engine portfolio``, ``--engine
   enum|smt|portfolio``) must be a real choice of the argparse parser.

Run directly (``python tools/docs_lint.py``) or via ``make docs-lint``;
exits non-zero with one line per problem.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: `noctua <sub> ...` up to a shell metachar/comment; docs wrap long
#: invocations, so flags are also collected line-by-line after a match.
CLI_RE = re.compile(r"\bnoctua\s+([a-z-]+)([^`\n#|)]*)")
FLAG_RE = re.compile(r"(--[a-z][a-z-]*)")
#: metric family tokens; label sets (`{tag=...}`) and exposition
#: suffixes are handled by the checker, not the regex
METRIC_RE = re.compile(r"\bnoctua_[a-z0-9_]+")
#: documented engine values: `--engine portfolio`, `--engine enum|smt`
ENGINE_RE = re.compile(r"--engine[= ]([a-z][a-z|-]*)")
#: Prometheus exposition suffixes that are not part of the family name
EXPOSITION_SUFFIXES = ("_bucket", "_sum", "_count")


def doc_files() -> list[str]:
    files = [os.path.join(REPO, "README.md")]
    docs = os.path.join(REPO, "docs")
    for name in sorted(os.listdir(docs)):
        if name.endswith(".md"):
            files.append(os.path.join(docs, name))
    return files


def check_links(path: str, text: str) -> list[str]:
    problems = []
    base = os.path.dirname(path)
    fenced = False
    for lineno, line in enumerate(text.splitlines(), 1):
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if fenced:
            continue
        # Inline code spans aren't links (`opaque[f](x)` is SOIR syntax).
        line = re.sub(r"`[^`]*`", "", line)
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            if not os.path.exists(os.path.join(base, target)):
                problems.append(
                    f"{os.path.relpath(path, REPO)}:{lineno}: "
                    f"dead link -> {target}"
                )
    return problems


def cli_flag_table() -> dict[str, set[str]]:
    """Subcommand -> accepted long options, introspected from the real
    parser (never a hand-maintained list)."""
    root = build_parser()
    table: dict[str, set[str]] = {}
    for action in root._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                flags = set()
                for sub_action in sub._actions:
                    flags.update(
                        s for s in sub_action.option_strings
                        if s.startswith("--")
                    )
                table[name] = flags
    return table


def build_parser() -> argparse.ArgumentParser:
    """The real CLI parser, captured from ``repro.cli.main`` by
    intercepting ``parse_args``."""
    from repro import cli

    captured: list[argparse.ArgumentParser] = []
    original = argparse.ArgumentParser.parse_args

    def capture(self, *args, **kwargs):
        captured.append(self)
        raise SystemExit(0)

    argparse.ArgumentParser.parse_args = capture
    try:
        cli.main([])
    except SystemExit:
        pass
    finally:
        argparse.ArgumentParser.parse_args = original
    if not captured:
        raise RuntimeError("could not capture the CLI parser")
    return captured[0]


def check_cli(path: str, text: str, table: dict[str, set[str]],
              used: set[str]) -> list[str]:
    problems = []
    rel = os.path.relpath(path, REPO)
    for lineno, line in enumerate(text.splitlines(), 1):
        for match in CLI_RE.finditer(line):
            sub, rest = match.group(1), match.group(2)
            used.add(sub)
            if sub not in table:
                problems.append(
                    f"{rel}:{lineno}: unknown subcommand "
                    f"'noctua {sub}'"
                )
                continue
            for flag in FLAG_RE.findall(rest):
                if not any(
                    known == flag or known.startswith(flag)
                    for known in table[sub]
                ):
                    problems.append(
                        f"{rel}:{lineno}: 'noctua {sub}' does not "
                        f"accept {flag}"
                    )
    return problems


def metric_families() -> set[str]:
    from repro.metrics.registry import FAMILIES

    return set(FAMILIES)


def engine_choices(table_parser: argparse.ArgumentParser) -> set[str]:
    """Every value any subcommand's ``--engine`` option accepts."""
    choices: set[str] = set()
    for action in table_parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for sub in action.choices.values():
                for sub_action in sub._actions:
                    if "--engine" in sub_action.option_strings:
                        choices.update(sub_action.choices or ())
    return choices


def check_metrics(path: str, text: str, families: set[str]) -> list[str]:
    problems = []
    rel = os.path.relpath(path, REPO)
    for lineno, line in enumerate(text.splitlines(), 1):
        for token in METRIC_RE.findall(line):
            name = token
            for suffix in EXPOSITION_SUFFIXES:
                if name not in families and name.endswith(suffix):
                    name = name[: -len(suffix)]
                    break
            if name not in families:
                problems.append(
                    f"{rel}:{lineno}: unknown metric family '{token}' "
                    f"(not declared in repro.metrics.registry.FAMILIES)"
                )
    return problems


def check_engines(path: str, text: str, choices: set[str]) -> list[str]:
    problems = []
    rel = os.path.relpath(path, REPO)
    for lineno, line in enumerate(text.splitlines(), 1):
        for group in ENGINE_RE.findall(line):
            for value in group.split("|"):
                if value and value not in choices:
                    problems.append(
                        f"{rel}:{lineno}: '--engine {value}' is not a "
                        f"real engine choice {sorted(choices)}"
                    )
    return problems


def main() -> int:
    table = cli_flag_table()
    families = metric_families()
    engines = engine_choices(build_parser())
    problems: list[str] = []
    used: set[str] = set()
    for path in doc_files():
        with open(path, encoding="utf-8") as f:
            text = f.read()
        problems += check_links(path, text)
        problems += check_cli(path, text, table, used)
        problems += check_metrics(path, text, families)
        problems += check_engines(path, text, engines)
    for sub in sorted(set(table) - used):
        problems.append(
            f"README.md/docs: subcommand 'noctua {sub}' is documented "
            f"nowhere (checks 'noctua {sub}' appearing in any doc)"
        )
    for problem in problems:
        print(problem)
    if problems:
        print(f"docs-lint: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs-lint: {len(doc_files())} files clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
