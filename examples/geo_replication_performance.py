"""End-to-end performance: what the restriction set buys you (Figs 10-11).

Verifies the Zhihu application, lifts the restriction set to an
endpoint-level conflict table, then simulates a 3-site geo-replicated
deployment under strong consistency and under PoR consistency at three
write ratios — reproducing the shape of paper Figures 10 and 11
(throughput rises and latency falls as fewer operations need coordination;
relaxed consistency beats SC by up to ~2.8x).

Run:  python examples/geo_replication_performance.py
"""

from repro import CheckConfig, analyze_application, operation_conflict_table, verify_application
from repro.apps.zhihu import build_app
from repro.georep import DeploymentConfig, run_modes, zhihu_workload

print("Verifying zhihu to obtain its conflict table (reduced budget)...")
analysis = analyze_application(build_app())
config = CheckConfig(timeout_s=0.4, max_samples=200, max_exhaustive=2000)
report = verify_application(analysis, config)
conflicts = operation_conflict_table(report)
print(f"  {report.checks} checks -> {len(conflicts)} conflicting endpoint pairs\n")

print("Simulating 3 sites, 1 ms WAN latency, closed-loop clients...")
rows = run_modes(
    build_app,
    zhihu_workload,
    conflicts,
    config=DeploymentConfig(duration_ms=400.0, warmup_ms=80.0),
)

print(f"\n{'mode':>5} | {'throughput (req/s)':>19} | {'avg latency (ms)':>17}")
print("-" * 50)
for row in rows:
    print(f"{row.mode:>5} | {row.throughput_rps:19.1f} | {row.avg_latency_ms:17.3f}")

sc = rows[0].throughput_rps
best = max(r.throughput_rps for r in rows[1:])
print(f"\nRelaxing consistency achieves up to {best / sc:.2f}x the throughput "
      "of strong consistency (paper: up to 2.8x).")
assert all(rows[i].throughput_rps < rows[i + 1].throughput_rps
           for i in range(len(rows) - 1)), "throughput should rise as writes fall"
