"""Bring your own application: a library-lending service from scratch.

Shows the full workflow a downstream user follows to analyze their own
code: define models and views against :mod:`repro.orm` / :mod:`repro.web`,
exercise them concretely through the test client, then hand the *same*
unmodified application object to the analyzer and verifier, and read off
the coordination requirements.

Also demonstrates the conservative fallback: one deliberately written view
iterates a query set (unsupported, paper §3.3), and the verifier restricts
it against everything.

Run:  python examples/analyze_custom_app.py
"""

from repro import analyze_application, verify_application
from repro.orm import (
    BooleanField,
    Database,
    ForeignKey,
    Model,
    PROTECT,
    PositiveIntegerField,
    Registry,
    TextField,
)
from repro.web import Application, Client, HttpResponse, JsonResponse, path

# ---------------------------------------------------------------------------
# The application
# ---------------------------------------------------------------------------

registry = Registry("library")
with registry.use():

    class Member(Model):
        card = TextField(primary_key=True)
        credit = PositiveIntegerField(default=3)  # concurrent-loan quota

    class Book(Model):
        isbn = TextField(unique=True)
        title = TextField(default="")
        available = BooleanField(default=True)

    class Loan(Model):
        member = ForeignKey(Member, on_delete=PROTECT)
        book = ForeignKey(Book, on_delete=PROTECT)
        returned = BooleanField(default=False)


def register(request):
    member = Member.objects.create(card=request.POST["card"])
    return JsonResponse({"card": member.card}, status=201)


def add_book(request):
    book = Book.objects.create(isbn=request.POST["isbn"],
                               title=request.POST["title"])
    return JsonResponse({"pk": book.pk}, status=201)


def borrow(request, card, book_id):
    member = Member.objects.get(card=card)
    book = Book.objects.get(pk=book_id)
    if not book.available:
        return HttpResponse("not available", status=409)
    Loan.objects.create(member=member, book=book)
    book.available = False
    book.save()
    member.credit = member.credit - 1  # PositiveIntegerField: quota guard
    member.save()
    return HttpResponse(status=201)


def give_back(request, card, book_id):
    member = Member.objects.get(card=card)
    book = Book.objects.get(pk=book_id)
    Loan.objects.filter(member=member, book=book, returned=False).update(
        returned=True
    )
    book.available = True
    book.save()
    member.credit = member.credit + 1
    member.save()
    return HttpResponse(status=200)


def audit(request):
    # Iterating a query set is unsupported by the analyzer (paper §3.3):
    # this path will be handled conservatively.
    titles = []
    for book in Book.objects.filter(available=False):
        titles.append(book.title)
    return JsonResponse(titles)


app = Application(
    "library",
    registry,
    [
        path("members/register", register, name="Register"),
        path("books/add", add_book, name="AddBook"),
        path("borrow/<card>/<int:book_id>", borrow, name="Borrow"),
        path("return/<card>/<int:book_id>", give_back, name="Return"),
        path("audit", audit, name="Audit"),
    ],
)

# ---------------------------------------------------------------------------
# 1. It is a real working application
# ---------------------------------------------------------------------------

client = Client(app, Database(registry))
client.post("/members/register", {"card": "m1"})
book = client.post("/books/add", {"isbn": "i1", "title": "DDIA"}).content["pk"]
assert client.post(f"/borrow/m1/{book}").status == 201
assert client.post(f"/borrow/m1/{book}").status == 409  # already out
assert client.post(f"/return/m1/{book}").ok
print("concrete smoke test passed\n")

# ---------------------------------------------------------------------------
# 2. Analyze the unmodified application object
# ---------------------------------------------------------------------------

analysis = analyze_application(app)
print(f"{len(analysis.paths)} paths, {len(analysis.effectful_paths)} effectful")
conservative = [p for p in analysis.paths if p.conservative]
print(f"conservative fallbacks: {[p.view for p in conservative]}\n")

# ---------------------------------------------------------------------------
# 3. Verify and read the coordination requirements
# ---------------------------------------------------------------------------

report = verify_application(analysis)
print(f"{report.checks} checks, {len(report.restrictions)} restricted pairs:")
for verdict in report.restrictions:
    kinds = []
    if verdict.commutativity and verdict.commutativity.outcome.restricts:
        kinds.append(verdict.commutativity.outcome.value + " com")
    if verdict.semantic and verdict.semantic.outcome.restricts:
        kinds.append(verdict.semantic.outcome.value + " sem")
    print(f"  {verdict.left}  x  {verdict.right}   [{'; '.join(kinds)}]")

borrow_self = [
    v for v in report.restrictions
    if v.left.startswith("Borrow") and v.right.startswith("Borrow")
]
assert borrow_self, "two concurrent borrows of the same book must coordinate"
print("\nAs expected: Borrow conflicts with itself (double-lend), and the "
      "conservative Audit path is restricted against everything.")
