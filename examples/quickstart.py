"""Quickstart: the paper's Figure 3 blog, analyzed end to end.

Defines a multi-user blog with the exact models and ``batch_update`` view
of paper Figure 3, runs the Noctua analyzer over the *unmodified* view
function, prints every discovered SOIR code path, and verifies the pairs.

Run:  python examples/quickstart.py
"""

from repro import analyze_application, verify_application
from repro.orm import (
    DateTimeField,
    ForeignKey,
    Model,
    Registry,
    SET_NULL,
    TextField,
)
from repro.soir import pp_path
from repro.web import Application, HttpResponse, path

# ---------------------------------------------------------------------------
# The application (paper Figure 3)
# ---------------------------------------------------------------------------

registry = Registry("blog")
with registry.use():

    class User(Model):
        name = TextField(primary_key=True)

    class Article(Model):
        url = TextField(unique=True)
        author = ForeignKey(User, on_delete=SET_NULL, null=True)
        title = TextField(default="")
        content = TextField(default="")
        created = DateTimeField(auto_now_add=True)


def batch_update(request, username):
    """Either delete all articles of a user, or transfer their authorship,
    depending on the POST parameter ``action`` — verbatim Figure 3."""
    user = User.objects.get(name=username)
    articles = Article.objects.filter(author=user)
    if request.POST["action"] == "delete":
        articles.delete()
    elif request.POST["action"] == "transfer":
        to_user = User.objects.get(name=request.POST["to_user"])
        articles.update(author=to_user)
    else:
        raise RuntimeError()


def publish(request, username):
    """Publish a new article."""
    author = User.objects.get(name=username)
    Article.objects.create(url=request.POST["url"], author=author,
                           title=request.POST["title"])
    return HttpResponse(status=201)


app = Application(
    "blog",
    registry,
    [
        path("batch_update/<username>", batch_update, name="batch_update"),
        path("publish/<username>", publish, name="publish"),
    ],
)

# ---------------------------------------------------------------------------
# Analysis: unmodified code in, SOIR code paths out
# ---------------------------------------------------------------------------

print("=" * 70)
print("ANALYSIS")
print("=" * 70)
analysis = analyze_application(app)
print(
    f"{len(analysis.paths)} code paths discovered, "
    f"{len(analysis.effectful_paths)} effectful\n"
)
for code_path in analysis.paths:
    marker = "(aborted) " if code_path.aborted else ""
    print(marker + pp_path(code_path))
    print()

# ---------------------------------------------------------------------------
# Verification: which pairs must the replicated store coordinate?
# ---------------------------------------------------------------------------

print("=" * 70)
print("VERIFICATION")
print("=" * 70)
report = verify_application(analysis)
print(f"checks: {report.checks}, restricted pairs: {len(report.restrictions)}\n")
for verdict in report.restrictions:
    kinds = []
    if verdict.commutativity and verdict.commutativity.outcome.restricts:
        kinds.append("state divergence")
    if verdict.semantic and verdict.semantic.outcome.restricts:
        kinds.append("invariant violation")
    print(f"  {verdict.left}  x  {verdict.right}: {', '.join(kinds)}")
print(
    "\nEvery unrestricted pair may run concurrently at different replicas "
    "without coordination."
)
