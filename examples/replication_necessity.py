"""Why the restriction set matters: sufficiency and necessity, live.

Runs the SmallBank and Todo workloads on a 3-replica PoR system twice —
once coordinating exactly the pairs the verifier restricted, once with no
coordination at all — and shows:

* with the verifier's restrictions: replicas converge AND balances stay
  non-negative;
* without them: SmallBank still converges (Table 5: it has no
  commutativity failures!) but an uncoordinated overdraft drives a
  balance negative — the *semantic* failures were load-bearing;
* without them: Todo's Complete/Reopen race leaves replicas with
  different states — the *commutativity* failures were load-bearing.

Run:  python examples/replication_necessity.py
"""

import random

from repro import CheckConfig, analyze_application, verify_application
from repro.apps.smallbank import build_app as build_smallbank
from repro.apps.todo import build_app as build_todo
from repro.georep.replication import PoRReplicatedSystem, run_workload
from repro.soir.state import DBState


def path_by_view(analysis, view):
    return [p for p in analysis.effectful_paths if p.view == view][0]


# ---------------------------------------------------------------------------
# SmallBank: semantic failures protect the invariant
# ---------------------------------------------------------------------------

print("SmallBank — balances must stay non-negative")
print("=" * 64)
analysis = analyze_application(build_smallbank())
restrictions = verify_application(analysis, CheckConfig()).restriction_pairs()
print(f"verifier restricted {len(restrictions)} pairs")

initial = DBState.empty(analysis.schema)
for name in ("alice", "bob"):
    initial.insert_row("Account", name,
                       {"name": name, "checking": 10, "savings": 5})

transact = path_by_view(analysis, "TransactSavings")
rng = random.Random(1)
ops = [
    (transact, {"arg_url_name": rng.choice(["alice", "bob"]),
                "arg_POST_amount": rng.choice([-5, -4, 3])})
    for _ in range(50)
]


def min_balance(system):
    return min(
        min(row["checking"], row["savings"])
        for state in system.replicas
        for row in state.table("Account").values()
    )


for label, rset in (("with restrictions", restrictions),
                    ("without coordination", set())):
    worst = None
    for seed in range(10):
        system = PoRReplicatedSystem(analysis.schema, rset, seed=seed,
                                     initial=initial)
        run_workload(system, ops)
        low = min_balance(system)
        worst = low if worst is None else min(worst, low)
    status = "INVARIANT HELD" if worst >= 0 else f"OVERDRAFT (min balance {worst})"
    print(f"  {label:24s}: converged={system.converged()}  {status}")

# ---------------------------------------------------------------------------
# Todo: commutativity failures protect convergence
# ---------------------------------------------------------------------------

print()
print("Todo — replicas must agree on task state")
print("=" * 64)
analysis = analyze_application(build_todo())
restrictions = verify_application(
    analysis, CheckConfig(timeout_s=1.0)
).restriction_pairs()
print(f"verifier restricted {len(restrictions)} pairs")

initial = DBState.empty(analysis.schema)
initial.insert_row("Task", 1, {"id": 1, "title": "ship it", "note": "",
                               "done": False, "starred": False,
                               "priority": 0, "created": 0})

complete = path_by_view(analysis, "CompleteTask")
reopen = path_by_view(analysis, "ReopenTask")
rng = random.Random(2)
ops = [
    (rng.choice([complete, reopen]), {"arg_url_pk": 1})
    for _ in range(30)
]

for label, rset in (("with restrictions", restrictions),
                    ("without coordination", set())):
    outcomes = set()
    for seed in range(10):
        system = PoRReplicatedSystem(analysis.schema, rset, seed=seed,
                                     initial=initial)
        run_workload(system, ops)
        outcomes.add(system.converged())
    verdict = "CONVERGED" if outcomes == {True} else "DIVERGED on some schedule"
    print(f"  {label:24s}: {verdict}")

print()
print("The restriction set is exactly the coordination the application needs.")
