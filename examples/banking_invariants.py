"""SmallBank: how implicit invariants become coordination requirements.

Walks the SmallBank benchmark (paper §6.2) through the full pipeline and
cross-checks the result against the Rigi-style baseline analyzer operating
on hand-written specifications — reproducing paper Table 5's SmallBank row.

The interesting part: nobody wrote "balances must be non-negative" as a
specification.  The invariant lives in the *model definition*
(``PositiveIntegerField``), the analyzer turns it into SOIR guards, and the
verifier discovers which operation pairs can violate it when run
concurrently.

Run:  python examples/banking_invariants.py
"""

from repro import analyze_application, verify_application
from repro.apps.smallbank import build_app
from repro.baselines import rigi, smallbank_spec
from repro.soir import pp_path

app = build_app()
analysis = analyze_application(app)

print("Effectful operations and their SOIR translations")
print("=" * 70)
for code_path in analysis.effectful_paths:
    print(pp_path(code_path))
    print()

print("Pairwise verification (Noctua)")
print("=" * 70)
report = verify_application(analysis)
noctua_sem = {
    frozenset((v.left.split("[")[0], v.right.split("[")[0]))
    for v in report.semantic_failures
}
print(f"commutativity failures: {len(report.commutativity_failures)}")
print(f"semantic failures     : {len(report.semantic_failures)}")
for pair in sorted(tuple(sorted(p)) for p in noctua_sem):
    print(f"  {pair}")

print()
print("Baseline (Rigi-style, from hand-written specs)")
print("=" * 70)
baseline = rigi.analyze(smallbank_spec())
print(f"commutativity failures: {len(baseline.commutativity_failures)}")
print(f"semantic failures     : {len(baseline.semantic_failures)}")

agrees = (
    noctua_sem == baseline.semantic_failures
    and not report.commutativity_failures
    and not baseline.commutativity_failures
)
print()
print("Noctua and the baseline agree:" , agrees)
assert agrees, "expected Table 5 agreement"

witness = report.semantic_failures[0].semantic.witness
print("\nExample counterexample witness found by the model finder:")
print(f"  pair : {report.semantic_failures[0].left} x "
      f"{report.semantic_failures[0].right}")
print(f"  kind : {witness.description}")
print(f"  args : {witness.args_p}  /  {witness.args_q}")
