"""Directed-vs-random A/B benchmark for differential test generation.

The PR's headline claim, measured: on the **same oracle-probe budget
over the same seed block**, the directed walk (witness-seeded mutation
scored by distance-to-flip) discovers strictly more distinct
verdict-flip boundary cases than unscored random mutation.  Both arms
run the identical engine — same probe, same mutation operators, same
per-seed RNG derivation — differing only in parent selection (scored
frontier vs uniform), operator bias (toward the boundary vs uniform)
and witness seeding (on vs off), so the delta isolates the *directed*
part.  The run **asserts** the strict inequality; a regression that
blunts the scoring function fails the benchmark, not just a dashboard.

Also records the DPOR economics on the k=3 benchmark block: the
sleep-set pruner must explore at most half of the full ``k!``
interleavings in aggregate while reaching verdicts identical to
brute-force enumeration (the per-case equivalence is pinned by
``tests/test_difftest_dpor.py``; this benchmark re-measures the
aggregate ratio so the number in the JSON is always fresh).

Writes ``BENCH_directed_ab.json`` at the repo root in the standard
two-part shape: ``current`` (the full latest result) and ``trajectory``
(an append-only list of dated per-run summaries — committed history
accumulates across PRs).

Runs standalone: ``python benchmarks/bench_directed_ab.py [--smoke]``.
``--smoke`` shrinks the budget for a fast CI pass; the committed
trajectory should come from full runs (default: 300 evals over 5
seeds, the budget named in the acceptance criteria).
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_directed_ab.json"

#: the k=3 seed block the DPOR aggregate is measured on (kept in sync
#: with tests/test_difftest_dpor.py::TestVerdictEquivalence.SEEDS).
DPOR_SEEDS = range(0, 18)


def run_arm(mode: str, *, seeds: int, budget: int) -> dict:
    from repro.difftest.directed import DirectedConfig, run_directed

    config = DirectedConfig(budget=budget, mode=mode)
    started = time.perf_counter()
    report = run_directed(seeds, config=config)
    wall = time.perf_counter() - started
    return {
        "mode": mode,
        "seeds": seeds,
        "budget": budget,
        "evals": report.evals,
        "flips": len(report.flips),
        "distinct_flips": report.distinct_flips,
        "mismatches": len(report.mismatches),
        "first_levels": report.to_obj()["first_levels"],
        "wall_s": round(wall, 4),
    }


def dpor_economics() -> dict:
    """Pruned vs full schedule counts over the k=3 benchmark block,
    with verdict-identical results re-asserted."""
    from repro.difftest.dpor import run_schedule_oracle
    from repro.difftest.gen import generate_case_k
    from repro.difftest.oracle import OracleConfig

    cfg = OracleConfig(max_states=12, max_env_pairs=16, max_combos=400)
    explored = full = divergent = 0
    verdicts_agree = True
    for seed in DPOR_SEEDS:
        case = generate_case_k(seed, 3)
        pruned = run_schedule_oracle(case.paths, case.schema, cfg)
        brute = run_schedule_oracle(case.paths, case.schema, cfg,
                                    prune=False)
        if (pruned.divergence is None) != (brute.divergence is None):
            verdicts_agree = False
        explored += pruned.schedules_explored
        full += pruned.schedules_full
        divergent += pruned.divergence is not None
    return {
        "k": 3,
        "seeds": len(DPOR_SEEDS),
        "schedules_explored": explored,
        "schedules_full": full,
        "pruning_ratio": round(explored / full, 4),
        "divergent_cases": divergent,
        "verdicts_agree_with_bruteforce": verdicts_agree,
    }


def trajectory_entry(result: dict, *, date: str, label: str = "") -> dict:
    directed = result["directed"]
    rand = result["random"]
    entry = {
        "date": date,
        "budget": directed["budget"],
        "directed_distinct_flips": directed["distinct_flips"],
        "random_distinct_flips": rand["distinct_flips"],
        "advantage": directed["distinct_flips"] - rand["distinct_flips"],
        "dpor_pruning_ratio": result["dpor"]["pruning_ratio"],
        "mismatches": directed["mismatches"] + rand["mismatches"],
        "smoke": result["smoke"],
    }
    if label:
        entry["label"] = label
    return entry


def load_trajectory(out_path: pathlib.Path) -> list[dict]:
    if not out_path.exists():
        return []
    try:
        previous = json.loads(out_path.read_text())
    except (OSError, ValueError):
        return []
    if isinstance(previous.get("trajectory"), list):
        return previous["trajectory"]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--seeds", type=int, default=5,
                        help="walks per arm (default: 5)")
    parser.add_argument("--budget", type=int, default=300,
                        help="probe evaluations per arm (default: 300, "
                             "the acceptance budget)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny budget for a fast CI pass "
                             "(3 seeds x 90 evals)")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="output JSON path")
    parser.add_argument("--label", default="",
                        help="free-form tag recorded on the trajectory "
                             "entry")
    args = parser.parse_args(argv)

    seeds, budget = args.seeds, args.budget
    if args.smoke:
        seeds, budget = 3, 90

    sys.path.insert(0, str(REPO_ROOT / "src"))

    print(f"directed arm: {seeds} seeds x {budget} evals ...")
    directed = run_arm("directed", seeds=seeds, budget=budget)
    print(f"  {directed['distinct_flips']} distinct flips "
          f"({directed['flips']} total) in {directed['wall_s']}s")
    print(f"random arm:   {seeds} seeds x {budget} evals ...")
    rand = run_arm("random", seeds=seeds, budget=budget)
    print(f"  {rand['distinct_flips']} distinct flips "
          f"({rand['flips']} total) in {rand['wall_s']}s")
    print("dpor economics (k=3 block) ...")
    dpor = dpor_economics()
    print(f"  explored {dpor['schedules_explored']}/"
          f"{dpor['schedules_full']} schedules "
          f"(ratio {dpor['pruning_ratio']}), "
          f"{dpor['divergent_cases']} divergent case(s)")

    failures: list[str] = []
    if directed["distinct_flips"] <= rand["distinct_flips"]:
        failures.append(
            f"directed must beat random at equal budget: "
            f"{directed['distinct_flips']} <= {rand['distinct_flips']}"
        )
    if dpor["pruning_ratio"] > 0.5:
        failures.append(
            f"DPOR must explore at most half of k! in aggregate: "
            f"ratio {dpor['pruning_ratio']}"
        )
    if not dpor["verdicts_agree_with_bruteforce"]:
        failures.append("pruned and brute-force verdicts disagree")
    if directed["mismatches"] or rand["mismatches"]:
        failures.append(
            f"engine mismatches found: directed={directed['mismatches']} "
            f"random={rand['mismatches']} — shrink and pin them "
            f"(noctua difftest --directed --shrink)"
        )

    result = {
        "directed": directed,
        "random": rand,
        "dpor": dpor,
        "smoke": args.smoke,
        "ok": not failures,
        "failures": failures,
    }

    out_path = pathlib.Path(args.out)
    today = datetime.date.today().isoformat()
    trajectory = load_trajectory(out_path)
    trajectory.append(trajectory_entry(result, date=today,
                                       label=args.label))
    out_path.write_text(json.dumps(
        {"current": result, "trajectory": trajectory}, indent=2,
        sort_keys=True,
    ) + "\n")
    print(f"wrote {out_path} ({len(trajectory)} trajectory entries)")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
