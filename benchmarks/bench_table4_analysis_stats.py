"""Table 4 — basic information about the evaluated applications.

For every application: lines of application code, static (schema) time,
number of models and relations, analysis time, number of code paths and
number of effectful paths.  The paper's counts for models/relations are
matched exactly by the re-implementations; path counts are approximate
(our re-implementations are smaller than the upstream repos)."""

from __future__ import annotations

import pytest

from conftest import emit
from repro.analyzer import analyze_application

ORDER = ["todo", "postgraduation", "zhihu", "ownphotos",
         "smallbank", "courseware"]

#: paper Table 4 (models, relations) — matched exactly
PAPER_SHAPE = {
    "todo": (1, 0),
    "postgraduation": (8, 4),
    "zhihu": (14, 25),
    "ownphotos": (12, 46),
    "smallbank": (1, 0),
    "courseware": (3, 2),
}


@pytest.mark.parametrize("name", ORDER)
def test_table4_analysis_per_app(benchmark, builders, name):
    app = builders[name]()
    result = benchmark.pedantic(
        analyze_application, args=(app,), rounds=3, iterations=1
    )
    stats = result.stats()
    models_expected, relations_expected = PAPER_SHAPE[name]
    assert stats["models"] == models_expected
    # OwnPhotos: 45 vs the paper's 46 relations (documented in DESIGN.md).
    assert abs(stats["relations"] - relations_expected) <= 1
    assert stats["effectful_paths"] <= stats["code_paths"]
    benchmark.extra_info.update(stats)


def test_table4_table(benchmark, builders):
    lines = [
        "Table 4 — basic information about evaluated applications",
        f"{'application':>15} {'LoC':>5} {'static(ms)':>11} {'models':>7} "
        f"{'relations':>10} {'time(s)':>9} {'paths':>6} {'effectful':>10}",
        "-" * 86,
    ]
    def analyze_all():
        return {name: (builders[name](), None) for name in ORDER}

    apps = benchmark(analyze_all)
    for name in ORDER:
        app = apps[name][0]
        result = analyze_application(app)
        stats = result.stats()
        lines.append(
            f"{name:>15} {app.source_loc:5d} "
            f"{result.timings['static_ms']:11.2f} {stats['models']:7d} "
            f"{stats['relations']:10d} {stats['analysis_time_s']:9.3f} "
            f"{stats['code_paths']:6d} {stats['effectful_paths']:10d}"
        )
    emit("table4", lines)
