"""Figure 11 — average user-perceived latency for the Figure-10 setups.

Expected shape: strong consistency pays coordination on every request and
has the highest average latency; relaxing consistency lowers it, the more
so the smaller the write ratio."""

from __future__ import annotations

import pytest

from bench_fig10_throughput import sweep
from conftest import emit


@pytest.mark.parametrize("name", ["zhihu", "postgraduation"])
def test_fig11_latency(benchmark, builders, analyses, name):
    rows = benchmark.pedantic(
        sweep, args=(name, builders, analyses), rounds=1, iterations=1
    )
    lines = [
        f"Figure 11 — average user-perceived latency, {name}",
        f"{'mode':>5} {'avg latency (ms)':>18} {'p95 (ms)':>10}",
        "-" * 38,
    ]
    for row in rows:
        lines.append(
            f"{row.mode:>5} {row.avg_latency_ms:18.3f} {row.p95_latency_ms:10.3f}"
        )
    emit(f"fig11_{name}", lines)

    latencies = [r.avg_latency_ms for r in rows]
    # SC highest; latency falls as the write ratio falls.
    assert latencies == sorted(latencies, reverse=True)
    assert latencies[0] / latencies[-1] > 1.3
