"""Figure 8 — verification times of the four real applications.

The paper reports per-application verification wall time, quadratic in the
number of effectful code paths (#checks = n(n+1)/2).  The series is taken
from the shared Table-6 verification run."""

from __future__ import annotations

from conftest import emit

ORDER = ["todo", "postgraduation", "zhihu", "ownphotos"]


def test_fig8_verification_times(benchmark, analyses, verification_reports):
    def build_series():
        rows = []
        for name in ORDER:
            report = verification_reports[name]
            n = len(analyses[name].effectful_paths)
            rows.append((name, n, report.checks, report.elapsed_s))
        return rows

    rows = benchmark(build_series)
    lines = [
        "Figure 8 — verification times (quadratic in #effectful paths)",
        f"{'application':>15} {'effectful':>10} {'#checks':>8} {'time (s)':>9}",
        "-" * 48,
    ]
    for name, n, checks, elapsed in rows:
        lines.append(f"{name:>15} {n:10d} {checks:8d} {elapsed:9.1f}")
    emit("fig8", lines)

    # Shape: checks grow quadratically with effectful paths, and the
    # largest app dominates total verification time.
    by_paths = sorted(rows, key=lambda r: r[1])
    assert [r[2] for r in by_paths] == sorted(r[2] for r in rows)
    assert by_paths[-1][3] == max(r[3] for r in rows)
    for _, n, checks, _ in rows:
        assert checks == n * (n + 1) // 2
