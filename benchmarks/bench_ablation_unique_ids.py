"""Ablation: the unique-ID optimisation (paper §5.2, case study §6.4).

With the optimisation, storage-generated fresh IDs are asserted globally
distinct and CreateQuestion does not conflict with itself; without it, two
inserts can carry the same ID and the pair fails *both* checks.  The bench
measures the verification-time impact across every insert-insert pair of
the zhihu application and regenerates the case-study verdict table."""

from __future__ import annotations

import time

from conftest import emit, quick_config
from repro.verifier import PairChecker, verify_pair


def insert_pairs(analyses):
    """Every self-pair of an inserting path in zhihu."""
    paths = [
        p for p in analyses["zhihu"].effectful_paths
        if any(a.unique_id for a in p.args)
    ]
    return [(p, p) for p in paths]


def sweep(analyses, unique_ids: bool):
    config = quick_config(unique_ids=unique_ids)
    schema = analyses["zhihu"].schema
    outcomes = []
    start = time.perf_counter()
    for p, q in insert_pairs(analyses):
        verdict = verify_pair(p, q, schema, config)
        outcomes.append((p.view, verdict.restricted))
    return outcomes, time.perf_counter() - start


def test_ablation_unique_ids(benchmark, analyses):
    with_opt, time_with = benchmark.pedantic(
        sweep, args=(analyses, True), rounds=1, iterations=1
    )
    without_opt, time_without = sweep(analyses, False)

    restricted_with = sum(1 for _, r in with_opt if r)
    restricted_without = sum(1 for _, r in without_opt if r)
    lines = [
        "Ablation — unique-ID optimisation (insert self-pairs, zhihu)",
        f"{'':>22} {'restricted':>11} {'time (s)':>9}",
        "-" * 46,
        f"{'with unique IDs':>22} {restricted_with:11d} {time_with:9.2f}",
        f"{'without':>22} {restricted_without:11d} {time_without:9.2f}",
    ]
    emit("ablation_unique_ids", lines)

    # The paper's claim: the optimisation removes self-conflicts of pure
    # inserts (CreateQuestion et al.); disabling it can only add
    # restrictions, and adds at least one.
    with_set = {v for v in with_opt}
    assert restricted_without > restricted_with
    for (view, restricted), (_, restricted2) in zip(with_opt, without_opt):
        if restricted:
            assert restricted2, f"{view}: optimisation removed a real conflict?"


def test_ablation_scope_size(benchmark, analyses):
    """Our solver's own knob: universe size (ids per model).  k=2 is the
    default; the benchmark verifies the benchmark verdicts are stable at
    k=3 (larger scopes find no new SmallBank counterexamples) and reports
    the cost of the extra rows."""
    from repro.verifier import verify_application

    def run(k):
        # Exactness matters here: use the paper's full per-check budget
        # (SmallBank is small; larger scopes need the headroom).
        from repro.verifier import CheckConfig

        config = CheckConfig(ids_per_model=k, timeout_s=4.0)
        report = verify_application(analyses["smallbank"], config)
        return report

    report_k2 = benchmark.pedantic(run, args=(2,), rounds=1, iterations=1)
    start = time.perf_counter()
    report_k3 = run(3)
    k3_time = time.perf_counter() - start

    lines = [
        "Ablation — scope size (SmallBank)",
        f"{'ids/model':>10} {'restr':>6} {'com':>4} {'sem':>4} {'time (s)':>9}",
        "-" * 40,
        f"{2:10d} {len(report_k2.restrictions):6d} "
        f"{len(report_k2.commutativity_failures):4d} "
        f"{len(report_k2.semantic_failures):4d} {report_k2.elapsed_s:9.2f}",
        f"{3:10d} {len(report_k3.restrictions):6d} "
        f"{len(report_k3.commutativity_failures):4d} "
        f"{len(report_k3.semantic_failures):4d} {k3_time:9.2f}",
    ]
    emit("ablation_scope", lines)
    assert report_k2.restriction_pairs() == report_k3.restriction_pairs()