"""Micro-benchmarks of the individual layers (not a paper table; useful
for tracking performance regressions of the substrate itself):

* ORM query execution against the in-memory database;
* SOIR reference-interpreter path execution (run and apply modes);
* analyzer throughput (paths discovered per second);
* a single bounded-model-finder check;
* a single symbolic-engine (solver) check;
* coordination-service grant/release cycles.
"""

from __future__ import annotations

from repro.analyzer import analyze_application
from repro.apps.smallbank import build_app as build_smallbank
from repro.georep import CoordinationService
from repro.orm import Database
from repro.soir.interp import apply_path, run_path
from repro.soir.state import DBState
from repro.verifier import CheckConfig, PairChecker, SmtPairChecker
from repro.web import Client


def test_micro_orm_filtered_query(benchmark):
    app = build_smallbank()
    db = Database(app.registry)
    account = app.registry.get_model("Account")
    with db.activate():
        for i in range(50):
            account.objects.create(name=f"acct{i}", checking=i, savings=i)

        def query():
            return account.objects.filter(checking__gte=25).count()

        result = benchmark(query)
    assert result == 25


def test_micro_http_request_dispatch(benchmark):
    app = build_smallbank()
    client = Client(app, Database(app.registry))
    account = app.registry.get_model("Account")
    with client.db.activate():
        account.objects.create(name="alice", checking=100, savings=0)

    result = benchmark(lambda: client.get("/balance/alice"))
    assert result.ok


def _transact_setup():
    analysis = analyze_application(build_smallbank())
    path = [p for p in analysis.effectful_paths
            if p.view == "TransactSavings"][0]
    state = DBState.empty(analysis.schema)
    state.insert_row("Account", "a", {"name": "a", "checking": 5, "savings": 5})
    env = {"arg_url_name": "a", "arg_POST_amount": -2}
    return analysis, path, state, env


def test_micro_interp_run_path(benchmark):
    analysis, path, state, env = _transact_setup()
    outcome = benchmark(run_path, path, state, env, analysis.schema)
    assert outcome.committed


def test_micro_interp_apply_path(benchmark):
    analysis, path, state, env = _transact_setup()
    result = benchmark(apply_path, path, state, env, analysis.schema)
    assert result.table("Account")["a"]["savings"] == 3


def test_micro_analyzer_throughput(benchmark):
    result = benchmark(lambda: analyze_application(build_smallbank()))
    assert len(result.paths) == 15


def test_micro_enum_check(benchmark):
    analysis, path, _, _ = _transact_setup()

    def check():
        checker = PairChecker(path, path, analysis.schema, CheckConfig())
        return checker.check_semantic()

    result = benchmark.pedantic(check, rounds=3, iterations=1)
    assert result.outcome.value == "fail"


def test_micro_smt_check(benchmark):
    analysis, path, _, _ = _transact_setup()

    def check():
        checker = SmtPairChecker(path, path, analysis.schema,
                                 CheckConfig(timeout_s=10.0))
        return checker.check_semantic()

    result = benchmark.pedantic(check, rounds=3, iterations=1)
    assert result.outcome.value == "fail"


def test_micro_coordination_cycle(benchmark):
    table = {frozenset(("W",))}

    def cycle():
        service = CoordinationService(table)
        tickets = [service.request("W", {"k": i % 4}, lambda t: None)
                   for i in range(32)]
        for ticket in tickets:
            service.release(ticket)
        return service

    service = benchmark(cycle)
    assert service.active_count == 0
    assert service.queue_length == 0
