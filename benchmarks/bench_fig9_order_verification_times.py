"""Figure 9 — PostGraduation verification times with order enabled and
disabled, split into commutativity-check and semantic-check time.

The paper's finding: since PostGraduation uses no order-related
primitives, the decoupled encoding adds *no* verification-time cost —
times (and results, Table 7) are indistinguishable with order on or off."""

from __future__ import annotations

from conftest import emit, quick_config
from repro.verifier import verify_application


def test_fig9_order_times(benchmark, analyses):
    def run_both():
        with_order = verify_application(
            analyses["postgraduation"], quick_config(order_enabled=True)
        )
        without_order = verify_application(
            analyses["postgraduation"], quick_config(order_enabled=False)
        )
        return with_order, without_order

    with_order, without_order = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    lines = [
        "Figure 9 — PostGraduation verification time, order on/off",
        f"{'':>14} {'com (s)':>9} {'sem (s)':>9} {'total (s)':>10}",
        "-" * 46,
        f"{'has order':>14} {with_order.time_commutativity_s:9.2f} "
        f"{with_order.time_semantic_s:9.2f} {with_order.elapsed_s:10.2f}",
        f"{'no order':>14} {without_order.time_commutativity_s:9.2f} "
        f"{without_order.time_semantic_s:9.2f} {without_order.elapsed_s:10.2f}",
    ]
    emit("fig9", lines)

    # Identical results; times within noise of each other (the paper shows
    # indistinguishable box plots).
    assert with_order.restriction_pairs() == without_order.restriction_pairs()
    slower = max(with_order.elapsed_s, without_order.elapsed_s)
    faster = min(with_order.elapsed_s, without_order.elapsed_s)
    assert slower / max(faster, 1e-9) < 2.0
