"""Pair-sweep benchmark: cold vs. warm vs. parallel verification.

Measures the scheduling engine (``repro.engine``) over the bundled
applications and writes ``BENCH_pair_sweep.json`` at the repo root — the
perf trajectory for the verifier hot path:

* **cold**   — serial sweep into an empty cache (the baseline every run
  used to pay), measured best-of-``--repeat`` so the gated numbers are
  robust to scheduler noise;
* **warm**   — the same sweep again: every pair must replay from the
  cache with zero solver calls;
* **parallel** — cold sweep with ``--jobs`` workers into a fresh cache.

The output file holds two things: ``current`` (the full result of the
latest run, the shape earlier revisions wrote at the top level) and
``trajectory`` (an append-only list of dated per-run summaries).  Each
run *appends* to the trajectory instead of overwriting it, so committed
history accumulates across PRs and ``tools/bench_gate.py`` can fail a
run that regressed against the previous comparable entry.  A legacy
single-result file is migrated by synthesizing its entry first.

Runs standalone (``python benchmarks/bench_pair_sweep.py``) so CI can
invoke it without the pytest-benchmark harness.  ``--smoke`` shrinks the
search budgets and the app set for a fast correctness-oriented pass; it
also *asserts* that warm runs solve zero pairs and that all three modes
agree on the restriction set.

Budget note: the solver budget is sample-bounded, not time-bounded
(``timeout_s`` is set high) so verdicts are deterministic under CPU
contention — see docs/ENGINE.md on timeouts vs. determinism.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_pair_sweep.json"

DEFAULT_APPS = ["smallbank", "courseware", "todo", "postgraduation"]
SMOKE_APPS = ["smallbank", "courseware"]


def _build(name: str):
    import importlib

    module = importlib.import_module(f"repro.apps.{name}")
    return module.build_app()


def _config(smoke: bool):
    from repro.verifier import CheckConfig

    if smoke:
        return CheckConfig(timeout_s=30.0, max_samples=60,
                           max_exhaustive=800)
    return CheckConfig(timeout_s=30.0, max_samples=400,
                       max_exhaustive=6000)


def sweep_app(name: str, jobs: int, smoke: bool, repeat: int = 3) -> dict:
    from repro.analyzer import analyze_application
    from repro.verifier import verify_application

    analysis = analyze_application(_build(name))
    config = _config(smoke)
    row: dict = {
        "app": name,
        "effectful_paths": len(analysis.effectful_paths),
        "modes": {},
    }
    restriction_sets = {}

    def measure(mode: str, report, wall: float) -> None:
        metrics = report.metrics
        row["modes"][mode] = {
            "wall_s": round(wall, 4),
            "solve_s": round(report.time_solve_s, 4),
            "checks": report.checks,
            "restrictions": len(report.restrictions),
            "solver_calls": metrics["solver_calls"],
            "pruned": metrics["pruned"],
            "class_count": metrics["class_count"],
            "shared": metrics["shared"],
            "cache_hits": metrics["cache_hits"],
            "cache_misses": metrics["cache_misses"],
            "engine_mode": metrics["mode"],
            "jobs": metrics["jobs_used"],
            "worker_utilization": round(
                metrics["worker_utilization"], 3),
        }
        restriction_sets[mode] = sorted(
            sorted(pair) for pair in report.restriction_pairs()
        )

    with tempfile.TemporaryDirectory(prefix="noctua-bench-") as tmp:
        # The cold sweep is the gated measurement and sub-second on the
        # smoke apps, where scheduler noise on a shared machine easily
        # exceeds the gate threshold — so run it best-of-N into a fresh
        # cache each time and record the minimum (min is the standard
        # noise-robust statistic for a deterministic workload).
        best = None
        for attempt in range(max(1, repeat)):
            serial_dir = pathlib.Path(tmp) / f"serial{attempt}"
            started = time.perf_counter()
            report = verify_application(analysis, config, use_cache=True,
                                        jobs=1, cache_dir=str(serial_dir))
            wall = time.perf_counter() - started
            if best is None or wall < best[1]:
                best = (report, wall)
            warm_dir = serial_dir  # any attempt's cache serves the warm run
        measure("cold", *best)

        runs = [
            ("warm", dict(jobs=1, cache_dir=str(warm_dir))),
            ("parallel", dict(jobs=jobs,
                              cache_dir=str(pathlib.Path(tmp) / "par"))),
        ]
        for mode, kwargs in runs:
            started = time.perf_counter()
            report = verify_application(analysis, config, use_cache=True,
                                        **kwargs)
            wall = time.perf_counter() - started
            measure(mode, report, wall)
    row["restrictions_agree"] = (
        restriction_sets["cold"] == restriction_sets["warm"]
        == restriction_sets["parallel"]
    )
    row["warm_solved_zero"] = (
        row["modes"]["warm"]["solver_calls"] == 0
        and row["modes"]["warm"]["cache_misses"] == 0
    )
    return row


#: the one-view edit for the incremental measurement: touches
#: ``complete_task`` without changing any verdict, so the warm cycle
#: re-solves only that view's pairs
INCR_EDIT_OLD = "task.done = True"
INCR_EDIT_NEW = "task.done = True\n        task.priority = 1"


def incremental_reverify(smoke: bool, repeat: int = 3) -> dict:
    """Cold full-service cycle vs. the warm cycle after one view edit.

    Uses the continuous-verification service machinery end to end
    (export, watch, invalidation preview, incremental sweep, prune) on
    the todo app — the daemon's steady-state cost, not just the raw
    scheduler's."""
    from repro.service import (
        VerificationService,
        directory_spec,
        export_builtin_app,
    )

    config = _config(smoke)
    best_cold = best_warm = None
    warm_stats = None
    for attempt in range(max(1, repeat)):
        with tempfile.TemporaryDirectory(prefix="noctua-incr-") as tmp:
            app_dir = pathlib.Path(tmp) / "app"
            export_builtin_app("todo", app_dir)
            service = VerificationService(
                [directory_spec("todo", str(app_dir))], config,
                cache_dir=str(pathlib.Path(tmp) / "cache"))
            [cold] = service.run_cycle()
            source = app_dir / "app.py"
            source.write_text(source.read_text().replace(
                INCR_EDIT_OLD, INCR_EDIT_NEW))
            [warm] = service.run_cycle()
            if best_cold is None or cold.wall_s < best_cold:
                best_cold = cold.wall_s
            if best_warm is None or warm.wall_s < best_warm:
                best_warm = warm.wall_s
                warm_stats = warm
    return {
        "app": "todo",
        "cold_wall_s": round(best_cold, 4),
        "warm_wall_s": round(best_warm, 4),
        "pairs_total": warm_stats.pairs_total,
        "invalidated": len(warm_stats.invalidated),
        "solver_calls": warm_stats.solver_calls,
        "invalidated_fraction": round(
            len(warm_stats.invalidated) / warm_stats.pairs_total, 4),
    }


def reduction_ab(name: str, smoke: bool, repeat: int = 3) -> dict:
    """A-B the pre-solve reduction pipeline on one app: cold sweep with
    reduction on vs off (no cache), asserting byte-identical restriction
    sets — the headline solver-call saving and its wall-clock effect."""
    from repro.analyzer import analyze_application
    from repro.verifier import verify_application

    analysis = analyze_application(_build(name))
    config = _config(smoke)
    out: dict = {"app": name}
    sets = {}
    for key, reduce_on in (("reduced", True), ("unreduced", False)):
        best = None
        for _ in range(max(1, repeat)):
            started = time.perf_counter()
            report = verify_application(analysis, config, use_cache=False,
                                        jobs=1, reduce=reduce_on)
            wall = time.perf_counter() - started
            if best is None or wall < best[1]:
                best = (report, wall)
        report, wall = best
        metrics = report.metrics
        out[key] = {
            "wall_s": round(wall, 4),
            "solver_calls": metrics["solver_calls"],
            "class_count": metrics["class_count"],
            "shared": metrics["shared"],
            "pruned": metrics["pruned"],
        }
        sets[key] = sorted(
            sorted(pair) for pair in report.restriction_pairs()
        )
    out["restrictions_agree"] = sets["reduced"] == sets["unreduced"]
    out["solver_calls_saved"] = (out["unreduced"]["solver_calls"]
                                 - out["reduced"]["solver_calls"])
    return out


def trajectory_entry(result: dict, *, date: str, label: str = "") -> dict:
    """Summarize one full benchmark result as a dated trajectory row."""
    totals = {"cold_wall_s": 0.0, "cold_solve_s": 0.0,
              "warm_wall_s": 0.0, "parallel_wall_s": 0.0,
              "solver_calls": 0.0, "class_count": 0.0,
              "pruned_pairs": 0.0}
    per_app: dict[str, dict] = {}
    for row in result["apps"]:
        modes = row["modes"]
        totals["cold_wall_s"] += modes["cold"]["wall_s"]
        totals["cold_solve_s"] += modes["cold"]["solve_s"]
        totals["warm_wall_s"] += modes["warm"]["wall_s"]
        totals["parallel_wall_s"] += modes["parallel"]["wall_s"]
        # reduction-era keys; absent in legacy results being migrated
        totals["solver_calls"] += modes["cold"].get("solver_calls", 0)
        totals["class_count"] += modes["cold"].get("class_count", 0)
        totals["pruned_pairs"] += modes["cold"].get("pruned", 0)
        per_app[row["app"]] = {
            "cold_wall_s": modes["cold"]["wall_s"],
            "cold_solve_s": modes["cold"]["solve_s"],
            "warm_wall_s": modes["warm"]["wall_s"],
            "parallel_wall_s": modes["parallel"]["wall_s"],
        }
    incremental = result.get("incremental")
    if incremental:  # absent in legacy results being migrated
        totals["incr_cold_wall_s"] = incremental["cold_wall_s"]
        totals["incr_warm_wall_s"] = incremental["warm_wall_s"]
    entry = {
        "date": date,
        "smoke": result["smoke"],
        "jobs": result["jobs"],
        "apps": sorted(per_app),
        "totals": {k: round(v, 4) for k, v in totals.items()},
        "per_app": per_app,
    }
    if incremental:
        entry["incremental"] = incremental
    ab = result.get("reduction_ab")
    if ab:
        entry["reduction_ab"] = ab
    if label:
        entry["label"] = label
    return entry


def load_trajectory(out_path: pathlib.Path) -> list[dict]:
    """Read the committed trajectory, migrating a legacy result file
    (pre-trajectory schema: the full result at the top level) into a
    single synthesized entry."""
    try:
        previous = json.loads(out_path.read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(previous, dict):
        return []
    if isinstance(previous.get("trajectory"), list):
        return previous["trajectory"]
    if isinstance(previous.get("apps"), list):  # legacy single-result file
        try:
            return [trajectory_entry(previous, date="(pre-trajectory)")]
        except (KeyError, TypeError):
            return []
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", nargs="*", default=None,
                        help="applications to sweep (default: "
                             f"{' '.join(DEFAULT_APPS)})")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel mode")
    parser.add_argument("--smoke", action="store_true",
                        help="small budgets + small app set; assert "
                             "warm-cache runs solve zero pairs")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="output JSON path (default: repo root)")
    parser.add_argument("--label", default="",
                        help="free-form tag recorded on the trajectory "
                             "entry (e.g. a PR number)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="cold-sweep repetitions; the minimum wall "
                             "time is recorded (default: 3)")
    args = parser.parse_args(argv)

    apps = args.apps or (SMOKE_APPS if args.smoke else DEFAULT_APPS)
    rows = []
    for name in apps:
        print(f"sweeping {name} ...", flush=True)
        row = sweep_app(name, args.jobs, args.smoke, repeat=args.repeat)
        rows.append(row)
        cold = row["modes"]["cold"]
        warm = row["modes"]["warm"]
        par = row["modes"]["parallel"]
        print(f"  cold     {cold['wall_s']:8.3f} s wall  "
              f"{cold['solver_calls']:4d} solved")
        print(f"  warm     {warm['wall_s']:8.3f} s wall  "
              f"{warm['solver_calls']:4d} solved  "
              f"{warm['cache_hits']:4d} cache hits")
        print(f"  parallel {par['wall_s']:8.3f} s wall  "
              f"{par['solver_calls']:4d} solved  "
              f"x{par['jobs']} {par['engine_mode']}  "
              f"util {par['worker_utilization']:.0%}")
        print(f"  restriction sets agree: {row['restrictions_agree']}")

    print("incremental re-verify (service, todo) ...", flush=True)
    incremental = incremental_reverify(args.smoke, repeat=args.repeat)
    print(f"  cold cycle {incremental['cold_wall_s']:8.3f} s wall  "
          f"{incremental['pairs_total']:4d} pairs")
    print(f"  one-edit   {incremental['warm_wall_s']:8.3f} s wall  "
          f"{incremental['invalidated']:4d} invalidated "
          f"({incremental['invalidated_fraction']:.0%})")

    # A-B the reduction pipeline on the largest swept app (most checks)
    ab_app = max(rows, key=lambda r: r["modes"]["cold"]["checks"])["app"]
    print(f"reduction A-B ({ab_app}) ...", flush=True)
    ab = reduction_ab(ab_app, args.smoke, repeat=args.repeat)
    print(f"  reduced    {ab['reduced']['wall_s']:8.3f} s wall  "
          f"{ab['reduced']['solver_calls']:4d} solved  "
          f"{ab['reduced']['class_count']:4d} classes  "
          f"{ab['reduced']['pruned']:4d} pruned")
    print(f"  unreduced  {ab['unreduced']['wall_s']:8.3f} s wall  "
          f"{ab['unreduced']['solver_calls']:4d} solved")
    print(f"  saved {ab['solver_calls_saved']} solver calls; "
          f"restriction sets agree: {ab['restrictions_agree']}")

    result = {
        "benchmark": "pair_sweep",
        "smoke": args.smoke,
        "jobs": args.jobs,
        "apps": rows,
        "incremental": incremental,
        "reduction_ab": ab,
    }
    out_path = pathlib.Path(args.out)
    trajectory = load_trajectory(out_path)
    today = datetime.date.today().isoformat()
    trajectory.append(trajectory_entry(result, date=today, label=args.label))
    final = {
        "benchmark": "pair_sweep",
        "current": result,
        "trajectory": trajectory,
    }
    out_path.write_text(json.dumps(final, indent=2) + "\n")
    print(f"wrote {out_path} ({len(trajectory)} trajectory entries)")

    failures = []
    for row in rows:
        if not row["restrictions_agree"]:
            failures.append(f"{row['app']}: modes disagree on restrictions")
        if args.smoke and not row["warm_solved_zero"]:
            failures.append(f"{row['app']}: warm run performed solver calls")
    if incremental["solver_calls"] != incremental["invalidated"]:
        failures.append(
            "incremental: warm cycle solved "
            f"{incremental['solver_calls']} pairs but invalidated "
            f"{incremental['invalidated']}")
    if incremental["invalidated_fraction"] >= 0.20:
        failures.append(
            "incremental: one-view edit invalidated "
            f"{incremental['invalidated_fraction']:.0%} of the pairs "
            "(acceptance bar: under 20%)")
    if not ab["restrictions_agree"]:
        failures.append(
            f"reduction A-B ({ab['app']}): reduced and unreduced sweeps "
            "disagree on the restriction set")
    if ab["solver_calls_saved"] < 0:
        failures.append(
            f"reduction A-B ({ab['app']}): reduction *increased* solver "
            f"calls by {-ab['solver_calls_saved']}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
