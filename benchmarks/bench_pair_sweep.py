"""Pair-sweep benchmark: cold vs. warm vs. parallel verification.

Measures the scheduling engine (``repro.engine``) over the bundled
applications and writes ``BENCH_pair_sweep.json`` at the repo root — the
start of the perf trajectory for the verifier hot path:

* **cold**   — serial sweep into an empty cache (the baseline every run
  used to pay);
* **warm**   — the same sweep again: every pair must replay from the
  cache with zero solver calls;
* **parallel** — cold sweep with ``--jobs`` workers into a fresh cache.

Runs standalone (``python benchmarks/bench_pair_sweep.py``) so CI can
invoke it without the pytest-benchmark harness.  ``--smoke`` shrinks the
search budgets and the app set for a fast correctness-oriented pass; it
also *asserts* that warm runs solve zero pairs and that all three modes
agree on the restriction set.

Budget note: the solver budget is sample-bounded, not time-bounded
(``timeout_s`` is set high) so verdicts are deterministic under CPU
contention — see docs/ENGINE.md on timeouts vs. determinism.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_pair_sweep.json"

DEFAULT_APPS = ["smallbank", "courseware", "todo", "postgraduation"]
SMOKE_APPS = ["smallbank", "courseware"]


def _build(name: str):
    import importlib

    module = importlib.import_module(f"repro.apps.{name}")
    return module.build_app()


def _config(smoke: bool):
    from repro.verifier import CheckConfig

    if smoke:
        return CheckConfig(timeout_s=30.0, max_samples=60,
                           max_exhaustive=800)
    return CheckConfig(timeout_s=30.0, max_samples=400,
                       max_exhaustive=6000)


def sweep_app(name: str, jobs: int, smoke: bool) -> dict:
    from repro.analyzer import analyze_application
    from repro.verifier import verify_application

    analysis = analyze_application(_build(name))
    config = _config(smoke)
    row: dict = {
        "app": name,
        "effectful_paths": len(analysis.effectful_paths),
        "modes": {},
    }
    restriction_sets = {}
    with tempfile.TemporaryDirectory(prefix="noctua-bench-") as tmp:
        serial_dir = pathlib.Path(tmp) / "serial"
        parallel_dir = pathlib.Path(tmp) / "parallel"
        runs = [
            ("cold", dict(jobs=1, cache_dir=str(serial_dir))),
            ("warm", dict(jobs=1, cache_dir=str(serial_dir))),
            ("parallel", dict(jobs=jobs, cache_dir=str(parallel_dir))),
        ]
        for mode, kwargs in runs:
            started = time.perf_counter()
            report = verify_application(analysis, config, use_cache=True,
                                        **kwargs)
            wall = time.perf_counter() - started
            metrics = report.metrics
            row["modes"][mode] = {
                "wall_s": round(wall, 4),
                "solve_s": round(report.time_solve_s, 4),
                "checks": report.checks,
                "restrictions": len(report.restrictions),
                "solver_calls": metrics["solver_calls"],
                "pruned": metrics["pruned"],
                "cache_hits": metrics["cache_hits"],
                "cache_misses": metrics["cache_misses"],
                "engine_mode": metrics["mode"],
                "jobs": metrics["jobs_used"],
                "worker_utilization": round(
                    metrics["worker_utilization"], 3),
            }
            restriction_sets[mode] = sorted(
                sorted(pair) for pair in report.restriction_pairs()
            )
    row["restrictions_agree"] = (
        restriction_sets["cold"] == restriction_sets["warm"]
        == restriction_sets["parallel"]
    )
    row["warm_solved_zero"] = (
        row["modes"]["warm"]["solver_calls"] == 0
        and row["modes"]["warm"]["cache_misses"] == 0
    )
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", nargs="*", default=None,
                        help="applications to sweep (default: "
                             f"{' '.join(DEFAULT_APPS)})")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker count for the parallel mode")
    parser.add_argument("--smoke", action="store_true",
                        help="small budgets + small app set; assert "
                             "warm-cache runs solve zero pairs")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="output JSON path (default: repo root)")
    args = parser.parse_args(argv)

    apps = args.apps or (SMOKE_APPS if args.smoke else DEFAULT_APPS)
    rows = []
    for name in apps:
        print(f"sweeping {name} ...", flush=True)
        row = sweep_app(name, args.jobs, args.smoke)
        rows.append(row)
        cold = row["modes"]["cold"]
        warm = row["modes"]["warm"]
        par = row["modes"]["parallel"]
        print(f"  cold     {cold['wall_s']:8.3f} s wall  "
              f"{cold['solver_calls']:4d} solved")
        print(f"  warm     {warm['wall_s']:8.3f} s wall  "
              f"{warm['solver_calls']:4d} solved  "
              f"{warm['cache_hits']:4d} cache hits")
        print(f"  parallel {par['wall_s']:8.3f} s wall  "
              f"{par['solver_calls']:4d} solved  "
              f"x{par['jobs']} {par['engine_mode']}  "
              f"util {par['worker_utilization']:.0%}")
        print(f"  restriction sets agree: {row['restrictions_agree']}")

    result = {
        "benchmark": "pair_sweep",
        "smoke": args.smoke,
        "jobs": args.jobs,
        "apps": rows,
    }
    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")

    failures = []
    for row in rows:
        if not row["restrictions_agree"]:
            failures.append(f"{row['app']}: modes disagree on restrictions")
        if args.smoke and not row["warm_solved_zero"]:
            failures.append(f"{row['app']}: warm run performed solver calls")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
