"""Shared fixtures and helpers for the evaluation benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation (§6).  Regenerated tables are printed and also written to
``benchmarks/out/`` so EXPERIMENTS.md can reference them.

Budgets: by default the verifier runs with reduced search budgets so the
whole suite finishes on a laptop in minutes.  Set ``REPRO_FULL=1`` for
paper-grade budgets (the 2 s per-check timeout of §6.1); expect the
OwnPhotos sweep to take tens of minutes, against the paper's ~6 h with Z3.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analyzer import analyze_application
from repro.verifier import CheckConfig, verify_application

OUT_DIR = pathlib.Path(__file__).parent / "out"

FULL = bool(int(os.environ.get("REPRO_FULL", "0")))


def quick_config(**overrides) -> CheckConfig:
    if FULL:
        base = dict(timeout_s=2.0, max_samples=1200, max_exhaustive=30000)
    else:
        base = dict(timeout_s=0.4, max_samples=200, max_exhaustive=2500)
    base.update(overrides)
    return CheckConfig(**base)


def light_config(**overrides) -> CheckConfig:
    """Extra-light budget for the largest application."""
    if FULL:
        return quick_config(**overrides)
    base = dict(timeout_s=0.15, max_samples=80, max_exhaustive=600)
    base.update(overrides)
    return CheckConfig(**base)


def emit(name: str, lines: list[str]) -> None:
    """Print a regenerated table and persist it under benchmarks/out/."""
    text = "\n".join(lines)
    print("\n" + text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


# ---------------------------------------------------------------------------
# Cached application analyses (session scope: analysis is cheap, but the
# verification fixtures below are shared across table/figure benches).
# ---------------------------------------------------------------------------

def _builders():
    from repro.apps.courseware import build_app as courseware
    from repro.apps.ownphotos import build_app as ownphotos
    from repro.apps.postgraduation import build_app as postgraduation
    from repro.apps.smallbank import build_app as smallbank
    from repro.apps.todo import build_app as todo
    from repro.apps.zhihu import build_app as zhihu

    return {
        "todo": todo,
        "postgraduation": postgraduation,
        "zhihu": zhihu,
        "ownphotos": ownphotos,
        "smallbank": smallbank,
        "courseware": courseware,
    }


@pytest.fixture(scope="session")
def builders():
    return _builders()


@pytest.fixture(scope="session")
def analyses(builders):
    return {name: analyze_application(b()) for name, b in builders.items()}


@pytest.fixture(scope="session")
def verification_reports(analyses):
    """Table 6 / Figure 8 data: verification of the four real apps."""
    reports = {}
    for name in ("todo", "postgraduation", "zhihu"):
        reports[name] = verify_application(analyses[name], quick_config())
    reports["ownphotos"] = verify_application(
        analyses["ownphotos"], light_config()
    )
    return reports
