"""Table 3 — implementation cost of each Noctua module (lines of code).

The paper reports the LoC of the analyzer (path traversal / Django
integration / misc.) and the verifier.  This bench counts the same split
for this reproduction and times the counting (trivially fast; included so
the table regenerates under ``--benchmark-only``)."""

from __future__ import annotations

import pathlib

from conftest import emit

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"

MODULES = {
    "Analyzer (path traversal)": ["analyzer/pathfinder.py", "analyzer/engine.py",
                                  "analyzer/context.py"],
    "Analyzer (framework integration)": ["analyzer/dbproxy.py",
                                         "analyzer/request.py",
                                         "analyzer/annotations.py"],
    "Analyzer (misc.)": ["analyzer/symbolic.py", "analyzer/__init__.py"],
    "Verifier (enumerative engine)": ["verifier/enumcheck.py",
                                      "verifier/scopes.py",
                                      "verifier/runner.py",
                                      "verifier/restrictions.py",
                                      "verifier/__init__.py"],
    "Verifier (symbolic engine)": ["verifier/encoding.py",
                                   "verifier/smtcheck.py"],
    "SMT substrate (solver + terms)": ["smt/terms.py", "smt/solver.py",
                                       "smt/__init__.py"],
    "SOIR (IR + reference semantics)": ["soir/types.py", "soir/schema.py",
                                        "soir/expr.py", "soir/commands.py",
                                        "soir/path.py", "soir/pretty.py",
                                        "soir/validate.py", "soir/interp.py",
                                        "soir/state.py", "soir/serialize.py",
                                        "soir/__init__.py"],
}


def count_loc() -> dict[str, int]:
    out = {}
    for label, files in MODULES.items():
        total = 0
        for rel in files:
            with open(SRC / rel) as f:
                total += sum(1 for _ in f)
        out[label] = total
    return out


def test_table3_implementation_cost(benchmark):
    counts = benchmark(count_loc)
    lines = ["Table 3 — implementation cost (lines of Python code)",
             "-" * 56]
    for label, loc in counts.items():
        lines.append(f"{label:40s} {loc:6d}")
    lines.append("-" * 56)
    lines.append(f"{'total':40s} {sum(counts.values()):6d}")
    emit("table3", lines)
    # Sanity: this is a real implementation, not a stub.
    assert counts["Verifier (enumerative engine)"] > 400
    assert counts["Verifier (symbolic engine)"] > 400
    assert sum(counts.values()) > 3000
