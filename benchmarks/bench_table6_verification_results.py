"""Table 6 — overall verification results for the four real applications:
number of checks (= pairs of effectful paths), restrictions, commutativity
failures and semantic failures.

Absolute counts depend on our re-implementations' path inventories; the
structural relations reported by the paper are asserted instead:
``checks = n(n+1)/2`` for n effectful paths, every failure is a
restriction, and restrictions = union of the two failure kinds."""

from __future__ import annotations

import pytest

from conftest import emit, light_config, quick_config
from repro.verifier import verify_application

ORDER = ["todo", "postgraduation", "zhihu", "ownphotos"]


@pytest.mark.parametrize("name", ["todo", "postgraduation", "zhihu"])
def test_table6_verification(benchmark, analyses, name):
    report = benchmark.pedantic(
        verify_application, args=(analyses[name], quick_config()),
        rounds=1, iterations=1,
    )
    n = len(analyses[name].effectful_paths)
    assert report.checks == n * (n + 1) // 2
    failing = {frozenset((v.left, v.right)) for v in report.restrictions}
    com = {frozenset((v.left, v.right)) for v in report.commutativity_failures}
    sem = {frozenset((v.left, v.right)) for v in report.semantic_failures}
    assert failing == com | sem
    benchmark.extra_info.update(report.summary())


def test_table6_ownphotos(benchmark, analyses):
    report = benchmark.pedantic(
        verify_application, args=(analyses["ownphotos"], light_config()),
        rounds=1, iterations=1,
    )
    n = len(analyses["ownphotos"].effectful_paths)
    assert report.checks == n * (n + 1) // 2
    assert report.checks > 6000  # the paper's 7260-check scale
    benchmark.extra_info.update(report.summary())


def test_table6_table(benchmark, verification_reports):
    benchmark(lambda: [verification_reports[n].summary() for n in ORDER])
    lines = [
        "Table 6 — overall verification results",
        f"{'application':>15} {'#checks':>8} {'#restr':>7} "
        f"{'com.fail':>9} {'sem.fail':>9} {'time(s)':>9}",
        "-" * 62,
    ]
    for name in ORDER:
        report = verification_reports[name]
        summary = report.summary()
        lines.append(
            f"{name:>15} {summary['checks']:8d} {summary['restrictions']:7d} "
            f"{summary['com_failures']:9d} {summary['sem_failures']:9d} "
            f"{summary['time_s']:9.1f}"
        )
    emit("table6", lines)
    for name in ORDER:
        assert verification_reports[name].checks > 0
