"""Table 5 — correctness: Noctua vs prior tools on the synthetic
benchmarks.

SmallBank is compared against the Rigi-style baseline, Courseware against
the Hamsaz-style baseline (both operate on hand-written specifications).
Expected: identical restriction sets —

* SmallBank: 0 commutativity failures, 4 semantic failures;
* Courseware: 1 commutativity failure, 1 semantic failure."""

from __future__ import annotations

from conftest import emit, quick_config  # noqa: F401
from repro.verifier import CheckConfig
from repro.baselines import courseware_spec, hamsaz, rigi, smallbank_spec
from repro.verifier import verify_application


def _views(failures):
    return {
        frozenset((v.left.split("[")[0], v.right.split("[")[0]))
        for v in failures
    }


def test_table5_smallbank(benchmark, analyses):
    report = benchmark.pedantic(
        verify_application, args=(analyses["smallbank"], CheckConfig()),
        rounds=1, iterations=1,
    )
    baseline = rigi.analyze(smallbank_spec())
    assert _views(report.commutativity_failures) == baseline.commutativity_failures
    assert _views(report.semantic_failures) == baseline.semantic_failures
    assert len(report.commutativity_failures) == 0
    assert len(report.semantic_failures) == 4


def test_table5_courseware(benchmark, analyses):
    report = benchmark.pedantic(
        verify_application, args=(analyses["courseware"], CheckConfig()),
        rounds=1, iterations=1,
    )
    baseline = hamsaz.analyze(courseware_spec())
    assert _views(report.commutativity_failures) == baseline.conflicting
    assert _views(report.semantic_failures) == baseline.invalidating
    assert len(report.commutativity_failures) == 1
    assert len(report.semantic_failures) == 1


def test_table5_table(benchmark, analyses):
    noctua = benchmark.pedantic(
        lambda: {
            name: verify_application(analyses[name], CheckConfig())
            for name in ("smallbank", "courseware")
        },
        rounds=1, iterations=1,
    )
    baselines = {
        "smallbank": rigi.analyze(smallbank_spec()),
        "courseware": hamsaz.analyze(courseware_spec()),
    }
    lines = [
        "Table 5 — Noctua vs baseline analysis results",
        f"{'application':>12} | {'com (Noctua)':>12} {'com (base)':>10} | "
        f"{'sem (Noctua)':>12} {'sem (base)':>10}",
        "-" * 68,
    ]
    base_com = {
        "smallbank": len(baselines["smallbank"].commutativity_failures),
        "courseware": len(baselines["courseware"].conflicting),
    }
    base_sem = {
        "smallbank": len(baselines["smallbank"].semantic_failures),
        "courseware": len(baselines["courseware"].invalidating),
    }
    for name in ("smallbank", "courseware"):
        lines.append(
            f"{name:>12} | {len(noctua[name].commutativity_failures):12d} "
            f"{base_com[name]:10d} | "
            f"{len(noctua[name].semantic_failures):12d} {base_sem[name]:10d}"
        )
    emit("table5", lines)
