"""Figure 10 — end-to-end throughput of zhihu (ZH) and PostGraduation (PG)
under strong consistency and under PoR consistency at 50% / 30% / 15%
write ratios.

Expected shape (paper §6.5): relaxed consistency beats SC, up to ~2.8x for
ZH, and throughput increases as the write ratio decreases."""

from __future__ import annotations

import pytest

from conftest import emit, quick_config
from repro.georep import (
    DeploymentConfig,
    postgraduation_workload,
    run_modes,
    zhihu_workload,
)
from repro.verifier import operation_conflict_table, verify_application

SIM_CONFIG = DeploymentConfig(duration_ms=400.0, warmup_ms=80.0)

WORKLOADS = {
    "zhihu": zhihu_workload,
    "postgraduation": postgraduation_workload,
}

_cache: dict[str, list] = {}


def sweep(name, builders, analyses):
    if name not in _cache:
        conflicts = operation_conflict_table(
            verify_application(analyses[name], quick_config())
        )
        _cache[name] = run_modes(
            builders[name], WORKLOADS[name], conflicts, config=SIM_CONFIG
        )
    return _cache[name]


@pytest.mark.parametrize("name", ["zhihu", "postgraduation"])
def test_fig10_throughput(benchmark, builders, analyses, name):
    rows = benchmark.pedantic(
        sweep, args=(name, builders, analyses), rounds=1, iterations=1
    )
    lines = [
        f"Figure 10 — throughput, {name}",
        f"{'mode':>5} {'throughput (req/s)':>20} {'vs SC':>7}",
        "-" * 36,
    ]
    sc = rows[0].throughput_rps
    for row in rows:
        lines.append(
            f"{row.mode:>5} {row.throughput_rps:20.1f} "
            f"{row.throughput_rps / sc:6.2f}x"
        )
    emit(f"fig10_{name}", lines)

    throughputs = [r.throughput_rps for r in rows]
    # SC < 50% < 30% < 15%; the best relaxed mode wins by a real factor.
    assert throughputs == sorted(throughputs)
    assert throughputs[-1] / throughputs[0] > 1.5
    benchmark.extra_info["speedup_vs_sc"] = throughputs[-1] / throughputs[0]
