"""Table 7 — verification results for PostGraduation with the order
component enabled or disabled.

PostGraduation uses no order-related primitives, so the paper finds
*identical* failure counts with and without order — the point of the
decoupled encoding (§4.2): applications that never order pay nothing for
the order component, while disabling it globally would hurt applications
that do (demonstrated by the synthetic order-using pair asserted below)."""

from __future__ import annotations

from conftest import emit, quick_config
from repro.verifier import verify_application


def _run(analyses, order_enabled: bool):
    config = quick_config(order_enabled=order_enabled)
    return verify_application(analyses["postgraduation"], config)


def test_table7_order_ablation(benchmark, analyses):
    with_order = benchmark.pedantic(
        _run, args=(analyses, True), rounds=1, iterations=1
    )
    without_order = _run(analyses, False)

    lines = [
        "Table 7 — PostGraduation with order enabled / disabled",
        f"{'':>18} {'has order':>10} {'no order':>10}",
        "-" * 42,
        f"{'#com failures':>18} {len(with_order.commutativity_failures):10d} "
        f"{len(without_order.commutativity_failures):10d}",
        f"{'#sem failures':>18} {len(with_order.semantic_failures):10d} "
        f"{len(without_order.semantic_failures):10d}",
    ]
    emit("table7", lines)

    # The paper's result: identical failure counts (PG never orders).
    assert (
        len(with_order.commutativity_failures)
        == len(without_order.commutativity_failures)
    )
    assert (
        len(with_order.semantic_failures)
        == len(without_order.semantic_failures)
    )
    assert with_order.restriction_pairs() == without_order.restriction_pairs()


def test_order_using_app_degrades_without_order(benchmark):
    """Counterpoint: an application whose *effectful* path uses an order
    primitive gets conservatively restricted once order is disabled."""
    from repro.analyzer import analyze_application
    from repro.orm import IntegerField, Model, Registry, TextField
    from repro.web import Application, HttpResponse, path

    registry = Registry("ring-buffer")
    with registry.use():

        class Entry(Model):
            body = TextField(default="")
            rank = IntegerField(default=0)

        class Counter(Model):
            hits = IntegerField(default=0)

    def append_entry(request):
        Entry.objects.create(body=request.POST["body"])
        return HttpResponse(status=201)

    def evict_oldest(request):
        oldest = Entry.objects.order_by("rank").first()
        if oldest:
            oldest.delete()
        return HttpResponse(status=200)

    def bump(request, pk):
        # Touches a different model entirely: commutes with eviction under
        # the order-aware encoding; an order-less verifier cannot encode
        # Evict at all and must restrict the pair anyway.
        counter = Counter.objects.get(pk=pk)
        counter.hits = counter.hits + 1
        counter.save()
        return HttpResponse(status=200)

    app = Application("ring", registry, [
        path("append", append_entry, name="Append"),
        path("evict", evict_oldest, name="Evict"),
        path("bump/<int:pk>", bump, name="Bump"),
    ])
    analysis = analyze_application(app)
    with_order = benchmark.pedantic(
        verify_application, args=(analysis, quick_config(order_enabled=True)),
        rounds=1, iterations=1,
    )
    without = verify_application(analysis, quick_config(order_enabled=False))
    # Disabling order can only add restrictions (false positives).
    assert with_order.restriction_pairs() <= without.restriction_pairs()
    assert len(without.restrictions) > len(with_order.restrictions)
