"""Figure 7 — analysis times for codebases scaled x1 / x2 / x3.

The paper doubles and triples each codebase "by repeating the same set of
HTTP endpoints" and shows analysis time scaling linearly with codebase
size.  We do exactly that: every application's endpoint list is mounted
once, twice and three times (under distinct prefixes), and the analyzer
runs over the multiplied endpoint set."""

from __future__ import annotations

import time

import pytest

from conftest import emit
from repro.analyzer import analyze_application
from repro.web import Application, include

ORDER = ["todo", "postgraduation", "zhihu", "ownphotos"]


def scaled_app(builder, factor: int) -> Application:
    app = builder()
    patterns = list(app.urlpatterns)
    for copy in range(1, factor):
        patterns.extend(include(f"copy{copy}", app.urlpatterns))
    return Application(
        f"{app.name}-x{factor}", app.registry, patterns,
        source_loc=app.source_loc * factor,
    )


@pytest.mark.parametrize("name", ORDER)
@pytest.mark.parametrize("factor", [1, 2, 3])
def test_fig7_analysis_scaling(benchmark, builders, name, factor):
    app = scaled_app(builders[name], factor)
    result = benchmark.pedantic(
        analyze_application, args=(app,), rounds=3, iterations=1
    )
    assert len(result.paths) > 0
    benchmark.extra_info["code_paths"] = len(result.paths)
    benchmark.extra_info["factor"] = factor


def test_fig7_series(benchmark, builders):
    def build_series():
        rows = []
        for name in ORDER:
            times = []
            paths = []
            for factor in (1, 2, 3):
                app = scaled_app(builders[name], factor)
                start = time.perf_counter()
                result = analyze_application(app)
                times.append(time.perf_counter() - start)
                paths.append(len(result.paths))
            rows.append((name, times, paths))
        return rows

    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    lines = [
        "Figure 7 — analysis time vs codebase size (endpoint duplication)",
        f"{'application':>15} {'x1 (s)':>9} {'x2 (s)':>9} {'x3 (s)':>9} "
        f"{'paths x1/x2/x3':>18}",
        "-" * 66,
    ]
    for name, times, paths in rows:
        lines.append(
            f"{name:>15} {times[0]:9.3f} {times[1]:9.3f} {times[2]:9.3f} "
            f"{paths[0]:5d}/{paths[1]}/{paths[2]}"
        )
    emit("fig7", lines)
    # Linear-scaling shape: tripled codebase costs roughly 3x (not 9x).
    for name, times, paths in rows:
        assert paths[2] == 3 * paths[0]
        if times[0] > 0.005:  # below that, timer noise dominates
            assert times[2] < 6 * times[0]
