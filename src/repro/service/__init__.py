"""Continuous verification service (the "practical" in the paper title).

A long-running daemon that turns the batch pipeline into infrastructure:
it watches registered application sources (deterministic polling with
content hashes — no extra dependencies), re-analyzes on change,
re-verifies *only* the pairs whose content fingerprints miss the
on-disk cache, prunes stale cache entries, and publishes updated
restriction sets to subscribed geo-replicated deployments, which
hot-reload them between simulation events without restart.  An HTTP
control plane (built on :mod:`repro.web`'s routing primitives) exposes
app state, restriction sets, reports, Prometheus metrics, the last
re-verification trace, and a forced-reverify hook.

Entry points: ``repro serve`` (daemon + HTTP), ``repro serve --once``
(one deterministic watch→invalidate→re-verify cycle, for tests/CI) and
``repro cache`` (cache stats / pruning).  See docs/SERVICE.md.
"""

from .daemon import (
    AppState,
    CycleStats,
    DEFAULT_POLL_INTERVAL_S,
    LockedMetricsRegistry,
    VerificationService,
    live_pair_fingerprints,
)
from .http import (
    ControlPlane,
    PROM_CONTENT_TYPE,
    ServiceHTTPServer,
    encode_response,
)
from .specs import (
    AppSpec,
    BUILTIN_APPS,
    SpecError,
    builtin_spec,
    directory_spec,
    export_builtin_app,
    parse_app_arg,
)
from .watcher import SourceWatcher, WatchDelta

__all__ = [
    "AppSpec",
    "AppState",
    "BUILTIN_APPS",
    "ControlPlane",
    "CycleStats",
    "DEFAULT_POLL_INTERVAL_S",
    "LockedMetricsRegistry",
    "PROM_CONTENT_TYPE",
    "ServiceHTTPServer",
    "SourceWatcher",
    "SpecError",
    "VerificationService",
    "WatchDelta",
    "builtin_spec",
    "directory_spec",
    "encode_response",
    "export_builtin_app",
    "live_pair_fingerprints",
    "parse_app_arg",
]
