"""The continuous verification daemon.

One :class:`VerificationService` owns a set of registered applications
(:mod:`repro.service.specs`), a source watcher per app
(:mod:`repro.service.watcher`), the shared on-disk verdict cache, and a
thread-safe metrics registry.  Its cycle is:

    poll sources -> (on change) rebuild + re-analyze the app
                 -> preview which pair fingerprints miss the cache
                 -> run the incremental pair sweep (only misses solve)
                 -> prune stale cache entries
                 -> publish the restriction set if it changed

Invalidation is *free* by construction: pair fingerprints are
content-addressed over ``(path P, path Q, schema, config, engine)``
(:mod:`repro.engine.fingerprint`), so an edited view's pairs simply miss
the cache and everything untouched replays.  The daemon computes the
invalidation preview with exactly the scheduler's pass-1 planner
(:func:`repro.engine.reduction.plan_sweep` — pruning, cache lookup,
signature-class assignment), so the preview names precisely the
*representative* pairs the subsequent sweep will solve: a class member
whose representative misses the cache is not re-solved, it is re-shared,
and the preview counts it accordingly.

Publishing: every app state carries a **restriction-set version**.  The
version bumps only when the endpoint-level conflict table actually
changed — an edit that alters a view body without changing any verdict
re-verifies cheaply and publishes nothing.  Subscribers
(:class:`repro.georep.deployment.RestrictionSetSubscription`) receive
the new table atomically and a live deployment applies it between
simulation events, without restart.

Failure handling rides on PR 5's engine machinery: the sweep runs with
per-pair deadlines and the retry policy, so a hung or crashing pair
degrades to a conservative ``unknown`` verdict instead of wedging the
daemon loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..analyzer import analyze_application
from ..engine.cache import DEFAULT_CACHE_DIR, ResultCache
from ..engine.fingerprint import FingerprintContext
from ..engine.reduction import plan_sweep
from ..engine.scheduler import run_pair_sweep
from ..georep.deployment import RestrictionSetSubscription
from ..metrics import registry as metrics_registry
from ..metrics.registry import MetricsRegistry
from ..obs import tracer as obs
from ..soir.path import AnalysisResult
from ..verifier import CheckConfig
from ..verifier.runner import operation_conflict_table
from .specs import AppSpec
from .watcher import SourceWatcher

#: default seconds between daemon polls
DEFAULT_POLL_INTERVAL_S = 2.0


class LockedMetricsRegistry(MetricsRegistry):
    """A :class:`MetricsRegistry` safe to share between the daemon loop
    and HTTP handler threads (the base class is deliberately
    single-context; the daemon is the one multi-threaded consumer)."""

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.RLock()

    def inc(self, name, value=1.0, **labels):
        with self._lock:
            super().inc(name, value, **labels)

    def set_gauge(self, name, value, **labels):
        with self._lock:
            super().set_gauge(name, value, **labels)

    def observe(self, name, value, **labels):
        with self._lock:
            super().observe(name, value, **labels)

    def snapshot(self):
        with self._lock:
            return super().snapshot()

    def value(self, name, **labels):
        with self._lock:
            return super().value(name, **labels)

    def total(self, name):
        with self._lock:
            return super().total(name)


@dataclass(frozen=True)
class CycleStats:
    """Outcome of one re-verification of one app."""

    app: str
    trigger: str  # initial | change | forced | once
    files: tuple[str, ...]
    #: pairs whose fingerprint missed the cache before the sweep, in
    #: sweep order — exactly what the sweep will solve (class members
    #: whose representative is being solved are *shared*, not listed)
    invalidated: tuple[tuple[str, str], ...]
    pairs_total: int
    solver_calls: int
    #: reduction-pipeline effect this cycle: signature classes formed
    #: and verdicts shared from representatives
    classes: int
    shared: int
    cache_hits: int
    pruned_entries: int
    restrictions: int
    unknowns: int
    version: int
    version_changed: bool
    wall_s: float

    def to_obj(self) -> dict:
        return {
            "app": self.app,
            "trigger": self.trigger,
            "files": list(self.files),
            "invalidated": [list(pair) for pair in self.invalidated],
            "invalidated_count": len(self.invalidated),
            "pairs_total": self.pairs_total,
            "solver_calls": self.solver_calls,
            "classes": self.classes,
            "shared": self.shared,
            "cache_hits": self.cache_hits,
            "pruned_entries": self.pruned_entries,
            "restrictions": self.restrictions,
            "unknowns": self.unknowns,
            "version": self.version,
            "version_changed": self.version_changed,
            "wall_s": round(self.wall_s, 4),
        }


@dataclass
class AppState:
    """Everything the daemon knows about one registered app."""

    spec: AppSpec
    watcher: SourceWatcher
    analysis: AnalysisResult | None = None
    report_obj: dict | None = None
    restrictions: set[frozenset[str]] = field(default_factory=set)
    conflict_table: set[frozenset[str]] = field(default_factory=set)
    version: int = 0
    last_cycle: CycleStats | None = None
    subscriptions: list[RestrictionSetSubscription] = field(
        default_factory=list)
    error: str = ""


def live_pair_fingerprints(
    analysis: AnalysisResult,
    config: CheckConfig,
    engine: str = "enum",
    *,
    reduce: bool = True,
) -> set[str]:
    """The pair fingerprints a sweep over ``analysis`` would reference —
    the scheduler's ``live`` set, reproduced for out-of-sweep pruning
    (``repro cache --prune`` and the daemon's post-sweep prune).

    Built from the same planner the scheduler executes, so the survivor
    set is exact under reduction too: class members keep their own
    fingerprints live (they cache under them), rw-pruned pairs do not."""
    fingerprints = FingerprintContext(analysis.schema, config, engine)
    plan = plan_sweep(analysis, config, engine=engine, reduce=reduce,
                      fingerprints=fingerprints)
    return plan.live_fingerprints()


class VerificationService:
    """Watch registered apps, re-verify on change, publish restrictions."""

    def __init__(
        self,
        specs: list[AppSpec],
        config: CheckConfig | None = None,
        *,
        engine: str = "enum",
        jobs: int = 1,
        cache_dir: str | None = None,
        poll_interval_s: float = DEFAULT_POLL_INTERVAL_S,
        prune: bool = True,
        reduce: bool = True,
        registry: MetricsRegistry | None = None,
    ):
        self.config = config or CheckConfig()
        self.engine = engine
        self.reduce = reduce
        self.jobs = jobs
        self.cache_dir = str(cache_dir or DEFAULT_CACHE_DIR)
        self.poll_interval_s = poll_interval_s
        self.prune = prune
        self.registry = registry or LockedMetricsRegistry()
        #: serializes re-verification cycles (daemon loop vs forced HTTP
        #: reverify); never held while answering reads
        self._verify_lock = threading.RLock()
        #: guards app-state swaps so HTTP readers see consistent states
        self._state_lock = threading.RLock()
        self.apps: dict[str, AppState] = {}
        self.last_trace: dict | None = None
        self.started_at = time.time()
        for spec in specs:
            self.register(spec)

    # -- registration ------------------------------------------------------

    def register(self, spec: AppSpec) -> AppState:
        if spec.name in self.apps:
            raise ValueError(f"app {spec.name!r} already registered")
        watcher = SourceWatcher(spec.source_dir)
        watcher.prime()
        state = AppState(spec=spec, watcher=watcher)
        with self._state_lock:
            self.apps[spec.name] = state
        return state

    def _state(self, name: str) -> AppState:
        try:
            return self.apps[name]
        except KeyError:
            raise KeyError(f"unknown app {name!r}") from None

    # -- invalidation ------------------------------------------------------

    def preview_invalidation(
        self, analysis: AnalysisResult,
    ) -> tuple[list[tuple[str, str]], set[str], int, int, int]:
        """Run the scheduler's pass-1 planner against the current cache.

        Returns ``(invalidated, live_fps, pairs_total, classes,
        shared)`` where ``invalidated`` lists, in sweep order, the
        *representative* pairs the subsequent sweep will hand to a
        solver (class members sharing a representative's verdict are
        counted in ``shared``, not listed), ``live_fps`` is the full
        referenced-fingerprint set (the prune survivor list), and
        ``pairs_total`` counts every pair of the quadratic sweep
        including pruned ones.  This is literally
        :meth:`~repro.engine.reduction.SweepPlan.invalidated` of the
        same plan the sweep executes, which is what keeps
        ``preview == actual solver calls`` an invariant rather than a
        coincidence."""
        cache = ResultCache(self.cache_dir, analysis.app_name)
        fingerprints = FingerprintContext(
            analysis.schema, self.config, self.engine)
        plan = plan_sweep(analysis, self.config, engine=self.engine,
                          reduce=self.reduce, cache=cache,
                          fingerprints=fingerprints)
        return (plan.invalidated(), plan.live_fingerprints(),
                len(plan.pairs), plan.classes, plan.shared)

    # -- re-verification ---------------------------------------------------

    def reverify(self, name: str, trigger: str = "forced",
                 files: tuple[str, ...] = ()) -> CycleStats:
        """Rebuild, re-analyze and incrementally re-verify one app."""
        state = self._state(name)
        started = time.perf_counter()
        with self._verify_lock:
            tracer = obs.Tracer()
            with metrics_registry.activate(self.registry), \
                    obs.activate(tracer):
                app = state.spec.build()
                analysis = analyze_application(app)
                (invalidated, live, pairs_total, classes,
                 shared) = self.preview_invalidation(analysis)
                report = run_pair_sweep(
                    analysis, self.config, engine=self.engine,
                    jobs=self.jobs, use_cache=True,
                    cache_dir=self.cache_dir, reduce=self.reduce,
                )
                pruned = 0
                if self.prune:
                    # Prune *after* the sweep (not via prune_cache=True)
                    # so the removal count is observable in the cycle
                    # stats and the metrics.
                    cache = ResultCache(self.cache_dir, analysis.app_name)
                    pruned = cache.prune(live)
                    cache.flush()
            trace_obj = {
                "app": name,
                "trigger": trigger,
                "roots": [obs.span_to_obj(root) for root in tracer.roots],
            } if tracer.roots else None

            restrictions = report.restriction_pairs()
            conflicts = operation_conflict_table(report)
            metrics = report.metrics
            wall_s = time.perf_counter() - started

            with self._state_lock:
                version_changed = (state.version == 0
                                   or conflicts != state.conflict_table)
                if version_changed:
                    state.version += 1
                state.analysis = analysis
                state.report_obj = report.to_json_obj()
                state.restrictions = restrictions
                state.conflict_table = conflicts
                state.error = ""
                if version_changed:
                    for subscription in state.subscriptions:
                        subscription.publish(conflicts, version=state.version)
                stats = CycleStats(
                    app=name, trigger=trigger, files=tuple(files),
                    invalidated=tuple(invalidated),
                    pairs_total=pairs_total,
                    solver_calls=int(metrics.get("solver_calls", 0)),
                    classes=classes,
                    shared=int(metrics.get("shared", 0)),
                    cache_hits=int(metrics.get("cache_hits", 0)),
                    pruned_entries=pruned,
                    restrictions=len(restrictions),
                    unknowns=int(metrics.get("unknowns", 0)),
                    version=state.version,
                    version_changed=version_changed,
                    wall_s=wall_s,
                )
                state.last_cycle = stats
                self.last_trace = trace_obj

            reg = self.registry
            reg.inc("noctua_service_reverifies_total", app=name)
            reg.inc("noctua_service_invalidated_pairs_total",
                    float(len(invalidated)), app=name)
            if pruned:
                reg.inc("noctua_service_pruned_entries_total",
                        float(pruned), app=name)
            if version_changed:
                reg.inc("noctua_service_publishes_total", app=name)
            reg.set_gauge("noctua_service_restriction_version",
                          float(state.version), app=name)
            reg.observe("noctua_service_cycle_seconds", wall_s, app=name)
            return stats

    def run_cycle(self, *, force: bool = False) -> list[CycleStats]:
        """One watch→invalidate→re-verify pass over every app.

        ``force`` re-verifies regardless of watcher deltas — the
        ``--once`` mode, where the previous process's watcher baseline is
        gone and the cache is the cross-process invalidation signal."""
        out: list[CycleStats] = []
        for name, state in list(self.apps.items()):
            delta = state.watcher.poll()
            if state.analysis is None:
                trigger = "initial"
            elif delta.changed:
                trigger = "change"
            elif force:
                trigger = "forced"
            else:
                self.registry.inc("noctua_service_cycles_total",
                                  outcome="clean")
                continue
            self.registry.inc("noctua_service_cycles_total", outcome=trigger)
            try:
                out.append(self.reverify(name, trigger=trigger,
                                         files=delta.files))
            except Exception as exc:  # keep the daemon loop alive
                with self._state_lock:
                    state.error = f"{type(exc).__name__}: {exc}"
        return out

    def serve_forever(self, stop: threading.Event | None = None) -> None:
        """Poll-and-verify loop; returns when ``stop`` is set."""
        stop = stop or threading.Event()
        while not stop.is_set():
            self.run_cycle()
            stop.wait(self.poll_interval_s)

    # -- subscriptions -----------------------------------------------------

    def subscribe(self, name: str) -> RestrictionSetSubscription:
        """A live handle on one app's restriction set.  The current
        table (if any) is published immediately; later verdict changes
        arrive as version bumps."""
        state = self._state(name)
        subscription = RestrictionSetSubscription()
        with self._state_lock:
            if state.version:
                subscription.publish(state.conflict_table,
                                     version=state.version)
            state.subscriptions.append(subscription)
        return subscription

    # -- read API (HTTP control plane) -------------------------------------

    def app_names(self) -> list[str]:
        with self._state_lock:
            return list(self.apps)

    def app_summary(self, name: str) -> dict:
        state = self._state(name)
        with self._state_lock:
            summary: dict = {
                "app": name,
                "builtin": state.spec.builtin,
                "source_dir": str(Path(state.spec.source_dir)),
                "watched_files": state.watcher.file_count,
                "version": state.version,
                "restrictions": len(state.restrictions),
                "conflict_operations": len(state.conflict_table),
                "verified": state.analysis is not None,
                "subscribers": len(state.subscriptions),
            }
            if state.last_cycle is not None:
                summary["last_cycle"] = state.last_cycle.to_obj()
            if state.error:
                summary["error"] = state.error
            return summary

    def restrictions_obj(self, name: str) -> dict:
        state = self._state(name)
        with self._state_lock:
            return {
                "app": name,
                "version": state.version,
                "restrictions": sorted(
                    sorted(pair) for pair in state.restrictions),
                "conflict_table": sorted(
                    sorted(pair) for pair in state.conflict_table),
            }

    def report_obj(self, name: str) -> dict | None:
        state = self._state(name)
        with self._state_lock:
            return state.report_obj
