"""The daemon's HTTP control plane.

Routing and request/response shapes come from :mod:`repro.web` — the
same stdlib-level primitives the analyzed applications are written
against — mounted on a :class:`http.server.ThreadingHTTPServer`.  The
:class:`ControlPlane` is transport-free (``dispatch(method, path)``
returns an :class:`~repro.web.HttpResponse`), so tests can exercise the
full routing/serialization surface without opening a socket.

Endpoints::

    GET  /apps                      registered apps + last cycle stats
    GET  /apps/<name>/restrictions  restriction set + conflict table
    GET  /apps/<name>/report        full verification report (JSON)
    POST /apps/<name>/reverify      force a re-verification now
    GET  /metrics                   Prometheus text format
    GET  /metrics/json              metrics snapshot as JSON
    GET  /trace/last                span tree of the last re-verification
    GET  /healthz                   liveness probe

``/metrics`` serves the exposition-format content type
(``text/plain; version=0.0.4``) that Prometheus scrapers negotiate on —
the in-process render alone cannot test that, which is why
``tools/check_metrics.py --url`` round-trips against the served payload.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..metrics import snapshot_to_json, snapshot_to_prometheus
from ..web.http import HttpResponse, JsonResponse
from ..web.urls import Resolver, RoutingError, path
from .daemon import VerificationService

#: the Prometheus text exposition format content type (version is part
#: of the scrape contract, not decoration)
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ControlPlane:
    """Routes control-plane requests onto a :class:`VerificationService`."""

    def __init__(self, service: VerificationService):
        self.service = service
        self.resolver = Resolver([
            path("apps", self.apps_view, name="apps"),
            path("apps/<name>/restrictions", self.restrictions_view,
                 name="restrictions"),
            path("apps/<name>/report", self.report_view, name="report"),
            path("apps/<name>/reverify", self.reverify_view,
                 name="reverify"),
            path("metrics", self.metrics_view, name="metrics"),
            path("metrics/json", self.metrics_json_view,
                 name="metrics-json"),
            path("trace/last", self.trace_view, name="trace-last"),
            path("healthz", self.health_view, name="healthz"),
        ])
        #: views reached by POST; everything else is GET-only
        self._post_views = {"reverify"}

    # -- views -------------------------------------------------------------

    def apps_view(self) -> HttpResponse:
        return JsonResponse({
            "apps": [self.service.app_summary(name)
                     for name in self.service.app_names()],
        })

    def _known(self, name: str) -> str:
        if name not in self.service.apps:
            raise LookupError(f"unknown app {name!r}")
        return name

    def restrictions_view(self, name: str) -> HttpResponse:
        return JsonResponse(self.service.restrictions_obj(self._known(name)))

    def report_view(self, name: str) -> HttpResponse:
        report = self.service.report_obj(self._known(name))
        if report is None:
            return JsonResponse(
                {"error": f"app {name!r} not verified yet"}, status=404)
        return JsonResponse(report)

    def reverify_view(self, name: str) -> HttpResponse:
        stats = self.service.reverify(self._known(name), trigger="forced")
        return JsonResponse(stats.to_obj())

    def metrics_view(self) -> HttpResponse:
        text = snapshot_to_prometheus(self.service.registry.snapshot())
        return HttpResponse(text, content_type=PROM_CONTENT_TYPE)

    def metrics_json_view(self) -> HttpResponse:
        text = snapshot_to_json(self.service.registry.snapshot())
        return HttpResponse(text, content_type="application/json")

    def trace_view(self) -> HttpResponse:
        trace = self.service.last_trace
        if trace is None:
            return JsonResponse({"error": "no re-verification traced yet"},
                                status=404)
        return JsonResponse(trace)

    def health_view(self) -> HttpResponse:
        return JsonResponse({"status": "ok",
                             "apps": len(self.service.apps)})

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, method: str, raw_path: str) -> HttpResponse:
        """Resolve and execute one request; never raises."""
        route = "unmatched"
        try:
            try:
                pattern, params = self.resolver.resolve(raw_path)
            except RoutingError:
                response = JsonResponse(
                    {"error": f"no route matches {raw_path!r}"}, status=404)
            else:
                route = pattern.view_name
                needed = "POST" if route in self._post_views else "GET"
                if method.upper() != needed:
                    response = JsonResponse(
                        {"error": f"{route} requires {needed}"}, status=405)
                else:
                    try:
                        response = pattern.view(**params)
                    except LookupError as exc:
                        response = JsonResponse({"error": str(exc)},
                                                status=404)
        except Exception as exc:  # control plane must not kill the daemon
            response = JsonResponse(
                {"error": f"{type(exc).__name__}: {exc}"}, status=500)
        self.service.registry.inc(
            "noctua_service_http_requests_total",
            route=route, status=str(response.status))
        return response


def encode_response(response: HttpResponse) -> tuple[int, str, bytes]:
    """Flatten an :class:`HttpResponse` to wire form."""
    content = response.content
    if isinstance(response, JsonResponse):
        body = json.dumps(content, indent=2, sort_keys=True).encode()
    elif isinstance(content, bytes):
        body = content
    else:
        body = str(content).encode()
    return response.status, response.content_type, body


class ServiceHTTPServer:
    """The daemon's HTTP listener: a threading stdlib server wired to a
    :class:`ControlPlane`.  ``port=0`` binds an ephemeral port (tests and
    the CI smoke); :attr:`port` reports the bound one."""

    def __init__(self, service: VerificationService,
                 host: str = "127.0.0.1", port: int = 0):
        plane = ControlPlane(service)

        class Handler(BaseHTTPRequestHandler):
            def _serve(self, method: str) -> None:
                response = plane.dispatch(method, self.path.split("?")[0])
                status, content_type, body = encode_response(response)
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                self._serve("GET")

            def do_POST(self) -> None:
                self._serve("POST")

            def log_message(self, *args) -> None:  # quiet by default
                pass

        self.plane = plane
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True,
            name="noctua-http")
        self._thread.start()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
