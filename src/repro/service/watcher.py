"""Deterministic source watching: polling with content hashes.

No inotify, no third-party watchers — the daemon polls.  A poll stats
every ``*.py`` file under the watched root (sorted, so scan order is
stable) and re-hashes only files whose ``(size, mtime_ns)`` changed
since the previous poll.  Whether a file counts as *modified* is decided
by its SHA-256 content digest, never by the stat alone: a ``touch`` that
rewrites identical bytes produces no delta, so spurious re-verification
cannot happen and the same edit always yields the same delta.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class WatchDelta:
    """Content changes observed by one poll."""

    added: tuple[str, ...] = ()
    removed: tuple[str, ...] = ()
    modified: tuple[str, ...] = ()

    @property
    def changed(self) -> bool:
        return bool(self.added or self.removed or self.modified)

    @property
    def files(self) -> tuple[str, ...]:
        """Every path named by this delta, sorted."""
        return tuple(sorted((*self.added, *self.removed, *self.modified)))


class SourceWatcher:
    """Watches one directory tree for content changes to ``*.py`` files."""

    def __init__(self, root: str | Path, pattern: str = "*.py"):
        self.root = Path(root)
        self.pattern = pattern
        #: relative path -> (size, mtime_ns, sha256)
        self._state: dict[str, tuple[int, int, str]] = {}
        self._primed = False

    def _scan(self) -> dict[str, tuple[int, int, str]]:
        out: dict[str, tuple[int, int, str]] = {}
        for path in sorted(self.root.rglob(self.pattern)):
            if not path.is_file():
                continue
            rel = path.relative_to(self.root).as_posix()
            try:
                stat = path.stat()
            except OSError:
                continue  # vanished between listing and stat
            prev = self._state.get(rel)
            if (prev is not None and prev[0] == stat.st_size
                    and prev[1] == stat.st_mtime_ns):
                out[rel] = prev  # stat unchanged: keep the cached digest
                continue
            try:
                digest = hashlib.sha256(path.read_bytes()).hexdigest()
            except OSError:
                continue
            out[rel] = (stat.st_size, stat.st_mtime_ns, digest)
        return out

    def prime(self) -> int:
        """Record the current tree as the baseline; returns the file
        count.  The first :meth:`poll` after priming reports only edits
        made *after* this call."""
        self._state = self._scan()
        self._primed = True
        return len(self._state)

    def poll(self) -> WatchDelta:
        """Compare the tree against the previous poll (or the priming
        snapshot) and advance the baseline."""
        if not self._primed:
            self.prime()
            return WatchDelta()
        old = self._state
        new = self._scan()
        self._state = new
        added = tuple(sorted(set(new) - set(old)))
        removed = tuple(sorted(set(old) - set(new)))
        modified = tuple(sorted(
            rel for rel in set(old) & set(new)
            if old[rel][2] != new[rel][2]  # content digest, not stat
        ))
        return WatchDelta(added=added, removed=removed, modified=modified)

    @property
    def file_count(self) -> int:
        return len(self._state)
