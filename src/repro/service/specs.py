"""Application specifications for the verification daemon.

The daemon watches *source directories* and rebuilds applications from
them, so it needs a uniform way to say "this name maps to these files
and this build procedure".  Two kinds of spec exist:

* **builtin** — one of the bundled ``repro.apps`` packages.  The watched
  directory is the package's own source directory and rebuilding reloads
  the ``.app`` submodule so an edit to the installed tree is picked up.
* **directory** — a standalone directory containing an ``app.py`` that
  defines ``build_app()``.  Rebuilding executes the file under a fresh
  synthetic module name each generation, so stale function objects from
  the previous version can never leak into a new analysis.

``export_builtin_app`` copies a bundled app into a standalone directory
(rewriting its package-relative imports to absolute ones), which is how
tests and the CI smoke get an *editable* copy of a seed app without
touching the installed tree.
"""

from __future__ import annotations

import importlib
import importlib.util
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

from ..web import Application

#: bundled applications the daemon can watch in place
BUILTIN_APPS = (
    "courseware",
    "ownphotos",
    "postgraduation",
    "smallbank",
    "todo",
    "zhihu",
)

#: module file a directory spec builds from
APP_MODULE_FILE = "app.py"

_RELATIVE_IMPORT_RE = re.compile(r"^(from|import)\s+\.", re.MULTILINE)
#: ``from ...orm import X`` inside ``repro.apps.<name>`` means
#: ``from repro.orm import X`` once the file stands alone
_TRIPLE_DOT_RE = re.compile(r"^from \.\.\.(\w)", re.MULTILINE)


class SpecError(ValueError):
    """Bad application spec (unknown builtin, missing app.py, ...)."""


@dataclass
class AppSpec:
    """How the daemon obtains one application: a name, the source
    directory to watch, and a build procedure."""

    name: str
    source_dir: Path
    builtin: bool = False
    #: bumped per rebuild so directory modules get unique names
    _generation: int = field(default=0, repr=False)

    def build(self) -> Application:
        """Construct a fresh :class:`Application` from the current
        on-disk sources."""
        self._generation += 1
        if self.builtin:
            module = importlib.import_module(f"repro.apps.{self.name}.app")
            if self._generation > 1:
                # Pick up on-disk edits: re-execute the module body.
                module = importlib.reload(module)
            return module.build_app()
        return self._build_directory()

    def _build_directory(self) -> Application:
        source = self.source_dir / APP_MODULE_FILE
        if not source.is_file():
            raise SpecError(f"{self.source_dir} has no {APP_MODULE_FILE}")
        # A unique module name per generation: reusing one would hand out
        # the previous generation's cached module object.
        modname = f"_noctua_app_{self.name}_{self._generation}"
        spec = importlib.util.spec_from_file_location(modname, source)
        if spec is None or spec.loader is None:
            raise SpecError(f"cannot load {source}")
        module = importlib.util.module_from_spec(spec)
        sys.modules[modname] = module
        try:
            spec.loader.exec_module(module)
            build = getattr(module, "build_app", None)
            if build is None:
                raise SpecError(f"{source} defines no build_app()")
            return build()
        finally:
            sys.modules.pop(modname, None)


def builtin_spec(name: str) -> AppSpec:
    if name not in BUILTIN_APPS:
        raise SpecError(
            f"unknown builtin application {name!r}; "
            f"known: {', '.join(BUILTIN_APPS)}")
    package_dir = Path(
        importlib.import_module(f"repro.apps.{name}").__file__).parent
    return AppSpec(name=name, source_dir=package_dir, builtin=True)


def directory_spec(name: str, source_dir: str | Path) -> AppSpec:
    root = Path(source_dir)
    if not (root / APP_MODULE_FILE).is_file():
        raise SpecError(f"{root} has no {APP_MODULE_FILE}")
    return AppSpec(name=name, source_dir=root, builtin=False)


def parse_app_arg(arg: str) -> AppSpec:
    """Parse one ``--apps`` argument: ``NAME`` (builtin) or ``NAME=DIR``
    (standalone directory)."""
    if "=" in arg:
        name, _, raw_dir = arg.partition("=")
        if not name:
            raise SpecError(f"empty app name in {arg!r}")
        return directory_spec(name, raw_dir)
    return builtin_spec(arg)


def export_builtin_app(name: str, dest_dir: str | Path) -> Path:
    """Copy a builtin app into ``dest_dir`` as a standalone directory
    spec, rewriting its package-relative imports to absolute ones.

    Only the module files are exported (``__init__.py`` exists purely
    for package wiring).  Returns the destination directory."""
    source_dir = builtin_spec(name).source_dir
    dest = Path(dest_dir)
    dest.mkdir(parents=True, exist_ok=True)
    for path in sorted(source_dir.glob("*.py")):
        if path.name == "__init__.py":
            continue
        text = _TRIPLE_DOT_RE.sub(r"from repro.\1", path.read_text())
        leftover = _RELATIVE_IMPORT_RE.search(text)
        if leftover is not None:
            raise SpecError(
                f"{path.name} of {name!r} keeps a relative import after "
                f"rewriting ({leftover.group(0).strip()!r}); "
                f"not exportable as a standalone directory")
        (dest / path.name).write_text(text)
    return dest
