"""Command-line interface: ``noctua`` (or ``python -m repro``).

Subcommands:

* ``noctua apps`` — list the bundled applications;
* ``noctua analyze <app> [--paths]`` — run the analyzer, print the
  Table-4 statistics (optionally dumping every SOIR code path);
* ``noctua verify <app> [--quick] [--engine enum|smt|portfolio]
  [--reduce/--no-reduce] [--jobs N] [--cache/--no-cache]
  [--cache-dir DIR]`` — analyze + verify through the scheduling engine
  (pre-solve reduction + parallel pair sweep + persistent verdict
  cache), print the Table-6 row and the restriction set;
* ``noctua trace <app> [--quick] [--jobs N] [--out FILE.jsonl]
  [--pair L R] [--explain-all]`` — run analysis + verification under the
  observability layer (:mod:`repro.obs`): print the hierarchical span
  tree, the per-phase time breakdown, the slowest solved pairs, and the
  "why restricted?" explainer for restricted pairs (witness schedule,
  diverging state, responsible SOIR operations); optionally stream the
  trace to a JSONL file;
* ``noctua metrics <app> [--quick] [--jobs N] [--out FILE.json|.prom]``
  — run a metered smoke suite (cold + warm + SMT sweeps and a seeded
  chaos run) under the metrics registry (:mod:`repro.metrics`) and
  render the snapshot table; ``--out`` exports it as JSON or Prometheus
  text format, ``--diff A.json B.json`` renders the delta between two
  exported snapshots;
* ``noctua simulate <zhihu|postgraduation>`` — run the Figure-10/11
  throughput/latency sweep;
* ``noctua chaos <app> [--seed N] [--faults SPEC]`` — run a generated
  workload under a seeded fault schedule and check convergence +
  invariants after heal and drain;
* ``noctua difftest [--seeds N] [--start K] [--shrink] [--corpus DIR]
  [--replay]`` — differential testing of the verifier stack: generate
  seeded random schema/path pairs, decide each one with the enumerative
  checker, the symbolic engine *and* a concrete interleaving oracle, and
  flag any forbidden disagreement; ``--shrink`` minimizes mismatches and
  pins them under ``--corpus``; ``--replay`` re-verifies every pinned
  corpus case instead of generating;
* ``noctua engine-chaos [--seeds N] [--start K] [--app NAME] [--jobs N]
  [--deadline S]`` — fault injection against the *verification engine*
  itself: each seed poisons real sweeps with worker crashes, hangs,
  solver errors, pool death and cache corruption, then asserts the
  fault-tolerance contract (poisoned pairs — and only those — degrade to
  conservative ``unknown`` verdicts, everything else is byte-identical
  to a clean serial sweep, unknowns are never cached, corrupt cache
  files are quarantined, wall time stays within the deadline budget);
* ``noctua serve --apps NAME|NAME=DIR ... [--port N] [--poll-interval S]
  [--jobs N] [--once]`` — the continuous verification service
  (:mod:`repro.service`): watch application sources, re-verify only the
  pairs invalidated by each edit, publish restriction-set versions to
  subscribed deployments, and expose an HTTP control plane (``/apps``,
  ``/apps/<name>/restrictions``, ``/apps/<name>/report``, ``/metrics``,
  ``/trace/last``, ``POST /apps/<name>/reverify``); ``--once`` runs a
  single watch→invalidate→re-verify cycle and exits (no HTTP server);
* ``noctua cache [--stats] [--prune APP ...] [--cache-dir DIR]`` —
  inspect or prune the on-disk verdict cache: ``--stats`` (the default)
  lists every cache file with entry counts, ``--prune`` drops entries
  not referenced by the named apps' current sources under the given
  configuration.
"""

from __future__ import annotations

import argparse
import sys

from .analyzer import analyze_application
from .georep import (
    FaultConfig,
    postgraduation_workload,
    run_chaos,
    run_modes,
    zhihu_workload,
)
from .soir.pretty import pp_path
from .verifier import CheckConfig, operation_conflict_table, verify_application

APP_BUILDERS = {}


def _load_apps() -> None:
    from .apps.courseware import build_app as courseware
    from .apps.ownphotos import build_app as ownphotos
    from .apps.postgraduation import build_app as postgraduation
    from .apps.smallbank import build_app as smallbank
    from .apps.todo import build_app as todo
    from .apps.zhihu import build_app as zhihu

    APP_BUILDERS.update(
        {
            "todo": todo,
            "postgraduation": postgraduation,
            "zhihu": zhihu,
            "ownphotos": ownphotos,
            "smallbank": smallbank,
            "courseware": courseware,
        }
    )


def _build(name: str):
    _load_apps()
    try:
        return APP_BUILDERS[name]()
    except KeyError:
        sys.exit(f"unknown application {name!r}; try `noctua apps`")


def cmd_apps(_args) -> int:
    _load_apps()
    for name, builder in sorted(APP_BUILDERS.items()):
        app = builder()
        print(f"{name:16s} {len(app.registry.models):3d} models  "
              f"{len(app.endpoints()):3d} endpoints  {app.source_loc:5d} LoC")
    return 0


def cmd_analyze(args) -> int:
    app = _build(args.app)
    result = analyze_application(app)
    stats = result.stats()
    print(f"application      : {stats['app']}")
    print(f"models           : {stats['models']}")
    print(f"relations        : {stats['relations']}")
    print(f"code paths       : {stats['code_paths']}")
    print(f"effectful paths  : {stats['effectful_paths']}")
    print(f"analysis time    : {stats['analysis_time_s']:.3f} s")
    if result.notes:
        print("notes:")
        for note in result.notes:
            print(f"  - {note}")
    if args.json:
        from .soir import serialize

        with open(args.json, "w") as f:
            f.write(serialize.dumps(result, indent=2))
        print(f"wrote {args.json}")
    if args.paths:
        print()
        for path in result.paths:
            status = "ABORTED " if path.aborted else (
                "CONSERVATIVE " if path.conservative else "")
            print(f"# {status}{path.abort_reason}".rstrip())
            print(pp_path(path))
            print()
    return 0


def cmd_verify(args) -> int:
    app = _build(args.app)
    result = analyze_application(app)
    config = CheckConfig()
    if args.quick:
        config = CheckConfig(
            timeout_s=0.5, max_samples=300, max_exhaustive=4000
        )
    report = verify_application(
        result, config, engine=args.engine, jobs=args.jobs,
        use_cache=args.cache, cache_dir=args.cache_dir,
        pair_deadline_s=args.deadline, reduce=args.reduce,
    )
    summary = report.summary()
    metrics = report.metrics
    print(f"application   : {summary['app']}")
    print(f"checks        : {summary['checks']}")
    print(f"restrictions  : {summary['restrictions']}")
    print(f"com. failures : {summary['com_failures']}")
    print(f"sem. failures : {summary['sem_failures']}")
    print(f"verify time   : {summary['time_s']:.2f} s wall, "
          f"{summary['solve_time_s']:.2f} s solve")
    mode = metrics.get("mode", "serial")
    workers = f", {metrics['jobs_used']} workers" if mode == "parallel" else ""
    if metrics.get("fallback_reason"):
        mode += f" (fallback: {metrics['fallback_reason']})"
    print(f"engine        : {mode}{workers}")
    print(f"solver calls  : {metrics.get('solver_calls', 0)} "
          f"(pruned {metrics.get('pruned', 0)})")
    if args.reduce:
        print(f"reduction     : {metrics.get('class_count', 0)} classes, "
              f"{metrics.get('shared', 0)} shared, "
              f"{metrics.get('pruned_rw_disjoint', 0)} rw-disjoint pruned")
    wins = metrics.get("portfolio_wins") or {}
    if wins:
        won = ", ".join(f"{backend}={n}" for backend, n in sorted(wins.items()))
        print(f"portfolio     : wins {won}; "
              f"{metrics.get('portfolio_agreements', 0)} agreements, "
              f"{metrics.get('portfolio_disagreements', 0)} disagreements")
    failures = metrics.get("failures") or {}
    if failures or metrics.get("unknowns"):
        counts = ", ".join(f"{kind}={n}" for kind, n in sorted(failures.items()))
        print(f"failures      : {counts or 'none'} "
              f"({metrics.get('retries', 0)} retried, "
              f"{metrics.get('engine_fallbacks', 0)} engine fallbacks)")
        print(f"unknown pairs : {metrics.get('unknowns', 0)} "
              f"(conservatively restricted, not cached; re-run or raise "
              f"--deadline)")
    if args.cache:
        print(f"cache         : {metrics.get('cache_hits', 0)} hits, "
              f"{metrics.get('cache_misses', 0)} misses "
              f"({metrics.get('cache_saved_s', 0.0):.2f} s saved)")
    print("restricted pairs:")
    for verdict in report.restrictions:
        kinds = []
        if verdict.commutativity and verdict.commutativity.outcome.restricts:
            kinds.append("com")
        if verdict.semantic and verdict.semantic.outcome.restricts:
            kinds.append("sem")
        print(f"  ({verdict.left}, {verdict.right})  [{','.join(kinds)}]")
    if args.json:
        import json as _json

        with open(args.json, "w") as f:
            _json.dump(report.to_json_obj(), f, indent=2)
        print(f"wrote {args.json}")
    if args.conflict_table:
        print("endpoint conflict table:")
        for pair in sorted(
            tuple(sorted(p)) for p in operation_conflict_table(report)
        ):
            print(f"  {pair}")
    return 0


def cmd_trace(args) -> int:
    from .obs import (
        JsonlSink,
        Tracer,
        activate,
        render_phase_breakdown,
        render_tree,
        slowest_pairs_table,
    )
    from .obs.explain import ExplainError, explain_pair, explain_report

    app = _build(args.app)
    config = CheckConfig()
    if args.quick:
        config = CheckConfig(
            timeout_s=0.5, max_samples=300, max_exhaustive=4000
        )
    sink = JsonlSink(args.out) if args.out else None
    tracer = Tracer(sink=sink)
    try:
        with activate(tracer):
            analysis = analyze_application(app)
            report = verify_application(
                analysis, config, jobs=args.jobs, use_cache=False,
            )
    finally:
        tracer.close()

    print("== span tree ==")
    for line in render_tree(tracer.roots, max_depth=args.depth,
                            min_wall_ms=args.min_ms):
        print(line)
    print()
    print("== phase breakdown ==")
    for line in render_phase_breakdown(tracer.roots):
        print(line)
    print()
    print(f"== slowest pairs (top {args.top}) ==")
    for line in slowest_pairs_table(tracer.roots, top=args.top):
        print(line)
    print()
    print("== why restricted? ==")
    if args.pair:
        left, right = args.pair
        try:
            print(explain_pair(analysis, left, right, config))
        except ExplainError as exc:
            sys.exit(str(exc))
    else:
        limit = None if args.explain_all else 1
        print(explain_report(analysis, report, config, limit=limit))
    if args.out:
        print(f"wrote trace to {args.out}")
    return 0


def cmd_metrics(args) -> int:
    from . import metrics as mx

    if args.diff:
        try:
            before = mx.load_snapshot(args.diff[0])
            after = mx.load_snapshot(args.diff[1])
        except (OSError, ValueError) as exc:
            sys.exit(f"cannot load snapshot: {exc}")
        for line in mx.render_diff(mx.diff_snapshots(before, after)):
            print(line)
        return 0

    if not args.app:
        sys.exit("metrics needs an application name "
                 "(or --diff BEFORE.json AFTER.json)")

    import tempfile

    app = _build(args.app)
    config = CheckConfig()
    if args.quick:
        config = CheckConfig(
            timeout_s=0.5, max_samples=300, max_exhaustive=4000
        )
    registry = mx.MetricsRegistry()
    with mx.activate(registry):
        analysis = analyze_application(app)
        # A metered smoke suite touching every instrumented subsystem:
        # a cold sweep into a throwaway cache (misses), a warm sweep
        # over the same cache (hits), an SMT sweep (smt solver-call
        # latencies), and a seeded chaos run (georep delivery counters
        # and the recovery histogram).
        # The cold sweep runs serial on purpose: solver-call latencies
        # are metered in the process running the check, and worker
        # processes have no ambient registry (pair-level metrics are
        # folded parent-side from the sweep span either way).
        with tempfile.TemporaryDirectory(prefix="noctua-metrics-") as tmp:
            report = verify_application(
                analysis, config, use_cache=True, cache_dir=tmp,
            )
            verify_application(analysis, config, jobs=args.jobs,
                               use_cache=True, cache_dir=tmp)
        if not args.no_smt:
            verify_application(analysis, config, engine="smt",
                               use_cache=False)
        if not args.no_georep:
            faults = FaultConfig.chaos(args.seed, span=float(args.ops),
                                       sites=3, outages=1)
            run_chaos(
                analysis, report.restriction_pairs(),
                seed=args.seed, operations=args.ops, faults=faults,
            )

    snapshot = registry.snapshot()
    # write exports before rendering so a truncated stdout (e.g. piping
    # the table through `head`) cannot lose the requested files
    written = []
    for out in args.out or []:
        if out.endswith(".prom"):
            text = mx.snapshot_to_prometheus(snapshot)
        else:
            text = mx.snapshot_to_json(snapshot)
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
        written.append(out)
    for line in mx.render_table(snapshot):
        print(line)
    for out in written:
        print(f"wrote {out}")
    return 0


def cmd_simulate(args) -> int:
    workloads = {
        "zhihu": zhihu_workload,
        "postgraduation": postgraduation_workload,
    }
    if args.app not in workloads:
        sys.exit("simulate supports: zhihu, postgraduation")
    _load_apps()
    builder = APP_BUILDERS[args.app]
    config = CheckConfig(timeout_s=0.5, max_samples=200, max_exhaustive=2000)
    analysis = analyze_application(builder())
    conflicts = operation_conflict_table(verify_application(analysis, config))
    rows = run_modes(builder, workloads[args.app], conflicts)
    print(f"{'mode':>5} {'throughput (req/s)':>20} {'avg latency (ms)':>18} "
          f"{'errors':>7}")
    for row in rows:
        print(f"{row.mode:>5} {row.throughput_rps:20.1f} "
              f"{row.avg_latency_ms:18.3f} {row.error_fraction:6.1%}")
    base = rows[0].throughput_rps
    best = max(r.throughput_rps for r in rows[1:])
    print(f"speedup over SC: up to {best / base:.2f}x")
    return 0


def cmd_chaos(args) -> int:
    app = _build(args.app)
    analysis = analyze_application(app)
    restrictions: set[frozenset[str]] = set()
    if not args.no_restrictions:
        config = CheckConfig(timeout_s=0.5, max_samples=200, max_exhaustive=2000)
        restrictions = verify_application(analysis, config).restriction_pairs()
    span = float(args.ops)
    if args.faults is None:
        faults = FaultConfig.chaos(args.seed, span=span, sites=args.sites,
                                   outages=1)
    else:
        try:
            faults = FaultConfig.parse(args.faults, seed=args.seed, span=span,
                                       sites=args.sites)
        except ValueError as exc:
            sys.exit(f"bad --faults spec: {exc}")
    report = run_chaos(
        analysis, restrictions,
        seed=args.seed, operations=args.ops, sites=args.sites, faults=faults,
    )
    result = report.result
    print(f"application   : {report.app}")
    print(f"seed / sites  : {report.seed} / {report.sites}")
    print(f"operations    : {result.submitted} submitted, "
          f"{result.accepted} accepted, {result.rejected} rejected, "
          f"{result.coord_rejected} refused (coordination)")
    print(f"restrictions  : {report.restrictions}")
    print("fault counters:")
    for name, value in report.counters.as_dict().items():
        if value:
            print(f"  {name:16s} {value}")
    if report.refusals:
        print(f"refusals      : {len(report.refusals)} "
              f"(first: {report.refusals[0]})")
    print(f"converged     : {report.converged}")
    print(f"invariants ok : {report.invariant_ok}")
    if args.no_restrictions:
        # Demonstration mode: anomalies are the expected outcome.
        return 0
    return 0 if report.ok else 1


def cmd_difftest(args) -> int:
    from .difftest import (
        load_corpus,
        replay_case,
        run_difftest,
        save_corpus_case,
        shrink_case,
    )
    from .difftest.corpus import CorpusCase
    from .difftest.crosscheck import mismatch_keys

    if args.replay:
        cases = load_corpus(args.corpus)
        if not cases:
            sys.exit(f"no corpus cases under {args.corpus}")
        engines = (args.engine,) if args.engine else None
        failures: list[str] = []
        for case in cases:
            errors = replay_case(case, engines=engines)
            status = "FAIL" if errors else "ok"
            print(f"  {case.name:40s} [{case.kind}] {status}")
            failures.extend(errors)
        for line in failures:
            print(f"  ! {line}")
        print(f"{len(cases)} corpus case(s), {len(failures)} failure(s)")
        return 1 if failures else 0

    config = CheckConfig(timeout_s=args.timeout)
    if args.directed:
        return _difftest_directed(args, config)
    report = run_difftest(
        args.seeds, start=args.start, check_config=config, log=print,
    )
    print(f"{report.stats['cases']} case(s) in {report.elapsed_s:.1f} s, "
          f"{len(report.mismatches)} mismatch(es)")
    for key in ("unconfirmed_fail", "invariant_on_restricted_pair"):
        if report.stats.get(key):
            print(f"  {key}: {report.stats[key]}")
    if not report.mismatches:
        return 0
    if args.shrink:
        seen: set = set()
        for m in report.mismatches:
            if (m.seed, m.key) in seen:
                continue
            seen.add((m.seed, m.key))
            print(f"shrinking seed {m.seed} ({m.kind}/{m.check}) ...")

            def pred(schema, p, q, _key=m.key):
                return _key in mismatch_keys(p, q, schema,
                                             check_config=config)

            schema, p, q = shrink_case(m.schema, m.p, m.q, pred)
            case = CorpusCase(
                name=f"difftest-seed{m.seed}-{m.check}",
                schema=schema, p=p, q=q,
                origin=f"noctua difftest seed {m.seed}, shrunk",
                description=f"{m.kind}: {m.detail}",
            )
            out = save_corpus_case(case, args.corpus)
            print(f"  pinned {out} "
                  f"({len(p.commands)}+{len(q.commands)} commands); "
                  f"fill in 'expect' after triage (docs/DIFFTEST.md)")
    return 1


def _difftest_directed(args, config) -> int:
    from collections import Counter

    from .difftest import save_corpus_case, shrink_case
    from .difftest.corpus import CorpusCase
    from .difftest.crosscheck import mismatch_keys
    from .difftest.directed import DirectedConfig, run_directed

    dcfg = DirectedConfig(
        budget=args.budget, k=args.k, isolation=args.isolation,
        mode=args.mode,
    )
    report = run_directed(
        args.seeds, start=args.start, config=dcfg,
        check_config=config, log=print,
    )
    levels = Counter(f.first_level or dcfg.isolation for f in report.flips)
    print(f"{report.evals} probe eval(s) in {report.elapsed_s:.1f} s, "
          f"{len(report.flips)} flip(s) "
          f"({report.distinct_flips} distinct boundary case(s)), "
          f"{len(report.mismatches)} mismatch(es)")
    if levels:
        print("  first diverging level: "
              + ", ".join(f"{lv}={n}" for lv, n in sorted(levels.items())))
    if report.stats.get("crosscheck_drops"):
        print(f"  crosscheck_drops: {report.stats['crosscheck_drops']} "
              f"(flips beyond the per-seed engine-check cap)")
    if not report.mismatches:
        return 0
    if args.shrink:
        seen: set = set()
        for m in report.mismatches:
            if m.schema is None or (m.seed, m.key) in seen:
                continue
            seen.add((m.seed, m.key))
            print(f"shrinking seed {m.seed} ({m.kind}/{m.check}) ...")

            def pred(schema, p, q, _key=m.key):
                return _key in mismatch_keys(p, q, schema,
                                             check_config=config)

            schema, p, q = shrink_case(m.schema, m.p, m.q, pred)
            case = CorpusCase(
                name=f"directed-seed{m.seed}-{m.kind}",
                schema=schema, p=p, q=q,
                origin=(f"noctua difftest --directed seed {m.seed} "
                        f"(isolation={dcfg.isolation}, k={dcfg.k}), "
                        f"shrunk"),
                description=f"{m.kind}: {m.detail}",
            )
            out = save_corpus_case(case, args.corpus)
            print(f"  pinned {out} "
                  f"({len(p.commands)}+{len(q.commands)} commands); "
                  f"fill in 'expect' after triage (docs/DIFFTEST.md)")
    return 1


def cmd_engine_chaos(args) -> int:
    from .engine import run_engine_chaos

    print(f"engine chaos: app={args.app} seeds={args.start}.."
          f"{args.start + args.seeds - 1} jobs={args.jobs} "
          f"deadline={args.deadline:.1f}s")
    report = run_engine_chaos(
        args.app, seeds=args.seeds, start=args.start, jobs=args.jobs,
        deadline_s=args.deadline, log=print,
    )
    ok_count = sum(1 for o in report.outcomes if o.ok)
    print(f"{len(report.outcomes)} seed(s) in {report.elapsed_s:.1f} s, "
          f"{ok_count} ok, {len(report.outcomes) - ok_count} failed")
    for problem in report.problems:
        print(f"  ! {problem}")
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    from .service import (
        ServiceHTTPServer,
        SpecError,
        VerificationService,
        parse_app_arg,
    )

    try:
        specs = [parse_app_arg(arg) for arg in args.apps]
    except SpecError as exc:
        sys.exit(f"bad --apps entry: {exc}")
    config = CheckConfig()
    if args.quick:
        # Sample-bounded, not time-bounded, so cycles stay deterministic
        # under CPU contention (see docs/ENGINE.md).
        config = CheckConfig(timeout_s=60.0, max_samples=60,
                             max_exhaustive=800)
    service = VerificationService(
        specs, config, engine=args.engine, jobs=args.jobs,
        cache_dir=args.cache_dir, poll_interval_s=args.poll_interval,
        reduce=args.reduce,
    )

    def print_stats(stats) -> None:
        print(f"[{stats.app}] trigger={stats.trigger} "
              f"pairs={stats.pairs_total} "
              f"invalidated={len(stats.invalidated)} "
              f"solved={stats.solver_calls} classes={stats.classes} "
              f"shared={stats.shared} cache_hits={stats.cache_hits} "
              f"pruned={stats.pruned_entries} "
              f"restrictions={stats.restrictions} version={stats.version}"
              f"{'*' if stats.version_changed else ''} "
              f"({stats.wall_s:.2f}s)", flush=True)

    if args.once:
        for stats in service.run_cycle(force=True):
            print_stats(stats)
        failed = [name for name, state in service.apps.items()
                  if state.error]
        for name in failed:
            print(f"[{name}] FAILED: {service.apps[name].error}",
                  file=sys.stderr)
        return 1 if failed else 0

    server = ServiceHTTPServer(service, host=args.host, port=args.port)
    server.start()
    print(f"serving on {server.url}", flush=True)
    import threading

    stop = threading.Event()
    try:
        while not stop.is_set():
            for stats in service.run_cycle():
                print_stats(stats)
            stop.wait(service.poll_interval_s)
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        server.shutdown()
    return 0


def cmd_cache(args) -> int:
    from .engine.cache import DEFAULT_CACHE_DIR, ResultCache, scan_cache
    from .service import live_pair_fingerprints

    root = args.cache_dir or DEFAULT_CACHE_DIR
    if args.prune:
        config = CheckConfig()
        if args.quick:
            config = CheckConfig(timeout_s=60.0, max_samples=60,
                                 max_exhaustive=800)
        total = 0
        for name in args.prune:
            analysis = analyze_application(_build(name))
            live = live_pair_fingerprints(analysis, config,
                                          engine=args.engine,
                                          reduce=args.reduce)
            cache = ResultCache(root, analysis.app_name)
            before = len(cache)
            removed = cache.prune(live)
            cache.flush()
            total += removed
            print(f"{name:16s} {before:5d} entries, {removed:4d} pruned, "
                  f"{len(cache):5d} kept")
        print(f"pruned {total} stale entr{'y' if total == 1 else 'ies'} "
              f"under {root}")
        return 0

    rows = scan_cache(root)
    if not rows:
        print(f"no cache files under {root}")
        return 0
    for row in rows:
        status = row["status"]
        if "entries" in row:  # ok or migratable: a readable cache file
            suffix = "" if status == "ok" else f"  [{status}]"
            print(f"{row['file']:32s} {row['entries']:5d} entries  "
                  f"{row['bytes']:8d} B  app={row['app']}{suffix}")
        else:
            detail = row.get("detail", "")
            print(f"{row['file']:32s} [{status}] {detail}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="noctua",
        description="Automated fine-grained consistency analysis "
                    "(Noctua reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list bundled applications")

    p_analyze = sub.add_parser("analyze", help="run the program analyzer")
    p_analyze.add_argument("app")
    p_analyze.add_argument("--paths", action="store_true",
                           help="dump every SOIR code path")
    p_analyze.add_argument("--json", metavar="FILE", default=None,
                           help="write the analysis result (SOIR) as JSON")

    p_verify = sub.add_parser("verify", help="run analysis + verification")
    p_verify.add_argument("app")
    p_verify.add_argument("--quick", action="store_true",
                          help="reduced search budget")
    p_verify.add_argument("--engine", default="enum",
                          choices=("enum", "smt", "portfolio"),
                          help="solver backend; 'portfolio' races enum "
                               "and smt per pair and takes the first "
                               "definitive answer")
    p_verify.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="pre-solve reduction: signature-class "
                               "verdict sharing and read/write "
                               "disjointness pruning (--no-reduce "
                               "solves every pair individually)")
    p_verify.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="solve pairs on N worker processes "
                               "(default: 1, serial)")
    p_verify.add_argument("--cache", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="memoize pair verdicts on disk so unchanged "
                               "pairs are not re-solved (--no-cache to "
                               "disable)")
    p_verify.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="cache location (default: .noctua-cache/)")
    p_verify.add_argument("--deadline", type=float, default=None,
                          metavar="S",
                          help="wall-clock deadline per solve attempt; "
                               "pairs the engine cannot decide within "
                               "the retry budget are conservatively "
                               "restricted as 'unknown' (default: "
                               "derived from the check timeout)")
    p_verify.add_argument("--conflict-table", action="store_true",
                          help="print the endpoint-level conflict table")
    p_verify.add_argument("--json", metavar="FILE", default=None,
                          help="write the restriction set as JSON")

    p_trace = sub.add_parser(
        "trace", help="traced verification run: span tree, profile, "
                      "and the restriction explainer"
    )
    p_trace.add_argument("app")
    p_trace.add_argument("--quick", action="store_true",
                         help="reduced search budget")
    p_trace.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="solve pairs on N worker processes; worker "
                              "spans are forwarded into the parent trace")
    p_trace.add_argument("--out", metavar="FILE", default=None,
                         help="also stream the trace as JSONL to FILE")
    p_trace.add_argument("--pair", nargs=2, metavar=("LEFT", "RIGHT"),
                         default=None,
                         help="explain one specific pair of code paths "
                              "(e.g. 'AddCourse[0]' 'DeleteCourse[0]')")
    p_trace.add_argument("--explain-all", action="store_true",
                         help="explain every restricted pair (default: "
                              "the first one)")
    p_trace.add_argument("--top", type=int, default=10, metavar="N",
                         help="rows in the slowest-pairs table")
    p_trace.add_argument("--depth", type=int, default=6, metavar="N",
                         help="span-tree depth limit")
    p_trace.add_argument("--min-ms", type=float, default=0.0, metavar="MS",
                         help="elide leaf spans cheaper than MS "
                              "milliseconds from the tree")

    p_metrics = sub.add_parser(
        "metrics", help="metered smoke suite: run every instrumented "
                        "subsystem under the metrics registry and render "
                        "(or export) the snapshot"
    )
    p_metrics.add_argument("app", nargs="?", default=None)
    p_metrics.add_argument("--quick", action="store_true",
                           help="reduced search budget")
    p_metrics.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="worker processes for the warm sweep; the "
                                "cold sweep stays serial so enum "
                                "solver-call latencies are metered "
                                "in-process (default: 1)")
    p_metrics.add_argument("--ops", type=int, default=120, metavar="N",
                           help="operations in the chaos leg "
                                "(default: 120)")
    p_metrics.add_argument("--seed", type=int, default=3,
                           help="fault seed for the chaos leg (default: 3)")
    p_metrics.add_argument("--out", action="append", metavar="FILE",
                           default=None,
                           help="export the snapshot; repeatable, format "
                                "by extension (.prom = Prometheus text "
                                "format, anything else = JSON)")
    p_metrics.add_argument("--no-smt", action="store_true",
                           help="skip the SMT-engine leg")
    p_metrics.add_argument("--no-georep", action="store_true",
                           help="skip the chaos/georep leg")
    p_metrics.add_argument("--diff", nargs=2,
                           metavar=("BEFORE.json", "AFTER.json"),
                           default=None,
                           help="render the per-series delta between two "
                                "JSON snapshots instead of running")

    p_sim = sub.add_parser("simulate", help="geo-replication performance sweep")
    p_sim.add_argument("app")

    p_chaos = sub.add_parser(
        "chaos", help="fault-injection run over the replicated runtime"
    )
    p_chaos.add_argument("app")
    p_chaos.add_argument("--seed", type=int, default=3)
    p_chaos.add_argument("--ops", type=int, default=200)
    p_chaos.add_argument("--sites", type=int, default=3)
    p_chaos.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="comma-separated fault spec, e.g. "
             "'loss=0.1,dup=0.05,partition,crash,outage' or 'all' "
             "(default: the full chaos schedule)")
    p_chaos.add_argument(
        "--no-restrictions", action="store_true",
        help="run with the empty restriction set (reproduces anomalies)")

    p_diff = sub.add_parser(
        "difftest", help="differential testing of the verifier stack"
    )
    p_diff.add_argument("--seeds", type=int, default=50, metavar="N",
                        help="number of generated cases (default: 50)")
    p_diff.add_argument("--start", type=int, default=0, metavar="K",
                        help="first seed (default: 0)")
    p_diff.add_argument("--shrink", action="store_true",
                        help="delta-debug each mismatch to a minimal case "
                             "and pin it under --corpus")
    p_diff.add_argument("--corpus", default="tests/corpus", metavar="DIR",
                        help="corpus directory (default: tests/corpus)")
    p_diff.add_argument("--engine", default=None,
                        choices=("enum", "smt", "portfolio"),
                        help="with --replay: re-verify every corpus case "
                             "through this backend instead of the case's "
                             "pinned engine list ('portfolio' accepts the "
                             "union of the enum and smt expectations)")
    p_diff.add_argument("--replay", action="store_true",
                        help="replay the pinned corpus instead of "
                             "generating new cases")
    p_diff.add_argument("--timeout", type=float, default=2.0, metavar="S",
                        help="per-check solver timeout in seconds "
                             "(default: 2.0)")
    p_diff.add_argument("--directed", action="store_true",
                        help="witness-seeded boundary walk instead of "
                             "blind sampling: mutate cases toward verdict "
                             "flips and cross-check every flip")
    p_diff.add_argument("--budget", type=int, default=300, metavar="N",
                        help="with --directed: total probe evaluations, "
                             "split evenly across seeds (default: 300)")
    p_diff.add_argument("--isolation", default="por",
                        choices=("por", "causal", "eventual"),
                        help="with --directed: oracle witness "
                             "admissibility level (default: por)")
    p_diff.add_argument("--k", type=int, default=2, metavar="K",
                        help="with --directed: paths per case; k >= 3 "
                             "probes DPOR-pruned schedules (default: 2)")
    p_diff.add_argument("--mode", default="directed",
                        choices=("directed", "random"),
                        help="with --directed: 'random' runs the unscored "
                             "A/B baseline arm (default: directed)")

    p_echaos = sub.add_parser(
        "engine-chaos",
        help="fault injection against the verification engine itself",
    )
    p_echaos.add_argument("--seeds", type=int, default=10, metavar="N",
                          help="number of seeded fault plans (default: 10)")
    p_echaos.add_argument("--start", type=int, default=0, metavar="K",
                          help="first seed (default: 0)")
    p_echaos.add_argument("--app", default="smallbank", metavar="NAME",
                          help="application to sweep (default: smallbank)")
    p_echaos.add_argument("--jobs", type=int, default=2, metavar="N",
                          help="worker processes per chaotic sweep "
                               "(default: 2)")
    p_echaos.add_argument("--deadline", type=float, default=2.0,
                          metavar="S",
                          help="per-pair deadline during chaotic sweeps "
                               "(default: 2.0)")

    p_serve = sub.add_parser(
        "serve", help="continuous verification service: watch sources, "
                      "re-verify incrementally, publish restriction sets "
                      "over HTTP"
    )
    p_serve.add_argument("--apps", nargs="+", required=True,
                         metavar="NAME|NAME=DIR",
                         help="applications to watch: a builtin name "
                              "(watches the installed package) or "
                              "NAME=DIR for a standalone directory "
                              "containing app.py")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="control-plane bind address "
                              "(default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8642, metavar="N",
                         help="control-plane port; 0 binds an ephemeral "
                              "port (default: 8642)")
    p_serve.add_argument("--poll-interval", type=float, default=2.0,
                         metavar="S",
                         help="seconds between source polls "
                              "(default: 2.0)")
    p_serve.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes per re-verification "
                              "sweep (default: 1)")
    p_serve.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="pre-solve reduction (class sharing + "
                              "rw-disjointness pruning) in daemon sweeps")
    p_serve.add_argument("--engine", default="enum",
                         choices=("enum", "smt", "portfolio"),
                         help="verification backend (default: enum)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="verdict cache location "
                              "(default: .noctua-cache/)")
    p_serve.add_argument("--quick", action="store_true",
                         help="reduced, sample-bounded search budget")
    p_serve.add_argument("--once", action="store_true",
                         help="run one watch→invalidate→re-verify cycle "
                              "and exit (no HTTP server); the on-disk "
                              "cache carries invalidation across runs")

    p_cache = sub.add_parser(
        "cache", help="inspect or prune the on-disk pair-verdict cache"
    )
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache location (default: .noctua-cache/)")
    p_cache.add_argument("--stats", action="store_true",
                         help="list cache files with entry counts "
                              "(the default action)")
    p_cache.add_argument("--prune", nargs="+", default=None, metavar="APP",
                         help="drop entries not referenced by these "
                              "apps' current sources")
    p_cache.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="compute the live-fingerprint set with the "
                              "reduction planner (match sweeps run with "
                              "reduction on)")
    p_cache.add_argument("--engine", default="enum",
                         choices=("enum", "smt", "portfolio"),
                         help="backend whose fingerprints --prune keeps "
                              "(default: enum)")
    p_cache.add_argument("--quick", action="store_true",
                         help="compute --prune live sets under the "
                              "reduced search budget")

    args = parser.parse_args(argv)
    handlers = {
        "apps": cmd_apps,
        "analyze": cmd_analyze,
        "verify": cmd_verify,
        "trace": cmd_trace,
        "metrics": cmd_metrics,
        "simulate": cmd_simulate,
        "chaos": cmd_chaos,
        "difftest": cmd_difftest,
        "engine-chaos": cmd_engine_chaos,
        "serve": cmd_serve,
        "cache": cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
