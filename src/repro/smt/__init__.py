"""A small many-sorted term language and finite-domain model finder.

The offline substitute for Z3 (DESIGN.md §2): the verifier's symbolic
engine builds verification conditions as terms and asks the solver for
counterexample models over finite domains.
"""

from . import terms
from .solver import Model, Solver, SolverError, SolverTimeout, UNKNOWN, evaluate

__all__ = ["Model", "Solver", "SolverError", "SolverTimeout", "UNKNOWN",
           "evaluate", "terms"]
