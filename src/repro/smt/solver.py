"""A finite-domain model finder over the term language.

The reproduction's stand-in for Z3 (DESIGN.md §2): every free variable is
given a finite candidate domain, and the solver searches for an assignment
satisfying all asserted terms by depth-first enumeration with *partial
evaluation* — under a partial assignment every assertion evaluates to
``True``, ``False`` or *unknown*; any definite ``False`` prunes the whole
subtree.  Three-valued evaluation makes the common case cheap: equality
chains and guard contradictions cut the search space long before all
variables are assigned.

Like the paper's use of Z3 (§5.2), the intended mode is *counterexample
finding*: assert the negation of the property and ask for a model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from ..metrics.registry import inc as _metric_inc, observe as _metric_observe
from ..obs import tracer as obs
from .terms import App, Const, Term, Var

#: three-valued "unknown"
UNKNOWN = object()


class SolverTimeout(Exception):
    """The search budget was exhausted before a verdict."""


class SolverError(Exception):
    """An internal solver invariant broke (bad encoding, missing domain,
    blown recursion...).

    Distinct from :class:`SolverTimeout`: a timeout is a *decided*,
    conservative outcome, while a ``SolverError`` means the backend
    produced no verdict at all.  The verification engine classifies it
    as a ``solver-error`` failure and retries the pair on the enum
    backend before degrading to an ``unknown`` verdict."""


@dataclass
class Model:
    """A satisfying assignment."""

    assignment: dict[str, Any]

    def __getitem__(self, name: str) -> Any:
        return self.assignment[name]


@dataclass
class Solver:
    """Assert terms, declare domains, search for a model."""

    assertions: list[Term] = field(default_factory=list)
    domains: dict[str, list] = field(default_factory=dict)

    def add(self, term: Term) -> None:
        self.assertions.append(term)

    def declare(self, name: str, domain: list) -> None:
        if not domain:
            raise ValueError(f"empty domain for {name!r}")
        self.domains[name] = list(domain)

    # ------------------------------------------------------------------

    def check(
        self, *, timeout_s: float = 5.0, priority: list[str] | None = None
    ) -> Model | None:
        """Return a model or ``None`` (no model within the domains).

        ``priority`` names variables to branch on first (a cheap static
        ordering heuristic: the caller knows which variables drive the
        strongest constraints, e.g. operation arguments).

        Each call is traced as a ``solver-call`` span (clause count, free
        variable count, result, model size) when a tracer is active.

        Raises :class:`SolverTimeout` if the budget runs out."""
        started = time.perf_counter()
        try:
            model = self._check(timeout_s=timeout_s, priority=priority)
        except SolverTimeout:
            self._account(started, "timeout")
            obs.record(
                "solver.check", "solver-call",
                wall_s=time.perf_counter() - started, backend="smt",
                clauses=len(self.assertions), variables=len(self.domains),
                result="timeout",
            )
            raise
        result = "sat" if model is not None else "unsat"
        self._account(started, result)
        obs.record(
            "solver.check", "solver-call",
            wall_s=time.perf_counter() - started, backend="smt",
            clauses=len(self.assertions), variables=len(self.domains),
            result=result,
            model_size=len(model.assignment) if model is not None else 0,
        )
        return model

    def _account(self, started: float, result: str) -> None:
        """Feed the ambient metrics registry (no-op when disabled)."""
        _metric_inc("noctua_solver_calls_total", backend="smt", result=result)
        _metric_observe("noctua_solver_call_seconds",
                        time.perf_counter() - started, backend="smt")
        _metric_observe("noctua_solver_clauses", len(self.assertions),
                        backend="smt")

    def _check(
        self, *, timeout_s: float = 5.0, priority: list[str] | None = None
    ) -> Model | None:
        free: list[str] = []
        seen: set[str] = set()
        for assertion in self.assertions:
            for node in assertion.walk():
                if isinstance(node, Var) and node.name not in seen:
                    seen.add(node.name)
                    if node.name not in self.domains:
                        raise ValueError(f"no domain declared for {node.name!r}")
                    free.append(node.name)
        if priority:
            # Dedupe while keeping order: a name listed twice would be
            # re-bound mid-search after assertions mentioning it were
            # already dropped as satisfied, yielding unsound models.
            ranked = list(dict.fromkeys(n for n in priority if n in seen))
            rest = [n for n in free if n not in set(ranked)]
            free = ranked + rest
        deadline = time.perf_counter() + timeout_s
        env: dict[str, Any] = {}
        # Assertions are re-checked as variables get bound; track which are
        # already definitely true to avoid re-evaluating them.
        pending = list(self.assertions)
        result = self._search(free, 0, env, pending, deadline)
        if result is None:
            return None
        return Model(dict(result))

    def _search(self, free, index, env, pending, deadline):
        if time.perf_counter() > deadline:
            raise SolverTimeout()
        still_pending = []
        for assertion in pending:
            value = evaluate(assertion, env)
            if value is False:
                return None
            if value is not True:
                still_pending.append(assertion)
        if not still_pending:
            # Every assertion already holds: the remaining variables are
            # unconstrained — fill them with arbitrary domain values.
            for name in free[index:]:
                env.setdefault(name, self.domains[name][0])
            return env
        if index == len(free):
            return None
        name = free[index]
        for candidate in self.domains[name]:
            env[name] = candidate
            result = self._search(free, index + 1, env, still_pending, deadline)
            if result is not None:
                return result
        del env[name]
        return None


# ---------------------------------------------------------------------------
# Three-valued evaluation
# ---------------------------------------------------------------------------


def evaluate(term: Term, env: dict[str, Any]):
    """Evaluate under a partial assignment: value, or UNKNOWN."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        return env.get(term.name, UNKNOWN)
    assert isinstance(term, App)
    op = term.op

    if op == "and":
        any_unknown = False
        for arg in term.args:
            value = evaluate(arg, env)
            if value is False:
                return False
            if value is UNKNOWN:
                any_unknown = True
        return UNKNOWN if any_unknown else True
    if op == "or":
        any_unknown = False
        for arg in term.args:
            value = evaluate(arg, env)
            if value is True:
                return True
            if value is UNKNOWN:
                any_unknown = True
        return UNKNOWN if any_unknown else False
    if op == "not":
        value = evaluate(term.args[0], env)
        return UNKNOWN if value is UNKNOWN else not value
    if op == "ite":
        cond = evaluate(term.args[0], env)
        if cond is UNKNOWN:
            # Both branches agreeing still yields a definite value.
            then = evaluate(term.args[1], env)
            other = evaluate(term.args[2], env)
            if then is not UNKNOWN and then == other:
                return then
            return UNKNOWN
        return evaluate(term.args[1 if cond else 2], env)

    values = [evaluate(arg, env) for arg in term.args]
    if any(v is UNKNOWN for v in values):
        return UNKNOWN

    if op == "eq":
        return values[0] == values[1]
    if op == "is_null":
        return values[0] is None
    if op in ("add", "sub", "mul", "neg", "lt", "le", "concat",
              "contains", "startswith"):
        left = values[0]
        right = values[1] if len(values) > 1 else None
        if left is None or right is None and op != "neg":
            # NULL propagation: arithmetic on NULL is NULL-ish; ordered
            # comparisons with NULL are false (SQL semantics).
            return False if op in ("lt", "le", "contains", "startswith") else None
        try:
            if op == "add":
                return left + right
            if op == "sub":
                return left - right
            if op == "mul":
                return left * right
            if op == "neg":
                return -left
            if op == "lt":
                return left < right
            if op == "le":
                return left <= right
            if op == "concat":
                return str(left) + str(right)
            if op == "contains":
                return str(right) in str(left)
            if op == "startswith":
                return str(left).startswith(str(right))
        except TypeError:
            return False if op in ("lt", "le") else None
    raise ValueError(f"unknown operator {op!r}")
