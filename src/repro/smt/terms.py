"""A small many-sorted term language.

This is the formula layer of the reproduction's verification backend: the
offline stand-in for Z3's term API (DESIGN.md §2).  Terms are immutable,
hashable and lightly simplified at construction time (constant folding,
unit laws), so formulas stay compact before they reach the solver.

Sorts are strings: ``"bool"``, ``"int"`` (also used for datetimes),
``"float"``, ``"str"`` and ``"ref:<Model>"`` for object identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

BOOL = "bool"
INT = "int"
FLOAT = "float"
STR = "str"


def ref_sort(model: str) -> str:
    return f"ref:{model}"


@dataclass(frozen=True)
class Term:
    """Base class; use the constructor helpers below."""

    def walk(self) -> Iterator["Term"]:
        yield self

    @property
    def sort(self) -> str:
        raise NotImplementedError

    def free_vars(self) -> set[str]:
        out: set[str] = set()
        for node in self.walk():
            if isinstance(node, Var):
                out.add(node.name)
        return out


@dataclass(frozen=True)
class Const(Term):
    value: Any
    const_sort: str

    @property
    def sort(self) -> str:
        return self.const_sort


@dataclass(frozen=True)
class Var(Term):
    name: str
    var_sort: str

    @property
    def sort(self) -> str:
        return self.var_sort


@dataclass(frozen=True)
class App(Term):
    """An operator application."""

    op: str
    args: tuple[Term, ...]
    app_sort: str

    def walk(self) -> Iterator[Term]:
        yield self
        for arg in self.args:
            yield from arg.walk()

    @property
    def sort(self) -> str:
        return self.app_sort


# ---------------------------------------------------------------------------
# Constructors with light simplification
# ---------------------------------------------------------------------------

TRUE = Const(True, BOOL)
FALSE = Const(False, BOOL)


def const(value: Any) -> Term:
    if isinstance(value, bool):
        return Const(value, BOOL)
    if isinstance(value, int):
        return Const(value, INT)
    if isinstance(value, float):
        return Const(value, FLOAT)
    if isinstance(value, str):
        return Const(value, STR)
    raise TypeError(f"no term constant for {value!r}")


def var(name: str, sort: str) -> Var:
    return Var(name, sort)


def _is_const(t: Term) -> bool:
    return isinstance(t, Const)


def and_(*parts: Term) -> Term:
    flat: list[Term] = []
    for p in parts:
        if p == TRUE:
            continue
        if p == FALSE:
            return FALSE
        if isinstance(p, App) and p.op == "and":
            flat.extend(p.args)
        else:
            flat.append(p)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return App("and", tuple(flat), BOOL)


def or_(*parts: Term) -> Term:
    flat: list[Term] = []
    for p in parts:
        if p == FALSE:
            continue
        if p == TRUE:
            return TRUE
        if isinstance(p, App) and p.op == "or":
            flat.extend(p.args)
        else:
            flat.append(p)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return App("or", tuple(flat), BOOL)


def not_(p: Term) -> Term:
    if p == TRUE:
        return FALSE
    if p == FALSE:
        return TRUE
    if isinstance(p, App) and p.op == "not":
        return p.args[0]
    return App("not", (p,), BOOL)


def implies(a: Term, b: Term) -> Term:
    return or_(not_(a), b)


def eq(a: Term, b: Term) -> Term:
    if a == b:
        return TRUE
    if _is_const(a) and _is_const(b):
        return TRUE if a.value == b.value else FALSE
    return App("eq", (a, b), BOOL)


def ne(a: Term, b: Term) -> Term:
    return not_(eq(a, b))


def distinct(*terms: Term) -> Term:
    conjuncts = []
    for i, a in enumerate(terms):
        for b in terms[i + 1:]:
            conjuncts.append(ne(a, b))
    return and_(*conjuncts)


def ite(cond: Term, then: Term, other: Term) -> Term:
    if cond == TRUE:
        return then
    if cond == FALSE:
        return other
    if then == other:
        return then
    return App("ite", (cond, then, other), then.sort)


def _arith(op: str, a: Term, b: Term, pyop) -> Term:
    if _is_const(a) and _is_const(b):
        return const(pyop(a.value, b.value))
    sort = FLOAT if FLOAT in (a.sort, b.sort) else a.sort
    return App(op, (a, b), sort)


def add(a: Term, b: Term) -> Term:
    return _arith("add", a, b, lambda x, y: x + y)


def sub(a: Term, b: Term) -> Term:
    return _arith("sub", a, b, lambda x, y: x - y)


def mul(a: Term, b: Term) -> Term:
    return _arith("mul", a, b, lambda x, y: x * y)


def neg(a: Term) -> Term:
    if _is_const(a):
        return const(-a.value)
    return App("neg", (a,), a.sort)


def _cmp(op: str, a: Term, b: Term, pyop) -> Term:
    if _is_const(a) and _is_const(b):
        try:
            return const(bool(pyop(a.value, b.value)))
        except TypeError:
            return FALSE
    return App(op, (a, b), BOOL)


def lt(a: Term, b: Term) -> Term:
    return _cmp("lt", a, b, lambda x, y: x < y)


def le(a: Term, b: Term) -> Term:
    return _cmp("le", a, b, lambda x, y: x <= y)


def gt(a: Term, b: Term) -> Term:
    return lt(b, a)


def ge(a: Term, b: Term) -> Term:
    return le(b, a)


def concat(a: Term, b: Term) -> Term:
    if _is_const(a) and _is_const(b):
        return const(str(a.value) + str(b.value))
    return App("concat", (a, b), STR)


def contains(a: Term, b: Term) -> Term:
    if _is_const(a) and _is_const(b):
        return const(str(b.value) in str(a.value))
    return App("contains", (a, b), BOOL)


def startswith(a: Term, b: Term) -> Term:
    if _is_const(a) and _is_const(b):
        return const(str(a.value).startswith(str(b.value)))
    return App("startswith", (a, b), BOOL)


def in_list(a: Term, values: tuple) -> Term:
    return or_(*(eq(a, const(v)) for v in values))


def is_null(a: Term) -> Term:
    """NULL is modelled as the distinguished constant ``Const(None, sort)``."""
    if _is_const(a):
        return TRUE if a.value is None else FALSE
    return App("is_null", (a,), BOOL)


def null(sort: str) -> Const:
    return Const(None, sort)
