"""Noctua reproduction: automated, practical fine-grained consistency
analysis for ORM-based web applications (EuroSys '24).

Top-level convenience API::

    from repro import analyze_application, verify_application
    from repro.apps.smallbank import build_app

    analysis = analyze_application(build_app())
    report = verify_application(analysis)
    print(report.summary())

Sub-packages:

* :mod:`repro.soir` — the SOIR intermediate representation;
* :mod:`repro.orm` / :mod:`repro.web` — the Django-like substrate the
  evaluated applications are written against;
* :mod:`repro.analyzer` — the embedded symbolic program analyzer;
* :mod:`repro.verifier` — the pairwise consistency verifier;
* :mod:`repro.baselines` — Rigi-/Hamsaz-style baseline analyzers;
* :mod:`repro.georep` — the geo-replicated deployment simulator;
* :mod:`repro.apps` — the six evaluated applications.
"""

from .analyzer import analyze_application
from .verifier import CheckConfig, operation_conflict_table, verify_application

__version__ = "1.0.0"

__all__ = [
    "CheckConfig",
    "analyze_application",
    "operation_conflict_table",
    "verify_application",
    "__version__",
]
