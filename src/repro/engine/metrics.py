"""Scheduler observability: what the sweep did and where the time went.

Since the observability layer landed, :class:`EngineMetrics` is a
*projection of the trace*: the scheduler wraps every sweep in a
``pair-sweep`` span with one ``pair`` child per pair (route, timings,
worker pid — see docs/OBSERVABILITY.md for the span taxonomy), and
:meth:`EngineMetrics.from_sweep` folds that span tree into the flat
counter dict.  There is no second bookkeeping path: the numbers the CLI
and the benchmarks print are, by construction, the numbers in the trace.

Attached to ``VerificationReport.metrics`` as a plain dict so the report
layer stays decoupled from the engine, serializes into the deployment
JSON artifact unchanged, and is printable by the CLI and the benchmark
harness without imports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.tracer import Span


@dataclass
class EngineMetrics:
    """Counters and timings for one pair sweep."""

    #: requested worker count and what actually ran
    jobs_requested: int = 1
    jobs_used: int = 1
    mode: str = "serial"  # "serial" | "parallel"
    fallback_reason: str = ""

    pairs_total: int = 0
    #: fast-path pruning counts (no solver, no cache involved)
    pruned_conservative: int = 0
    pruned_order: int = 0
    pruned_disjoint: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: pairs actually handed to a checker this run
    solver_calls: int = 0

    #: failure-taxonomy counters (see :mod:`repro.engine.failures`):
    #: failed attempts by kind, attempts retried, pairs re-solved on the
    #: fallback engine, and pairs that degraded to ``unknown`` verdicts
    failures: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    engine_fallbacks: int = 0
    unknowns: int = 0
    #: mid-sweep cache checkpoints flushed and workers respawned after
    #: a crash or watchdog kill
    checkpoints: int = 0
    workers_respawned: int = 0

    #: wall clock of the solve phase only (dispatch to last result)
    solve_wall_s: float = 0.0
    #: sum of per-pair solve times across workers (the "work done")
    solve_cpu_s: float = 0.0
    #: original solve time of verdicts replayed from the cache
    cache_saved_s: float = 0.0

    #: busy seconds per worker (keyed by worker pid as a string so the
    #: dict survives a JSON round-trip unchanged)
    worker_busy_s: dict[str, float] = field(default_factory=dict)

    #: the slowest solved pairs this run: (left, right, seconds)
    slowest_pairs: list[tuple[str, str, float]] = field(default_factory=list)

    @classmethod
    def from_sweep(cls, sweep: Span, *, keep_slowest: int = 5
                   ) -> "EngineMetrics":
        """Fold a ``pair-sweep`` span (and its ``pair`` children) into
        the flat metrics the report/CLI/benchmarks consume.

        The sweep span's own attributes carry the execution-mode facts
        (``jobs_requested``/``jobs_used``/``mode``/``fallback_reason``/
        ``solve_wall_s``); each ``pair`` child carries its ``route``:

        * ``pruned:<tag>`` — resolved by a solver-free fast layer;
        * ``cached`` — replayed from the verdict cache (``saved_s``);
        * ``solved`` — handed to a checker (``pid``, wall time, and
          ``cache="miss"`` when a cache lookup preceded the solve);
        * ``unknown`` — the engine gave up on the pair (conservative,
          restricted verdict; ``failure`` carries the taxonomy kind);
        * ``failed-attempt`` — a failed serial attempt that was retried
          or degraded; *not* counted as a pair (the pair's final span
          is one of the routes above).

        ``pair-failure`` record children count failed attempts by kind;
        retries are derived from them (every failed attempt except the
        terminal one of each unknown pair was retried).
        """
        metrics = cls(jobs_requested=sweep.attrs.get("jobs_requested", 1))
        metrics.jobs_used = sweep.attrs.get("jobs_used", 1)
        metrics.mode = sweep.attrs.get("mode", "serial")
        metrics.fallback_reason = sweep.attrs.get("fallback_reason", "")
        metrics.solve_wall_s = sweep.attrs.get("solve_wall_s", 0.0)
        metrics.checkpoints = sweep.attrs.get("checkpoints", 0)
        metrics.workers_respawned = sweep.attrs.get("respawns", 0)
        solved: list[tuple[str, str, float]] = []
        failed_attempts = 0
        for span in sweep.children:
            if span.kind == "pair-failure":
                kind = span.attrs.get("failure", "unknown")
                metrics.failures[kind] = metrics.failures.get(kind, 0) + 1
                failed_attempts += 1
                continue
            if span.kind != "pair":
                continue
            route = span.attrs.get("route", "")
            if route == "failed-attempt":
                continue  # a retried attempt, not a pair outcome
            metrics.pairs_total += 1
            if span.attrs.get("engine_fallback"):
                metrics.engine_fallbacks += 1
            if route == "unknown":
                metrics.unknowns += 1
                if span.attrs.get("cache") == "miss":
                    metrics.cache_misses += 1
            elif route.startswith("pruned:"):
                tag = route.split(":", 1)[1]
                if tag == "conservative":
                    metrics.pruned_conservative += 1
                elif tag == "order":
                    metrics.pruned_order += 1
                elif tag == "disjoint":
                    metrics.pruned_disjoint += 1
            elif route == "cached":
                metrics.cache_hits += 1
                metrics.cache_saved_s += span.attrs.get("saved_s", 0.0)
            elif route == "solved":
                metrics.solver_calls += 1
                if span.attrs.get("cache") == "miss":
                    metrics.cache_misses += 1
                elapsed = span.wall_s
                metrics.solve_cpu_s += elapsed
                pid = str(span.attrs.get("pid", span.pid))
                metrics.worker_busy_s[pid] = (
                    metrics.worker_busy_s.get(pid, 0.0) + elapsed
                )
                solved.append((
                    span.attrs.get("left", ""),
                    span.attrs.get("right", ""),
                    elapsed,
                ))
        solved.sort(key=lambda t: t[2], reverse=True)
        metrics.slowest_pairs = solved[:keep_slowest]
        # Every failed attempt was retried except the terminal attempt
        # of each pair that degraded to unknown.
        metrics.retries = max(0, failed_attempts - metrics.unknowns)
        return metrics

    @property
    def pruned(self) -> int:
        return (self.pruned_conservative + self.pruned_order
                + self.pruned_disjoint)

    @property
    def worker_utilization(self) -> float:
        """Mean fraction of the solve phase each worker spent solving.

        1.0 means every worker was busy for the whole solve phase; low
        values flag stragglers or dispatch overhead dominating."""
        if not self.worker_busy_s or self.solve_wall_s <= 0.0:
            return 0.0
        capacity = len(self.worker_busy_s) * self.solve_wall_s
        return min(1.0, sum(self.worker_busy_s.values()) / capacity)

    def to_dict(self) -> dict:
        return {
            "jobs_requested": self.jobs_requested,
            "jobs_used": self.jobs_used,
            "mode": self.mode,
            "fallback_reason": self.fallback_reason,
            "pairs_total": self.pairs_total,
            "pruned": self.pruned,
            "pruned_conservative": self.pruned_conservative,
            "pruned_order": self.pruned_order,
            "pruned_disjoint": self.pruned_disjoint,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "solver_calls": self.solver_calls,
            "failures": dict(self.failures),
            "retries": self.retries,
            "engine_fallbacks": self.engine_fallbacks,
            "unknowns": self.unknowns,
            "checkpoints": self.checkpoints,
            "workers_respawned": self.workers_respawned,
            "solve_wall_s": self.solve_wall_s,
            "solve_cpu_s": self.solve_cpu_s,
            "cache_saved_s": self.cache_saved_s,
            "worker_utilization": self.worker_utilization,
            "worker_busy_s": dict(self.worker_busy_s),
            "slowest_pairs": [list(t) for t in self.slowest_pairs],
        }
