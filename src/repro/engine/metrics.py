"""Scheduler observability: what the sweep did and where the time went.

Since the observability layer landed, :class:`EngineMetrics` is a
*projection of the trace*: the scheduler wraps every sweep in a
``pair-sweep`` span with one ``pair`` child per pair (route, timings,
worker pid — see docs/OBSERVABILITY.md for the span taxonomy), and
:meth:`EngineMetrics.from_sweep` folds that span tree into the flat
counter dict.  There is no second bookkeeping path: the numbers the CLI
and the benchmarks print are, by construction, the numbers in the trace.

Since the metrics layer landed, the fold itself goes through one shared
routine, :func:`fold_sweep_into`, which emits the
``noctua_engine_*`` counter/histogram families into a
:class:`~repro.metrics.MetricsRegistry`.  ``from_sweep`` folds into a
private registry and projects the flat counters back out of it; the
scheduler *additionally* folds the finished sweep into the ambient
registry (when one is active) so cross-run aggregates accumulate.  The
hand-rolled counter loop this module used to carry is gone — the
registry is the single accounting path.

Attached to ``VerificationReport.metrics`` as a plain dict so the report
layer stays decoupled from the engine, serializes into the deployment
JSON artifact unchanged, and is printable by the CLI and the benchmark
harness without imports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics import MetricsRegistry
from ..obs.tracer import Span


def fold_sweep_into(registry: MetricsRegistry, sweep: Span) -> dict:
    """Fold a finished ``pair-sweep`` span into ``registry``.

    Emits the ``noctua_engine_*`` families:

    * ``pairs_total{route=...}`` — every pair outcome by route
      (``pruned:<tag>`` / ``cached`` / ``shared`` / ``solved`` /
      ``unknown``); ``failed-attempt`` spans are retried attempts, not
      outcomes, and ``portfolio-loser`` spans are the losing lane of a
      race (their solve time is observed by backend, but the pair was
      already counted under its winner) — both are skipped as outcomes;
    * ``classes_total`` / ``class_shared_total`` /
      ``pruned_pairs_total{tag=...}`` — reduction-pipeline effect:
      signature classes formed, verdicts shared from representatives,
      and solver-free prunes by tag;
    * ``portfolio_wins_total{backend=...}`` /
      ``portfolio_agreements_total`` / ``portfolio_disagreements_total``
      — race outcomes and the free cross-check samples
      (``portfolio-sample`` records) they produce;
    * ``cache_hits_total`` / ``cache_misses_total`` /
      ``cache_saved_seconds_total`` — cache efficiency;
    * ``pair_solve_seconds{backend=...}`` — per-pair solve wall time,
      split by the backend that actually produced the verdict
      (``engine_used`` on fallback pairs, the sweep engine otherwise);
    * ``failures_total{kind=...}`` / ``retries_total`` /
      ``unknowns_total`` / ``fallbacks_total`` — the failure taxonomy
      (``pair-failure`` records count failed attempts; every failed
      attempt was retried except the terminal one of each unknown pair);
    * ``checkpoints_total`` / ``respawns_total`` / ``sweeps_total{mode}``
      — sweep-level execution facts from the sweep span attributes.

    Returns the residue that is not a counter: per-worker busy seconds
    (keyed by pid string) and the solved pairs sorted slowest-first —
    the pieces :class:`EngineMetrics` keeps verbatim.
    """
    base_engine = sweep.attrs.get("engine", "enum")
    worker_busy: dict[str, float] = {}
    solved: list[tuple[str, str, float]] = []
    failed_attempts = 0
    unknowns = 0
    for span in sweep.children:
        if span.kind == "pair-failure":
            kind = span.attrs.get("failure", "unknown")
            registry.inc("noctua_engine_failures_total", kind=kind)
            failed_attempts += 1
            continue
        if span.kind == "portfolio-sample":
            if span.attrs.get("agree"):
                registry.inc("noctua_engine_portfolio_agreements_total")
            else:
                registry.inc("noctua_engine_portfolio_disagreements_total")
            continue
        if span.kind != "pair":
            continue
        route = span.attrs.get("route", "")
        if route == "failed-attempt":
            continue  # a retried attempt, not a pair outcome
        if route == "portfolio-loser":
            # The losing lane of a race: real solver work worth timing,
            # but the pair outcome was already counted under its winner.
            registry.observe("noctua_engine_pair_solve_seconds",
                             span.wall_s,
                             backend=span.attrs.get("engine_used",
                                                    base_engine))
            continue
        registry.inc("noctua_engine_pairs_total", route=route or "unknown")
        if route.startswith("pruned:"):
            registry.inc("noctua_engine_pruned_pairs_total",
                         tag=route.split(":", 1)[1])
        if span.attrs.get("engine_fallback"):
            registry.inc("noctua_engine_fallbacks_total")
        if route == "unknown":
            unknowns += 1
            registry.inc("noctua_engine_unknowns_total")
            if span.attrs.get("cache") == "miss":
                registry.inc("noctua_engine_cache_misses_total")
        elif route == "cached":
            registry.inc("noctua_engine_cache_hits_total")
            registry.inc("noctua_engine_cache_saved_seconds_total",
                         span.attrs.get("saved_s", 0.0))
        elif route == "shared":
            # Served from a class representative: neither a cache hit
            # nor a miss — the pair was never fingerprint-looked-up as
            # solver work in its own right.
            registry.inc("noctua_engine_class_shared_total")
        elif route == "solved":
            if span.attrs.get("cache") == "miss":
                registry.inc("noctua_engine_cache_misses_total")
            if span.attrs.get("portfolio_win"):
                registry.inc("noctua_engine_portfolio_wins_total",
                             backend=span.attrs["portfolio_win"])
            elapsed = span.wall_s
            backend = span.attrs.get("engine_used", base_engine)
            registry.observe("noctua_engine_pair_solve_seconds", elapsed,
                             backend=backend)
            pid = str(span.attrs.get("pid", span.pid))
            worker_busy[pid] = worker_busy.get(pid, 0.0) + elapsed
            solved.append((
                span.attrs.get("left", ""),
                span.attrs.get("right", ""),
                elapsed,
            ))
    retries = max(0, failed_attempts - unknowns)
    if retries:
        registry.inc("noctua_engine_retries_total", retries)
    checkpoints = sweep.attrs.get("checkpoints", 0)
    if checkpoints:
        registry.inc("noctua_engine_checkpoints_total", checkpoints)
    respawns = sweep.attrs.get("respawns", 0)
    if respawns:
        registry.inc("noctua_engine_respawns_total", respawns)
    classes = sweep.attrs.get("classes", 0)
    if classes:
        registry.inc("noctua_engine_classes_total", classes)
    registry.inc("noctua_engine_sweeps_total",
                 mode=sweep.attrs.get("mode", "serial"))
    solved.sort(key=lambda t: t[2], reverse=True)
    return {"worker_busy_s": worker_busy, "solved": solved,
            "retries": retries}


@dataclass
class EngineMetrics:
    """Counters and timings for one pair sweep."""

    #: requested worker count and what actually ran
    jobs_requested: int = 1
    jobs_used: int = 1
    mode: str = "serial"  # "serial" | "parallel"
    fallback_reason: str = ""

    pairs_total: int = 0
    #: fast-path pruning counts (no solver, no cache involved)
    pruned_conservative: int = 0
    pruned_order: int = 0
    pruned_disjoint: int = 0
    pruned_rw_disjoint: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: reduction pipeline: signature classes formed this sweep and pair
    #: verdicts served by relabeling a class representative's verdict
    class_count: int = 0
    shared: int = 0
    #: pairs actually handed to a checker this run
    solver_calls: int = 0
    #: portfolio race outcomes: wins by backend, and cross-check samples
    #: where both lanes finished (agreed / disagreed)
    portfolio_wins: dict[str, int] = field(default_factory=dict)
    portfolio_agreements: int = 0
    portfolio_disagreements: int = 0

    #: failure-taxonomy counters (see :mod:`repro.engine.failures`):
    #: failed attempts by kind, attempts retried, pairs re-solved on the
    #: fallback engine, and pairs that degraded to ``unknown`` verdicts
    failures: dict[str, int] = field(default_factory=dict)
    retries: int = 0
    engine_fallbacks: int = 0
    unknowns: int = 0
    #: mid-sweep cache checkpoints flushed and workers respawned after
    #: a crash or watchdog kill
    checkpoints: int = 0
    workers_respawned: int = 0

    #: wall clock of the solve phase only (dispatch to last result)
    solve_wall_s: float = 0.0
    #: sum of per-pair solve times across workers (the "work done")
    solve_cpu_s: float = 0.0
    #: original solve time of verdicts replayed from the cache
    cache_saved_s: float = 0.0

    #: busy seconds per worker (keyed by worker pid as a string so the
    #: dict survives a JSON round-trip unchanged)
    worker_busy_s: dict[str, float] = field(default_factory=dict)

    #: the slowest solved pairs this run: (left, right, seconds)
    slowest_pairs: list[tuple[str, str, float]] = field(default_factory=list)

    @classmethod
    def from_sweep(cls, sweep: Span, *, keep_slowest: int = 5
                   ) -> "EngineMetrics":
        """Fold a ``pair-sweep`` span (and its ``pair`` children) into
        the flat metrics the report/CLI/benchmarks consume.

        The fold runs :func:`fold_sweep_into` against a private
        registry, then projects the counter fields back out of it; the
        execution-mode facts (``jobs_requested``/``jobs_used``/``mode``/
        ``fallback_reason``/``solve_wall_s``) come from the sweep span's
        own attributes.  Per-pair route semantics are documented on
        :func:`fold_sweep_into`.
        """
        registry = MetricsRegistry()
        residue = fold_sweep_into(registry, sweep)
        metrics = cls(jobs_requested=sweep.attrs.get("jobs_requested", 1))
        metrics.jobs_used = sweep.attrs.get("jobs_used", 1)
        metrics.mode = sweep.attrs.get("mode", "serial")
        metrics.fallback_reason = sweep.attrs.get("fallback_reason", "")
        metrics.solve_wall_s = sweep.attrs.get("solve_wall_s", 0.0)
        metrics.checkpoints = sweep.attrs.get("checkpoints", 0)
        metrics.workers_respawned = sweep.attrs.get("respawns", 0)

        pairs = "noctua_engine_pairs_total"
        metrics.pairs_total = int(registry.total(pairs))
        metrics.pruned_conservative = int(
            registry.value(pairs, route="pruned:conservative"))
        metrics.pruned_order = int(registry.value(pairs, route="pruned:order"))
        metrics.pruned_disjoint = int(
            registry.value(pairs, route="pruned:disjoint"))
        metrics.pruned_rw_disjoint = int(
            registry.value(pairs, route="pruned:rw-disjoint"))
        metrics.class_count = int(sweep.attrs.get("classes", 0))
        metrics.shared = int(
            registry.value("noctua_engine_class_shared_total"))
        metrics.portfolio_wins = {
            labels["backend"]: int(count)
            for labels, count in registry.series(
                "noctua_engine_portfolio_wins_total")
        }
        metrics.portfolio_agreements = int(
            registry.value("noctua_engine_portfolio_agreements_total"))
        metrics.portfolio_disagreements = int(
            registry.value("noctua_engine_portfolio_disagreements_total"))
        metrics.solver_calls = int(registry.value(pairs, route="solved"))
        metrics.unknowns = int(registry.value(pairs, route="unknown"))
        metrics.cache_hits = int(
            registry.value("noctua_engine_cache_hits_total"))
        metrics.cache_misses = int(
            registry.value("noctua_engine_cache_misses_total"))
        metrics.cache_saved_s = registry.value(
            "noctua_engine_cache_saved_seconds_total")
        metrics.engine_fallbacks = int(
            registry.value("noctua_engine_fallbacks_total"))
        metrics.failures = {
            labels["kind"]: int(count)
            for labels, count in registry.series("noctua_engine_failures_total")
        }
        metrics.retries = residue["retries"]
        metrics.solve_cpu_s = registry.histogram_sum(
            "noctua_engine_pair_solve_seconds")
        metrics.worker_busy_s = residue["worker_busy_s"]
        metrics.slowest_pairs = residue["solved"][:keep_slowest]
        return metrics

    @property
    def pruned(self) -> int:
        return (self.pruned_conservative + self.pruned_order
                + self.pruned_disjoint + self.pruned_rw_disjoint)

    @property
    def worker_utilization(self) -> float:
        """Mean fraction of the solve phase each worker spent solving.

        1.0 means every worker was busy for the whole solve phase; low
        values flag stragglers or dispatch overhead dominating."""
        if not self.worker_busy_s or self.solve_wall_s <= 0.0:
            return 0.0
        capacity = len(self.worker_busy_s) * self.solve_wall_s
        return min(1.0, sum(self.worker_busy_s.values()) / capacity)

    def to_dict(self) -> dict:
        return {
            "jobs_requested": self.jobs_requested,
            "jobs_used": self.jobs_used,
            "mode": self.mode,
            "fallback_reason": self.fallback_reason,
            "pairs_total": self.pairs_total,
            "pruned": self.pruned,
            "pruned_conservative": self.pruned_conservative,
            "pruned_order": self.pruned_order,
            "pruned_disjoint": self.pruned_disjoint,
            "pruned_rw_disjoint": self.pruned_rw_disjoint,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "class_count": self.class_count,
            "shared": self.shared,
            "solver_calls": self.solver_calls,
            "portfolio_wins": dict(self.portfolio_wins),
            "portfolio_agreements": self.portfolio_agreements,
            "portfolio_disagreements": self.portfolio_disagreements,
            "failures": dict(self.failures),
            "retries": self.retries,
            "engine_fallbacks": self.engine_fallbacks,
            "unknowns": self.unknowns,
            "checkpoints": self.checkpoints,
            "workers_respawned": self.workers_respawned,
            "solve_wall_s": self.solve_wall_s,
            "solve_cpu_s": self.solve_cpu_s,
            "cache_saved_s": self.cache_saved_s,
            "worker_utilization": self.worker_utilization,
            "worker_busy_s": dict(self.worker_busy_s),
            "slowest_pairs": [list(t) for t in self.slowest_pairs],
        }
