"""Scheduler observability: what the sweep did and where the time went.

Attached to ``VerificationReport.metrics`` as a plain dict so the report
layer stays decoupled from the engine, serializes into the deployment
JSON artifact unchanged, and is printable by the CLI and the benchmark
harness without imports."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineMetrics:
    """Counters and timings for one pair sweep."""

    #: requested worker count and what actually ran
    jobs_requested: int = 1
    jobs_used: int = 1
    mode: str = "serial"  # "serial" | "parallel"
    fallback_reason: str = ""

    pairs_total: int = 0
    #: fast-path pruning counts (no solver, no cache involved)
    pruned_conservative: int = 0
    pruned_order: int = 0
    pruned_disjoint: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: pairs actually handed to a checker this run
    solver_calls: int = 0

    #: wall clock of the solve phase only (dispatch to last result)
    solve_wall_s: float = 0.0
    #: sum of per-pair solve times across workers (the "work done")
    solve_cpu_s: float = 0.0
    #: original solve time of verdicts replayed from the cache
    cache_saved_s: float = 0.0

    #: busy seconds per worker (keyed by worker pid as a string so the
    #: dict survives a JSON round-trip unchanged)
    worker_busy_s: dict[str, float] = field(default_factory=dict)

    #: the slowest solved pairs this run: (left, right, seconds)
    slowest_pairs: list[tuple[str, str, float]] = field(default_factory=list)

    @property
    def pruned(self) -> int:
        return (self.pruned_conservative + self.pruned_order
                + self.pruned_disjoint)

    @property
    def worker_utilization(self) -> float:
        """Mean fraction of the solve phase each worker spent solving.

        1.0 means every worker was busy for the whole solve phase; low
        values flag stragglers or dispatch overhead dominating."""
        if not self.worker_busy_s or self.solve_wall_s <= 0.0:
            return 0.0
        capacity = len(self.worker_busy_s) * self.solve_wall_s
        return min(1.0, sum(self.worker_busy_s.values()) / capacity)

    def record_solve(self, pid: int, left: str, right: str,
                     elapsed_s: float, *, keep_slowest: int = 5) -> None:
        self.solver_calls += 1
        self.solve_cpu_s += elapsed_s
        key = str(pid)
        self.worker_busy_s[key] = self.worker_busy_s.get(key, 0.0) + elapsed_s
        self.slowest_pairs.append((left, right, elapsed_s))
        self.slowest_pairs.sort(key=lambda t: t[2], reverse=True)
        del self.slowest_pairs[keep_slowest:]

    def to_dict(self) -> dict:
        return {
            "jobs_requested": self.jobs_requested,
            "jobs_used": self.jobs_used,
            "mode": self.mode,
            "fallback_reason": self.fallback_reason,
            "pairs_total": self.pairs_total,
            "pruned": self.pruned,
            "pruned_conservative": self.pruned_conservative,
            "pruned_order": self.pruned_order,
            "pruned_disjoint": self.pruned_disjoint,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "solver_calls": self.solver_calls,
            "solve_wall_s": self.solve_wall_s,
            "solve_cpu_s": self.solve_cpu_s,
            "cache_saved_s": self.cache_saved_s,
            "worker_utilization": self.worker_utilization,
            "worker_busy_s": dict(self.worker_busy_s),
            "slowest_pairs": [list(t) for t in self.slowest_pairs],
        }
