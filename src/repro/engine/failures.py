"""Failure taxonomy and degradation policies for the verification engine.

"On the Complexity of Checking Transactional Consistency" (PAPERS.md)
puts the pair check in NP-hard territory in the worst case, so an engine
that sweeps hundreds of pairs *will* eventually meet one it cannot decide
within budget — and a continuous verification service must treat that as
a routine event, not a crash.  This module gives the scheduler the
vocabulary and the policies for that event:

* :class:`PairFailure` — one failed attempt at one pair, classified into
  the three-way taxonomy ``timeout`` / ``crash`` / ``solver-error``
  (:data:`FAILURE_KINDS`);
* :func:`deadline` — a wall-clock guard for the *serial* solve path
  (``SIGALRM``-based; worker-side deadlines are enforced by the parent
  watchdog, which can actually kill a wedged process);
* :class:`RetryPolicy` / :func:`plan_retry` — bounded retry with
  exponential backoff, budget degradation on timeout
  (:func:`degrade_config`) and SMT→enum engine fallback on persistent
  solver failure;
* :func:`unknown_verdict` — the terminal degradation: a conservative
  ``Outcome.UNKNOWN`` verdict that *restricts* the pair, keeping the
  restriction set sound when the engine could not decide (restricting
  too much is safe; restricting too little is not).

Unknown verdicts are never written to the result cache: they describe
the engine's failure, not the pair's semantics, and must be re-attempted
on the next sweep.
"""

from __future__ import annotations

import dataclasses
import signal
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..verifier.enumcheck import CheckConfig
from ..verifier.restrictions import CheckResult, Outcome, PairVerdict

#: the failure taxonomy attached to verdicts, spans and metrics
TIMEOUT = "timeout"
CRASH = "crash"
SOLVER_ERROR = "solver-error"
FAILURE_KINDS = (TIMEOUT, CRASH, SOLVER_ERROR)

#: hard cap on failure details copied into span attributes and
#: ``fallback_reason`` — a pathological exception repr must not bloat
#: traces or the report JSON
MAX_DETAIL_CHARS = 160


def cap_text(text: str, limit: int = MAX_DETAIL_CHARS) -> str:
    """Truncate ``text`` to ``limit`` characters with an ellipsis marker."""
    text = str(text)
    if len(text) <= limit:
        return text
    return text[: max(0, limit - 3)] + "..."


class DeadlineExceeded(Exception):
    """A per-pair wall-clock deadline fired (serial path)."""


class WorkerCrash(Exception):
    """An in-process stand-in for a worker crash.

    The chaos layer raises it on the serial path (where ``os._exit``
    would take the whole sweep down); the parent classifies a genuinely
    dead worker process the same way."""


@contextmanager
def deadline(seconds: float | None) -> Iterator[None]:
    """Enforce a wall-clock deadline on the enclosed block.

    Uses ``SIGALRM``/``setitimer``, so it only arms on the main thread of
    a Unix process; anywhere else it is a no-op and the cooperative
    ``CheckConfig.timeout_s`` budget is the only guard.  The previous
    itimer and handler are restored on exit, so nesting with other alarm
    users is safe as long as their intervals do not overlap."""
    if (
        seconds is None
        or seconds <= 0
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _fire(signum, frame):
        raise DeadlineExceeded(f"pair exceeded {seconds:.1f}s deadline")

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def default_deadline(config: CheckConfig) -> float:
    """The watchdog deadline used when the caller does not pick one.

    Generous by construction: both checks get their full cooperative
    ``timeout_s`` budget plus slack, so a well-behaved checker always
    times out cooperatively (a *decided*, conservative ``TIMEOUT``
    outcome) before the watchdog kills it (an *undecided* ``unknown``)."""
    return max(10.0, 4.0 * config.timeout_s + 5.0)


def classify_exception(exc: BaseException) -> tuple[str, str]:
    """Map an exception from a solve attempt onto the failure taxonomy."""
    if isinstance(exc, DeadlineExceeded):
        return TIMEOUT, cap_text(str(exc) or "pair deadline exceeded")
    if isinstance(exc, WorkerCrash):
        return CRASH, cap_text(str(exc) or "worker crashed")
    return SOLVER_ERROR, cap_text(f"{type(exc).__name__}: {exc}")


@dataclass(frozen=True)
class PairFailure:
    """One failed attempt at solving one pair."""

    kind: str  # one of FAILURE_KINDS
    left: str
    right: str
    attempt: int  # 1-based attempt number that failed
    stage: str  # "worker" | "serial"
    detail: str = ""

    def describe(self) -> str:
        base = (f"engine {self.kind} on attempt {self.attempt} "
                f"({self.stage})")
        if self.detail:
            base += f": {self.detail}"
        return cap_text(base, MAX_DETAIL_CHARS + 60)


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler reacts to a :class:`PairFailure`.

    ``max_attempts`` bounds the total tries per pair (the first attempt
    included); retries run on a fresh worker after an exponential
    backoff.  A ``timeout`` retry optionally degrades the search budget
    (:func:`degrade_config`) so the retry has a chance of *deciding*
    (conservatively) instead of being killed again; a ``crash`` or
    ``solver-error`` under the SMT backend retries on the enum engine —
    the two backends implement the same rules, so a verdict from the
    fallback engine is still a verdict."""

    max_attempts: int = 3
    backoff_s: float = 0.05
    degrade_on_timeout: bool = True
    fallback_engine: str | None = "enum"

    def backoff_for(self, attempt: int) -> float:
        """Backoff before retrying after 1-based failed attempt N."""
        return self.backoff_s * (2 ** max(0, attempt - 1))


#: a solve task as it travels the scheduler and the worker protocol:
#: (slot, i, j, attempt, engine, degrade_level)
Task = tuple[int, int, int, int, str, int]


def plan_retry(task: Task, kind: str, policy: RetryPolicy,
               *, base_engine: str) -> Task | None:
    """The follow-up task for a failed attempt, or ``None`` to degrade.

    Applies the policy's three levers: attempt budget, engine fallback
    (SMT crash/solver-error → the fallback engine), and budget
    degradation (timeout → next degrade level)."""
    slot, i, j, attempt, engine, level = task
    if attempt + 1 >= policy.max_attempts:
        return None
    next_engine = engine
    if (
        base_engine == "smt"
        and engine == "smt"
        and kind in (CRASH, SOLVER_ERROR)
        and policy.fallback_engine
    ):
        next_engine = policy.fallback_engine
    next_level = level
    if kind == TIMEOUT and policy.degrade_on_timeout:
        next_level = level + 1
    return (slot, i, j, attempt + 1, next_engine, next_level)


def degrade_config(config: CheckConfig, level: int) -> CheckConfig:
    """A reduced-budget copy of ``config`` for retry level ``level``.

    Every budget knob is halved per level (with floors), so a pair that
    blew its deadline gets a realistic chance to finish cooperatively —
    a ``TIMEOUT`` outcome is a decided, conservative verdict, which
    beats an ``unknown``.  Degraded verdicts are never cached: they were
    computed under a different budget than the fingerprint claims."""
    if level <= 0:
        return config
    factor = 2 ** level
    return dataclasses.replace(
        config,
        timeout_s=max(0.1, config.timeout_s / factor),
        max_samples=max(20, config.max_samples // factor),
        max_exhaustive=max(200, config.max_exhaustive // factor),
        env_product_cap=max(64, config.env_product_cap // factor),
    )


def unknown_verdict(left: str, right: str, failure: PairFailure, *,
                    left_view: str = "", right_view: str = "") -> PairVerdict:
    """The conservative terminal verdict for an undecidable pair.

    Both checks carry ``Outcome.UNKNOWN`` (which restricts — see
    ``Outcome.restricts``) and the failure description, so the report,
    the explainer and the JSON artifact can all say *why* the pair is
    restricted without a witness."""
    detail = failure.describe()
    verdict = PairVerdict(left, right, left_view=left_view,
                          right_view=right_view)
    verdict.commutativity = CheckResult(
        left, right, "commutativity", Outcome.UNKNOWN, detail=detail)
    verdict.semantic = CheckResult(
        left, right, "semantic", Outcome.UNKNOWN, detail=detail)
    return verdict
