"""Pre-solve reduction: signature classes and read/write disjointness.

The pair sweep is quadratic in effectful paths, and most of the matrix is
redundant: real applications contain many *isomorphic* check problems
(the same CRUD shape stamped out over different models) and many pairs
that touch overlapping models without ever touching the same column.
This module removes both kinds of redundancy before any solver runs:

* **Operation-signature equivalence classes** — :func:`canonical_pair`
  rewrites a pair's complete check problem (both SOIR paths plus the
  sub-schema their footprints touch) into a canonical form in which
  models, relations, fields, arguments and opaques are renamed to
  positional tokens (``M0``, ``R0``, ``F0``, ``v0``, …) in first-
  occurrence order.  Two pairs with the same canonical digest are the
  same problem up to renaming: the scheduler solves one *representative*
  and shares the verdict with every other member, recording the member →
  representative renaming as provenance.  Renaming is injective, so two
  *different* problems can never collapse into one class — imperfect
  canonicalization only costs sharing, never soundness.

* **Read/write-set disjointness** — :func:`rw_footprint` extracts the
  column-level footprint of a path as ``(reads, writes)`` sets of tokens
  (``("rows", model)``, ``("field", model, field)``, ``("assoc",
  relation)``) and :func:`rw_disjoint` applies the classic conflict
  condition: if neither path writes anything the other reads or writes,
  the pair provably commutes and cannot invalidate, so both checks pass
  without a solver call.  This is strictly finer than the model-level
  disjointness fast path in :func:`repro.verifier.runner.classify_pair`:
  two paths updating *different columns of the same table* prune here.

* **Sweep planning** — :func:`plan_sweep` runs the complete solver-free
  pass (pruning, cache lookup, class assignment) and returns one
  :class:`PairPlan` per pair.  The scheduler, the service daemon's
  invalidation preview and cache maintenance all consume the same plan,
  which is what keeps ``preview == actual solver calls`` true by
  construction under class sharing.

Soundness notes (also in docs/REDUCTION.md): verdicts are shared even
when the representative's outcome is a budget artifact (``TIMEOUT``),
because the bounded checkers are deterministic given the canonical
structure — the only name-sensitivity left is the enum checker's
per-pair sampling seed, which can in principle make two isomorphic
problems diverge *near* a budget edge.  The builtin-app property test
(reduction on ≡ reduction off, byte-identical restriction sets) pins
this in practice; ``--no-reduce`` disables the whole layer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from ..soir import commands as C
from ..soir import expr as E
from ..soir.path import AnalysisResult, CodePath
from ..soir.schema import ModelSchema, RelationSchema, Schema
from ..soir.serialize import path_to_obj, type_to_obj
from ..verifier.enumcheck import CheckConfig
from ..verifier.restrictions import PairVerdict

#: bump when canonicalization rules change — part of the class digest, so
#: stale class keys can never alias across versions of the rules
REDUCTION_VERSION = 1

_PREFIX = {"model": "M", "relation": "R", "field": "F",
           "var": "v", "opaque": "u"}


class _Renamer:
    """First-occurrence positional renaming, one namespace per kind.

    Injective by construction: within a kind, distinct original names
    always get distinct tokens, so canonicalization can merge only
    genuinely isomorphic problems."""

    def __init__(self) -> None:
        self.maps: dict[str, dict[str, str]] = {
            kind: {} for kind in _PREFIX
        }

    def rename(self, kind: str, name: str) -> str:
        table = self.maps[kind]
        token = table.get(name)
        if token is None:
            token = f"{_PREFIX[kind]}{len(table)}"
            table[name] = token
        return token

    def index(self, kind: str, name: str) -> int | None:
        token = self.maps[kind].get(name)
        return None if token is None else int(token[len(_PREFIX[kind]):])


# ---------------------------------------------------------------------------
# Canonicalization.  Operates on the serialize.py JSON shapes so the
# canonical form is exactly what the checkers consume, then renames every
# name-bearing key through one shared renamer.
# ---------------------------------------------------------------------------


def _canon_type(t, rn: _Renamer):
    if isinstance(t, str):
        return t
    kind = t["kind"]
    if kind in ("obj", "set", "ref"):
        return {"kind": kind, "model": rn.rename("model", t["model"])}
    if kind == "list":
        return {"kind": "list", "elem": _canon_type(t["elem"], rn)}
    return t


def _canon_relpath(relpath, rn: _Renamer):
    return [{"relation": rn.rename("relation", h["relation"]),
             "direction": h["direction"]} for h in relpath]


def _canon_expr(o: dict, rn: _Renamer) -> dict:
    n = o["node"]
    out: dict = {"node": n}
    if n == "Lit":
        out["value"] = o["value"]
        out["type"] = _canon_type(o["type"], rn)
    elif n == "NoneLit":
        out["type"] = _canon_type(o["type"], rn)
    elif n == "Var":
        out["name"] = rn.rename("var", o["name"])
        out["type"] = _canon_type(o["type"], rn)
    elif n == "Opaque":
        out["name"] = rn.rename("opaque", o["name"])
        out["type"] = _canon_type(o["type"], rn)
        out["deps"] = [_canon_expr(d, rn) for d in o.get("deps", ())]
    elif n in ("BinOp", "Cmp"):
        out["op"] = o["op"]
        out["left"] = _canon_expr(o["left"], rn)
        out["right"] = _canon_expr(o["right"], rn)
    elif n in ("Neg", "Not"):
        out["operand"] = _canon_expr(o["operand"], rn)
    elif n in ("And", "Or"):
        out["args"] = [_canon_expr(a, rn) for a in o["args"]]
    elif n == "Ite":
        out["cond"] = _canon_expr(o["cond"], rn)
        out["then"] = _canon_expr(o["then"], rn)
        out["else"] = _canon_expr(o["else"], rn)
    elif n == "FieldGet":
        out["obj"] = _canon_expr(o["obj"], rn)
        out["field"] = rn.rename("field", o["field"])
        out["type"] = _canon_type(o["type"], rn)
    elif n == "SetField":
        out["field"] = rn.rename("field", o["field"])
        out["value"] = _canon_expr(o["value"], rn)
        out["obj"] = _canon_expr(o["obj"], rn)
    elif n == "MakeObj":
        out["model"] = rn.rename("model", o["model"])
        out["fields"] = [[rn.rename("field", fname), _canon_expr(v, rn)]
                         for fname, v in o["fields"]]
    elif n == "MapSet":
        out["qs"] = _canon_expr(o["qs"], rn)
        out["field"] = rn.rename("field", o["field"])
        out["value"] = _canon_expr(o["value"], rn)
    elif n in ("Singleton", "RefOf"):
        out["obj"] = _canon_expr(o["obj"], rn)
    elif n == "Deref":
        out["ref"] = _canon_expr(o["ref"], rn)
        out["model"] = rn.rename("model", o["model"])
    elif n in ("AnyOf", "FirstOf", "LastOf", "ReverseSet", "IsEmpty"):
        out["qs"] = _canon_expr(o["qs"], rn)
    elif n == "All":
        out["model"] = rn.rename("model", o["model"])
    elif n == "Filter":
        out["qs"] = _canon_expr(o["qs"], rn)
        out["relpath"] = _canon_relpath(o["relpath"], rn)
        out["field"] = rn.rename("field", o["field"])
        out["op"] = o["op"]
        out["value"] = _canon_expr(o["value"], rn)
    elif n == "Follow":
        out["qs"] = _canon_expr(o["qs"], rn)
        out["relpath"] = _canon_relpath(o["relpath"], rn)
        out["target"] = rn.rename("model", o["target"])
    elif n == "OrderBy":
        out["qs"] = _canon_expr(o["qs"], rn)
        out["field"] = rn.rename("field", o["field"])
        out["order"] = o["order"]
    elif n == "Aggregate":
        out["qs"] = _canon_expr(o["qs"], rn)
        out["agg"] = o["agg"]
        out["field"] = rn.rename("field", o["field"])
        out["type"] = _canon_type(o["type"], rn)
    elif n == "Exists":
        out["model"] = rn.rename("model", o["model"])
        out["ref"] = _canon_expr(o["ref"], rn)
    elif n == "MemberOf":
        out["obj"] = _canon_expr(o["obj"], rn)
        out["qs"] = _canon_expr(o["qs"], rn)
    else:  # future node kinds: fall back to no sharing, never to aliasing
        raise ValueError(f"uncanonicalizable node {n!r}")
    return out


def _canon_command(o: dict, rn: _Renamer) -> dict:
    kind = o["cmd"]
    out: dict = {"cmd": kind}
    if kind == "guard":
        out["cond"] = _canon_expr(o["cond"], rn)
    elif kind in ("update", "delete"):
        out["qs"] = _canon_expr(o["qs"], rn)
    elif kind in ("link", "delink"):
        out["relation"] = rn.rename("relation", o["relation"])
        out["src"] = _canon_expr(o["src"], rn)
        out["dst"] = _canon_expr(o["dst"], rn)
    elif kind == "rlink":
        out["relation"] = rn.rename("relation", o["relation"])
        out["srcs"] = _canon_expr(o["srcs"], rn)
        out["dst"] = _canon_expr(o["dst"], rn)
    elif kind == "clearlinks":
        out["relation"] = rn.rename("relation", o["relation"])
        out["obj"] = _canon_expr(o["obj"], rn)
        out["end"] = o["end"]
    else:
        raise ValueError(f"uncanonicalizable command {kind!r}")
    return out


def _canon_path(path: CodePath, rn: _Renamer, label: str) -> dict:
    o = path_to_obj(path)
    return {
        # labels (name, view, branch_trace, abort_reason) carry no check
        # semantics — normalized away so label-only differences share
        "name": label,
        "args": [
            {"name": rn.rename("var", a["name"]),
             "type": _canon_type(a["type"], rn),
             "source": a["source"], "unique_id": a["unique_id"]}
            for a in o["args"]
        ],
        "commands": [_canon_command(c, rn) for c in o["commands"]],
        "aborted": o["aborted"],
        "conservative": o["conservative"],
    }


def _canon_model(m: ModelSchema, rn: _Renamer) -> dict:
    return {
        "name": rn.rename("model", m.name),
        "pk": rn.rename("field", m.pk),
        "auto_pk": m.auto_pk,
        "unique_together": [[rn.rename("field", f) for f in group]
                            for group in m.unique_together],
        # declaration order is kept: it seeds state enumeration order
        "fields": [
            {"name": rn.rename("field", f.name),
             "type": _canon_type(type_to_obj(f.type), rn),
             "unique": f.unique, "nullable": f.nullable,
             "min_value": f.min_value,
             "choices": list(f.choices) if f.choices else None}
            for f in m.fields
        ],
    }


def _canon_relation(r: RelationSchema, rn: _Renamer) -> dict:
    return {
        "name": rn.rename("relation", r.name),
        "source": rn.rename("model", r.source),
        "target": rn.rename("model", r.target),
        "kind": r.kind, "on_delete": r.on_delete,
        # reverse_name is an analyzer-side label, not check semantics
        "nullable": r.nullable,
    }


def canonical_case(
    paths: tuple[CodePath, ...] | list[CodePath], schema: Schema,
) -> tuple[str, dict[str, dict[str, str]]]:
    """Canonicalize a complete check problem over ``len(paths)`` paths.

    The two-path payload shape is exactly :func:`canonical_pair`'s
    historical one (``"p"``/``"q"`` keys), so pair digests — and with
    them every signature-class cache key — are unchanged; k-path
    problems (the difftest schedule oracle) use a ``"paths"`` list and
    can never alias a pair digest."""
    rn = _Renamer()
    labels = [chr(ord("P") + i) for i in range(len(paths))]
    objs = [_canon_path(p, rn, label) for p, label in zip(paths, labels)]

    # The touched sub-schema is exactly the model-finder's scope footprint:
    # touched models ∪ touched relations, plus relation endpoint models.
    models: set[str] = set()
    rels: set[str] = set()
    for p in paths:
        models |= set(p.models_touched(schema))
        rels |= set(p.relations_touched(schema))
    for rname in rels:
        r = schema.relation(rname)
        models.add(r.source)
        models.add(r.target)

    # Elements already named during the path walk come first, in token
    # order; the rest follow in original-name order (deterministic, at
    # worst costing sharing across pure schema-name permutations).
    def ordered(names: set[str], kind: str) -> list[str]:
        return sorted(names, key=lambda n: (
            (0, rn.index(kind, n)) if rn.index(kind, n) is not None
            else (1, n)))

    payload = {
        "v": REDUCTION_VERSION,
        "models": [_canon_model(schema.model(name), rn)
                   for name in ordered(models, "model")],
        "relations": [_canon_relation(schema.relation(name), rn)
                      for name in ordered(rels, "relation")],
    }
    if len(paths) == 2:
        payload["p"], payload["q"] = objs
    else:
        payload["paths"] = objs
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest(), rn.maps


def canonical_pair(
    p: CodePath, q: CodePath, schema: Schema,
) -> tuple[str, dict[str, dict[str, str]]]:
    """Canonicalize one pair's complete check problem.

    Returns ``(class_key, maps)``: the signature-class digest and the
    per-kind ``original name -> token`` maps used to produce it (the raw
    material for member → representative renamings)."""
    return canonical_case((p, q), schema)


def renaming_between(
    member_maps: dict[str, dict[str, str]],
    rep_maps: dict[str, dict[str, str]],
) -> dict[str, dict[str, str]]:
    """Member → representative renaming, composed through the canonical
    tokens.  Identity entries are dropped; empty kinds are omitted."""
    out: dict[str, dict[str, str]] = {}
    for kind, table in member_maps.items():
        inverse = {tok: name for name, tok in rep_maps.get(kind, {}).items()}
        pairs = {
            name: inverse[tok]
            for name, tok in table.items()
            if tok in inverse and inverse[tok] != name
        }
        if pairs:
            out[kind] = pairs
    return out


# ---------------------------------------------------------------------------
# Read/write footprints.
# ---------------------------------------------------------------------------

_ROWS = "rows"
_FIELD = "field"
_ASSOC = "assoc"


def _qs_model(e: E.Expr) -> str | None:
    t = e.type
    return t.model if t.is_model_type() else None


def _terminal_model(qs: E.Expr, relpath, schema: Schema) -> str | None:
    """The model a filter's field lives on: the query-set model, or the
    far end of the final relation hop when a relpath is present."""
    if relpath:
        hop = relpath[-1]
        r = schema.relation(hop.relation)
        forward = getattr(hop.direction, "value", hop.direction) == "forward"
        return r.target if forward else r.source
    return _qs_model(qs)


def rw_footprint(
    path: CodePath, schema: Schema,
) -> tuple[frozenset, frozenset]:
    """Column-level ``(reads, writes)`` footprint of one path.

    Tokens: ``("rows", model)`` for row existence/cardinality/order,
    ``("field", model, field)`` for one column, ``("assoc", relation)``
    for one association set.  The extraction is deliberately
    conservative: uniqueness constraints add implicit reads (an insert or
    unique-column write observes the competing rows), deletes write the
    full cascade closure, updates whose query set can denote a *missing*
    row (``Deref``/``MakeObj``-rooted — upserts under apply semantics,
    since guards do not re-run at remote replicas and a missing ``Deref``
    ghosts) write row existence and every defaulted column, and any
    model-typed expression reads row existence — so a missed interaction
    means a missed *prune*, never a missed conflict."""
    reads: set = set()
    writes: set = set()

    def field_groups(model: str, fname: str) -> list[tuple[str, ...]]:
        m = schema.model(model)
        groups = [g for g in m.unique_together if fname in g]
        f = next((f for f in m.fields if f.name == fname), None)
        if f is not None and (f.unique or fname == m.pk):
            groups.append((fname,))
        return groups

    def write_field(model: str | None, fname: str) -> None:
        if model is None:
            return
        writes.add((_FIELD, model, fname))
        # Writing into a uniqueness constraint observes every competing
        # row: the write's validity reads the group columns and the row
        # population itself.
        for group in field_groups(model, fname):
            reads.add((_ROWS, model))
            for member in group:
                reads.add((_FIELD, model, member))

    def visit(node: E.Expr) -> None:
        t = node.type
        if t.is_model_type():
            reads.add((_ROWS, t.model))
        if isinstance(node, E.FieldGet):
            model = _qs_model(node.obj)
            if model is not None:
                reads.add((_FIELD, model, node.field))
        elif isinstance(node, E.SetField):
            write_field(_qs_model(node.obj), node.field)
        elif isinstance(node, E.MapSet):
            write_field(_qs_model(node.qs), node.field)
        elif isinstance(node, E.MakeObj):
            m = schema.model(node.model)
            reads.add((_ROWS, node.model))
            writes.add((_ROWS, node.model))
            for fname, _ in node.fields:
                write_field(node.model, fname)
            write_field(node.model, m.pk)
        elif isinstance(node, (E.Filter, E.Follow)):
            for hop in node.relpath:
                reads.add((_ASSOC, hop.relation))
            if isinstance(node, E.Filter):
                model = _terminal_model(node.qs, node.relpath, schema)
                if model is not None:
                    reads.add((_FIELD, model, node.field))
        elif isinstance(node, (E.OrderBy, E.Aggregate)):
            model = _qs_model(node.qs)
            if model is not None and node.field:
                reads.add((_FIELD, model, node.field))
        elif isinstance(node, E.Exists):
            reads.add((_ROWS, node.model))

    def may_create(e: E.Expr) -> bool:
        """Whether an object/query-set expression can denote a row that
        is absent from the state.  Merging such an object *inserts* it:
        ``Deref`` of a missing pk ghosts under apply semantics (guards
        do not re-run at remote replicas) and ``MakeObj`` is a literal
        insert, so an update rooted in either writes row existence —
        and, through the ghost's defaulted columns, every field."""
        if isinstance(e, (E.Deref, E.MakeObj)):
            return True
        if isinstance(e, (E.All, E.Filter, E.Follow, E.OrderBy,
                          E.ReverseSet)):
            return False  # state queries only yield existing rows
        if isinstance(e, (E.SetField, E.FieldGet)):
            return may_create(e.obj)
        if isinstance(e, E.MapSet):
            return may_create(e.qs)
        if isinstance(e, E.Singleton):
            return may_create(e.obj)
        if isinstance(e, (E.AnyOf, E.FirstOf, E.LastOf)):
            return may_create(e.qs)
        if isinstance(e, E.Ite):
            return may_create(e.then_) or may_create(e.else_)
        return True  # unknown provenance: assume it can create

    for cmd in path.commands:
        for node in cmd.walk_exprs():
            visit(node)
        rel = getattr(cmd, "relation", None)
        if rel is not None:  # link / delink / rlink / clearlinks
            reads.add((_ASSOC, rel))
            writes.add((_ASSOC, rel))
        if isinstance(cmd, C.Update):
            t = cmd.qs.type
            if t.is_model_type() and may_create(cmd.qs):
                # An upserting update writes the row population and the
                # full ghost row; insertion validity also observes the
                # competing rows (uniqueness).
                reads.add((_ROWS, t.model))
                writes.add((_ROWS, t.model))
                for f in schema.model(t.model).fields:
                    write_field(t.model, f.name)
        if isinstance(cmd, C.Delete):
            # Deleting writes row existence for the whole cascade closure
            # and rewrites every incident association set; referential
            # actions (protect) also read them.  Mirrors the closure in
            # CodePath.relations_touched.
            t = cmd.qs.type
            if t.is_model_type():
                frontier = {t.model}
                seen = {t.model}
                while frontier:
                    m = frontier.pop()
                    reads.add((_ROWS, m))
                    writes.add((_ROWS, m))
                    for r in schema.relations_of(m):
                        reads.add((_ASSOC, r.name))
                        writes.add((_ASSOC, r.name))
                        if (r.target == m and r.on_delete == "cascade"
                                and r.source not in seen):
                            seen.add(r.source)
                            frontier.add(r.source)
    return frozenset(reads), frozenset(writes)


def rw_disjoint(p: CodePath, q: CodePath, schema: Schema) -> bool:
    """Whether the classic conflict condition clears this pair: neither
    path writes anything the other reads or writes.  Such a pair
    commutes and cannot invalidate — both checks pass solver-free."""
    p_reads, p_writes = rw_footprint(p, schema)
    q_reads, q_writes = rw_footprint(q, schema)
    return (
        not (p_writes & (q_reads | q_writes))
        and not (q_writes & (p_reads | p_writes))
    )


# ---------------------------------------------------------------------------
# Sweep planning.  One solver-free pass shared by the scheduler, the
# service daemon's invalidation preview and cache maintenance.
# ---------------------------------------------------------------------------

ROUTE_PRUNED = "pruned"
ROUTE_CACHED = "cached"
ROUTE_SHARED = "shared"
ROUTE_SOLVE = "solve"


@dataclass
class PairPlan:
    """The solver-free resolution of one sweep pair."""

    slot: int
    i: int
    j: int
    left: CodePath
    right: CodePath
    route: str
    tag: str = ""                      # prune tag when route == "pruned"
    verdict: PairVerdict | None = None  # pruned / cached verdict
    saved_s: float = 0.0               # cached only
    fp: str | None = None              # pair fingerprint (non-pruned)
    class_key: str = ""                # signature class (reduce on)
    rep_slot: int | None = None        # shared: the representative's slot
    renaming: dict | None = None       # shared: member -> rep names


@dataclass
class SweepPlan:
    """Every pair's plan plus the class-level summary."""

    pairs: list[PairPlan] = field(default_factory=list)
    classes: int = 0        # distinct signature classes seen (reduce on)
    shared: int = 0         # pairs resolved by verdict sharing
    solver_calls: int = 0   # pairs the solver must actually visit

    def live_fingerprints(self) -> set[str]:
        return {p.fp for p in self.pairs if p.fp is not None}

    def invalidated(self) -> list[tuple[str, str]]:
        return [(p.left.name, p.right.name)
                for p in self.pairs if p.route == ROUTE_SOLVE]


def plan_sweep(
    analysis: AnalysisResult,
    config: CheckConfig | None = None,
    *,
    engine: str = "enum",
    reduce: bool = True,
    cache=None,
    fingerprints=None,
) -> SweepPlan:
    """Resolve every sweep pair through the solver-free layers.

    ``cache``/``fingerprints`` are a :class:`~repro.engine.cache
    .ResultCache` and :class:`~repro.engine.fingerprint
    .FingerprintContext` (both optional, supplied together).  With
    ``reduce`` on, the plan additionally applies read/write disjointness
    pruning and assigns every surviving pair to its signature class: the
    first member of a class becomes its *representative* (a cache hit
    also claims representativeship — its stored verdict is shared), and
    later members resolve as :data:`ROUTE_SHARED` with the member →
    representative renaming attached.

    Determinism: pairs are visited in sweep order (``i <= j``), so the
    representative choice — and therefore solver-call count — is a pure
    function of the analysis, config and cache state.  This is the
    single source of truth for "which pairs does a sweep solve": the
    scheduler executes this plan and the service daemon's invalidation
    preview simply reads :meth:`SweepPlan.invalidated` from it."""
    from ..verifier.runner import classify_pair

    config = config or CheckConfig()
    effectful = analysis.effectful_paths
    plan = SweepPlan()
    # class key -> (representative slot, representative maps)
    class_index: dict[str, tuple[int, dict]] = {}

    for i, p in enumerate(effectful):
        for j in range(i, len(effectful)):
            q = effectful[j]
            slot = len(plan.pairs)
            classified = classify_pair(p, q, analysis.schema, config,
                                       rw=reduce)
            if classified is not None:
                verdict, tag = classified
                plan.pairs.append(PairPlan(
                    slot, i, j, p, q, ROUTE_PRUNED, tag=tag,
                    verdict=verdict))
                continue
            fp = None
            if fingerprints is not None:
                fp = fingerprints.pair(p, q)
            class_key = ""
            maps: dict = {}
            if reduce:
                class_key, maps = canonical_pair(p, q, analysis.schema)
            hit = cache.get(fp) if (cache is not None and fp) else None
            if hit is not None:
                verdict, saved_s = hit
                plan.pairs.append(PairPlan(
                    slot, i, j, p, q, ROUTE_CACHED, verdict=verdict,
                    saved_s=saved_s, fp=fp, class_key=class_key))
                # A warm verdict seeds its class: later members share it
                # instead of re-solving.
                if reduce and class_key not in class_index:
                    class_index[class_key] = (slot, maps)
                continue
            if reduce and class_key in class_index:
                rep_slot, rep_maps = class_index[class_key]
                plan.pairs.append(PairPlan(
                    slot, i, j, p, q, ROUTE_SHARED, fp=fp,
                    class_key=class_key, rep_slot=rep_slot,
                    renaming=renaming_between(maps, rep_maps)))
                plan.shared += 1
                continue
            if reduce:
                class_index[class_key] = (slot, maps)
            plan.pairs.append(PairPlan(
                slot, i, j, p, q, ROUTE_SOLVE, fp=fp,
                class_key=class_key))
            plan.solver_calls += 1

    plan.classes = len(class_index)
    return plan


def shared_verdict(
    rep_verdict: PairVerdict,
    member: PairPlan,
) -> PairVerdict:
    """Relabel a representative's verdict for a class member.

    The member keeps the representative's outcomes and witnesses (valid
    modulo the recorded renaming) but reports zero solve time — no
    solver ran for it — and carries full provenance: class key,
    representative pair and member → representative renaming."""
    p, q = member.left, member.right
    out = PairVerdict(p.name, q.name, left_view=p.view, right_view=q.view)
    out.provenance = {
        "source": "shared",
        "class": member.class_key,
        "representative": [rep_verdict.left, rep_verdict.right],
        "renaming": member.renaming or {},
    }
    for attr in ("commutativity", "semantic"):
        check = getattr(rep_verdict, attr)
        if check is not None:
            setattr(out, attr, dataclasses.replace(
                check, left=p.name, right=q.name, elapsed_s=0.0))
    return out
