"""The verification ENGINE: scheduling layer between analysis and
verification.

``verify_application`` routes every whole-application sweep through this
package.  The scheduler prunes pairs via the solver-free fast layers,
memoizes solved verdicts in a content-addressed on-disk cache
(``.noctua-cache/`` by default), dispatches the remainder across a
``multiprocessing`` worker pool, and reports what happened on
``VerificationReport.metrics``.  Every sweep runs under a trace span
(``repro.obs``) and the metrics are folded from that span tree, so the
numbers in the report and the spans in ``noctua trace`` can never
disagree.  See docs/ENGINE.md and docs/OBSERVABILITY.md.
"""

from .cache import CACHE_FORMAT, DEFAULT_CACHE_DIR, QUARANTINE_SUFFIX, ResultCache
from .chaos import EngineChaosPlan, EngineChaosReport, SweepAborted, run_engine_chaos
from .failures import (
    FAILURE_KINDS,
    PairFailure,
    RetryPolicy,
    WorkerCrash,
    default_deadline,
    unknown_verdict,
)
from .fingerprint import (
    FINGERPRINT_VERSION,
    FingerprintContext,
    fingerprint_config,
    fingerprint_path,
    fingerprint_schema,
)
from .metrics import EngineMetrics
from .scheduler import run_pair_sweep

__all__ = [
    "CACHE_FORMAT",
    "DEFAULT_CACHE_DIR",
    "EngineChaosPlan",
    "EngineChaosReport",
    "EngineMetrics",
    "FAILURE_KINDS",
    "FINGERPRINT_VERSION",
    "FingerprintContext",
    "PairFailure",
    "QUARANTINE_SUFFIX",
    "ResultCache",
    "RetryPolicy",
    "SweepAborted",
    "WorkerCrash",
    "default_deadline",
    "fingerprint_config",
    "fingerprint_path",
    "fingerprint_schema",
    "run_engine_chaos",
    "run_pair_sweep",
    "unknown_verdict",
]
