"""Fault injection for the verification engine itself.

PR 1's chaos layer asks whether the *georep runtime* survives a hostile
environment; this module asks the same of the *engine*: does a sweep
containing a crashing worker, a wedged solver, a dying pool or a corrupt
cache file still terminate within its deadline budget and produce a
report that is — poisoned pairs aside — byte-identical to a clean serial
sweep?  Following Silhouette's targeted failure plans
(``/root/related/iaoing__Silhouette/``), faults are *enumerated and
seeded*, not random at runtime: an :class:`EngineChaosPlan` names exact
pairs and fault modes, so every run is reproducible from its seed.

Fault modes (``apply_chaos`` is consulted by workers and by the serial
path right before solving):

* ``crash`` — the worker ``os._exit``\\ s (serial path: raises
  :class:`~repro.engine.failures.WorkerCrash`) on **every** attempt;
* ``hang`` — sleeps past the pair deadline, forcing the parent watchdog
  to kill the worker (serial path: the ``SIGALRM`` deadline fires);
* ``flaky_crash`` — crashes on the first attempt only: the retry on a
  fresh worker must succeed and the verdict must match a clean sweep;
* ``error`` — raises a solver error on the first attempt only;
* ``smt_error`` — raises a solver error whenever the pair is attempted
  on the SMT backend, modelling a persistent backend failure: the
  engine must fall back to the enum engine and still decide the pair.

Two parent-side faults complete the coverage: ``pool_fail_after`` kills
the whole pool drive after N results (exercising the serial fallback and
its in-flight attribution) and ``abort_after_solved`` aborts the sweep
itself after N solved pairs (exercising cache checkpoint recovery; the
sweep raises :class:`SweepAborted`).

``run_engine_chaos`` is the seeded harness behind ``noctua engine-chaos``
and ``make engine-chaos``.
"""

from __future__ import annotations

import importlib
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..smt.solver import SolverError
from ..verifier.enumcheck import CheckConfig
from .cache import QUARANTINE_SUFFIX, _safe_name
from .failures import RetryPolicy, WorkerCrash


class SweepAborted(RuntimeError):
    """Raised by an injected sweep abort (simulated parent crash)."""


class ChaosSolverError(SolverError):
    """The injected stand-in for an internal solver failure."""


#: worker exit code used by injected crashes (visible in failure details)
CRASH_EXIT_CODE = 13


@dataclass(frozen=True)
class EngineChaosPlan:
    """A deterministic fault plan over one pair sweep.

    Pair-level faults are keyed by the sweep coordinates ``(i, j)`` of
    the pair (``i <= j`` over the effectful-path list), matching the
    scheduler's task tuples."""

    crash: frozenset = frozenset()        # always crash the attempt
    hang: frozenset = frozenset()         # always sleep past the deadline
    flaky_crash: frozenset = frozenset()  # crash on attempt 0 only
    error: frozenset = frozenset()        # solver error on attempt 0 only
    smt_error: frozenset = frozenset()    # solver error while engine == smt
    hang_s: float = 30.0
    #: parent-side: raise SweepAborted after N solver-solved pairs
    abort_after_solved: int | None = None
    #: parent-side: blow up the pool drive after N worker results
    pool_fail_after: int | None = None

    def mode_for(self, i: int, j: int, attempt: int,
                 engine: str) -> str | None:
        pair = (i, j)
        if pair in self.crash:
            return "crash"
        if pair in self.hang:
            return "hang"
        if pair in self.flaky_crash and attempt == 0:
            return "crash"
        if pair in self.error and attempt == 0:
            return "error"
        if pair in self.smt_error and engine == "smt":
            return "error"
        return None

    @property
    def always_poisoned(self) -> frozenset:
        """Pairs no retry can save — they must degrade to ``unknown``."""
        return self.crash | self.hang

    # -- spawn-safe wire format (workers get the plan via initargs) ------

    def to_obj(self) -> dict:
        return {
            "crash": sorted(self.crash),
            "hang": sorted(self.hang),
            "flaky_crash": sorted(self.flaky_crash),
            "error": sorted(self.error),
            "smt_error": sorted(self.smt_error),
            "hang_s": self.hang_s,
            "abort_after_solved": self.abort_after_solved,
            "pool_fail_after": self.pool_fail_after,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "EngineChaosPlan":
        pairs = lambda key: frozenset(tuple(p) for p in obj.get(key, ()))
        return cls(
            crash=pairs("crash"), hang=pairs("hang"),
            flaky_crash=pairs("flaky_crash"), error=pairs("error"),
            smt_error=pairs("smt_error"),
            hang_s=obj.get("hang_s", 30.0),
            abort_after_solved=obj.get("abort_after_solved"),
            pool_fail_after=obj.get("pool_fail_after"),
        )


def apply_chaos(plan: EngineChaosPlan | None, i: int, j: int, attempt: int,
                engine: str, *, stage: str) -> None:
    """Inject the planned fault for this attempt, if any.

    ``stage`` is ``"worker"`` (crash = hard process exit) or ``"serial"``
    (crash = :class:`WorkerCrash`, since killing the parent would take
    the sweep down for real)."""
    if plan is None:
        return
    mode = plan.mode_for(i, j, attempt, engine)
    if mode is None:
        return
    if mode == "crash":
        if stage == "worker":
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrash(f"chaos: injected crash for pair ({i}, {j})")
    if mode == "hang":
        time.sleep(plan.hang_s)
        return  # deadline shorter than hang_s kills/interrupts us first
    raise ChaosSolverError(
        f"chaos: injected solver error for pair ({i}, {j})")


# ---------------------------------------------------------------------------
# The seeded harness: `noctua engine-chaos` / `make engine-chaos`.
# ---------------------------------------------------------------------------

#: deterministic budget: verdicts decided by sample exhaustion, never by
#: the clock (see docs/ENGINE.md on determinism), so chaos runs compare
#: byte-identical against the clean baseline
CHAOS_CHECK_CONFIG = CheckConfig(timeout_s=30.0, max_samples=60,
                                 max_exhaustive=800)


@dataclass
class SeedOutcome:
    """What one chaos seed injected and what the sweep did about it."""

    seed: int
    faults: dict = field(default_factory=dict)  # mode -> [pair names]
    unknowns: int = 0
    retries: int = 0
    fallback: str = ""
    wall_s: float = 0.0
    problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass
class EngineChaosReport:
    """Aggregate result of an engine-chaos run."""

    app: str
    outcomes: list = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def problems(self) -> list:
        return [f"seed {o.seed}: {p}" for o in self.outcomes
                for p in o.problems]


def _build_analysis(app: str):
    from ..analyzer import analyze_application

    module = importlib.import_module(f"repro.apps.{app}")
    return analyze_application(module.build_app())


def _untimed(report) -> list[dict]:
    """Per-verdict JSON rows with the wall-clock fields stripped."""
    return [{k: v for k, v in row.items() if not k.endswith("_s")}
            for row in report.to_json_obj()["verdicts"]]


def _solver_bound_pairs(analysis, config) -> list[tuple[int, int]]:
    """The (i, j) pairs a sweep actually hands to a solver (not pruned)."""
    from ..verifier.runner import classify_pair

    effectful = analysis.effectful_paths
    out = []
    for i, p in enumerate(effectful):
        for j in range(i, len(effectful)):
            if classify_pair(p, effectful[j], analysis.schema,
                             config) is None:
                out.append((i, j))
    return out


def _pair_names(analysis, pair: tuple[int, int]) -> tuple[str, str]:
    effectful = analysis.effectful_paths
    return effectful[pair[0]].name, effectful[pair[1]].name


def run_engine_chaos(
    app: str = "smallbank",
    *,
    seeds: int = 10,
    start: int = 0,
    jobs: int = 2,
    deadline_s: float = 2.0,
    log=None,
) -> EngineChaosReport:
    """Run ``seeds`` seeded fault plans against real sweeps of ``app``.

    Every seed checks the whole fault-tolerance contract: always-poisoned
    pairs (and only those) degrade to conservative ``unknown`` verdicts,
    every other verdict is byte-identical to a clean serial sweep,
    unknowns are never cached (a chaos-free warm re-run re-solves exactly
    the poisoned tail and then matches the baseline everywhere), wall
    time stays within the deadline budget, and — on the seeds that
    corrupt the cache — the corrupt file is quarantined, not trusted and
    not silently destroyed."""
    from .scheduler import run_pair_sweep

    emit = log or (lambda *_: None)
    t_run = time.perf_counter()
    analysis = _build_analysis(app)
    config = CHAOS_CHECK_CONFIG
    # Chaos sweeps run with reduce=False: the contract is
    # per-pair ("poisoned pairs — and only those — differ"),
    # and verdict sharing would fan one poisoned representative
    # out to its whole signature class.
    baseline = run_pair_sweep(analysis, config, reduce=False)
    base_rows = _untimed(baseline)
    candidates = _solver_bound_pairs(analysis, config)
    if len(candidates) < 3:
        raise ValueError(
            f"{app} has only {len(candidates)} solver-bound pairs; "
            f"engine chaos needs at least 3")
    policy = RetryPolicy(max_attempts=2, backoff_s=0.02)
    report = EngineChaosReport(app=app)

    for seed in range(start, start + seeds):
        rng = random.Random(seed * 2654435761 % (2 ** 31))
        picks = rng.sample(candidates, 3)
        plan_kwargs: dict = {"crash": frozenset({picks[0]}),
                             "hang_s": 6.0 * deadline_s}
        if rng.random() < 0.3:
            plan_kwargs["hang"] = frozenset({picks[1]})
        elif rng.random() < 0.5:
            plan_kwargs["flaky_crash"] = frozenset({picks[1]})
        if rng.random() < 0.4:
            plan_kwargs["error"] = frozenset({picks[2]})
        if rng.random() < 0.25:
            plan_kwargs["pool_fail_after"] = rng.randint(1, 3)
        plan = EngineChaosPlan(**plan_kwargs)
        outcome = SeedOutcome(seed=seed, faults={
            mode: [f"{l} x {r}" for l, r in
                   (_pair_names(analysis, p) for p in sorted(pairs))]
            for mode, pairs in (
                ("crash", plan.crash), ("hang", plan.hang),
                ("flaky_crash", plan.flaky_crash), ("error", plan.error),
            ) if pairs
        })
        if plan.pool_fail_after is not None:
            outcome.faults["pool_fail_after"] = [str(plan.pool_fail_after)]

        poisoned_names = {_pair_names(analysis, p)
                          for p in plan.always_poisoned}
        t0 = time.perf_counter()
        with tempfile.TemporaryDirectory(prefix="noctua-chaos-") as tmp:
            chaotic = run_pair_sweep(
                analysis, config, jobs=jobs, use_cache=True, cache_dir=tmp,
                chaos=plan, pair_deadline_s=deadline_s, retry=policy,
                reduce=False,
            )
            outcome.wall_s = time.perf_counter() - t0
            metrics = chaotic.metrics
            outcome.unknowns = metrics.get("unknowns", 0)
            outcome.retries = metrics.get("retries", 0)
            outcome.fallback = metrics.get("fallback_reason", "")
            _check_verdicts(outcome, base_rows, _untimed(chaotic),
                            poisoned_names)
            if outcome.unknowns != len(poisoned_names):
                outcome.problems.append(
                    f"expected {len(poisoned_names)} unknowns, metrics "
                    f"report {outcome.unknowns}")
            budget = 20.0 + 3.0 * len(poisoned_names) * \
                policy.max_attempts * deadline_s
            if outcome.wall_s > budget:
                outcome.problems.append(
                    f"sweep took {outcome.wall_s:.1f}s "
                    f"(budget {budget:.1f}s)")

            # Recovery: a chaos-free warm sweep must re-solve exactly the
            # poisoned tail (unknowns were never cached) and then agree
            # with the clean baseline everywhere.
            warm = run_pair_sweep(analysis, config, use_cache=True,
                                  cache_dir=tmp, reduce=False)
            if warm.metrics["solver_calls"] != len(poisoned_names):
                outcome.problems.append(
                    f"warm re-run solved {warm.metrics['solver_calls']} "
                    f"pairs, expected the {len(poisoned_names)} "
                    f"uncached unknowns")
            if _untimed(warm) != base_rows:
                outcome.problems.append(
                    "warm re-run after chaos differs from clean baseline")

            if seed % 3 == 0:
                _check_cache_quarantine(outcome, analysis, config, app,
                                        base_rows, run_pair_sweep)

        report.outcomes.append(outcome)
        status = "ok" if outcome.ok else "FAIL"
        faults = ", ".join(f"{m}={'|'.join(v)}"
                           for m, v in sorted(outcome.faults.items()))
        emit(f"  seed {seed:3d} [{status}] {outcome.wall_s:5.1f}s "
             f"unknowns={outcome.unknowns} retries={outcome.retries} "
             f"({faults})")
        for problem in outcome.problems:
            emit(f"    ! {problem}")

    report.elapsed_s = time.perf_counter() - t_run
    return report


def _check_verdicts(outcome: SeedOutcome, base_rows: list[dict],
                    chaos_rows: list[dict], poisoned_names: set) -> None:
    """Poisoned pairs must be unknown; everything else byte-identical."""
    if len(base_rows) != len(chaos_rows):
        outcome.problems.append(
            f"verdict count {len(chaos_rows)} != baseline "
            f"{len(base_rows)}")
        return
    for base_row, chaos_row in zip(base_rows, chaos_rows):
        pair = (chaos_row["left"], chaos_row["right"])
        if pair in poisoned_names:
            if chaos_row["status"] != "unknown":
                outcome.problems.append(
                    f"poisoned pair {pair} not marked unknown")
        elif chaos_row != base_row:
            outcome.problems.append(
                f"clean pair {pair} diverged from baseline: "
                f"{chaos_row} != {base_row}")


def _check_cache_quarantine(outcome: SeedOutcome, analysis, config,
                            app: str, base_rows: list[dict],
                            run_pair_sweep) -> None:
    """Corrupt the cache file, re-sweep, and require quarantine + a
    baseline-identical report."""
    with tempfile.TemporaryDirectory(prefix="noctua-chaos-cache-") as tmp:
        run_pair_sweep(analysis, config, use_cache=True, cache_dir=tmp,
                       reduce=False)
        cache_file = Path(tmp) / f"{_safe_name(analysis.app_name)}.json"
        cache_file.write_text("{corrupt" + cache_file.read_text()[:64])
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", RuntimeWarning)
            after = run_pair_sweep(analysis, config, use_cache=True,
                                   cache_dir=tmp, reduce=False)
        quarantined = cache_file.with_name(
            cache_file.name + QUARANTINE_SUFFIX)
        if not quarantined.exists():
            outcome.problems.append(
                "corrupt cache file was not quarantined")
        if _untimed(after) != base_rows:
            outcome.problems.append(
                "sweep over a corrupt cache diverged from baseline")
