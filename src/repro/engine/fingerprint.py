"""Stable content fingerprints for verification inputs.

A pair verdict is a pure function of ``(code path P, code path Q, schema,
check configuration, engine backend)``.  The fingerprint of a pair is a
SHA-256 digest over the canonical JSON of exactly those inputs, reusing
the SOIR serialization (``repro.soir.serialize``) so that *any* semantic
change to a path or the schema — and nothing else — changes the digest.

Properties the cache and the parallel scheduler rely on:

* **stable across processes and sessions** — no use of the randomized
  built-in ``hash()``, no memory addresses, no timestamps;
* **order-insensitive where the input is** — schema models/relations are
  sorted by name before hashing (dict insertion order is a build
  artifact, not content);
* **versioned** — ``FINGERPRINT_VERSION`` is folded into every digest, so
  a change to the fingerprint scheme or to verdict semantics invalidates
  all previously cached entries at once.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from ..soir.path import CodePath
from ..soir.schema import Schema
from ..soir.serialize import path_to_obj, schema_to_obj
from ..verifier.enumcheck import CheckConfig

#: bump when the fingerprint scheme, the SOIR serialization, or the
#: meaning of a verdict changes incompatibly
FINGERPRINT_VERSION = 1


def _digest(obj) -> str:
    canonical = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def fingerprint_path(path: CodePath) -> str:
    """Content fingerprint of one code path (name, args, commands, flags)."""
    return _digest(path_to_obj(path))


def fingerprint_schema(schema: Schema) -> str:
    """Content fingerprint of the schema, insensitive to declaration order."""
    obj = schema_to_obj(schema)
    obj["models"] = sorted(obj["models"], key=lambda m: m["name"])
    obj["relations"] = sorted(obj["relations"], key=lambda r: r["name"])
    return _digest(obj)


def fingerprint_config(config: CheckConfig, engine: str) -> str:
    """Fingerprint of everything that parameterizes a check besides the
    pair itself: every search knob plus the engine backend."""
    return _digest({
        "version": FINGERPRINT_VERSION,
        "engine": engine,
        "config": dataclasses.asdict(config),
    })


class FingerprintContext:
    """Per-sweep fingerprint factory.

    Folds the sweep-wide inputs (schema, config, engine, scheme version)
    into one context digest and memoizes per-path digests, so a full
    quadratic sweep hashes each path once, not once per pair."""

    def __init__(self, schema: Schema, config: CheckConfig, engine: str):
        self.context = _digest({
            "schema": fingerprint_schema(schema),
            "config": fingerprint_config(config, engine),
        })
        self._paths: dict[int, str] = {}

    def path(self, path: CodePath) -> str:
        key = id(path)
        fp = self._paths.get(key)
        if fp is None:
            fp = fingerprint_path(path)
            self._paths[key] = fp
        return fp

    def pair(self, p: CodePath, q: CodePath) -> str:
        """Fingerprint of one (ordered) pair under this context.

        The sweep always visits pairs in a fixed order (``i <= j`` over
        the effectful-path list), so ordered hashing is deterministic and
        keeps the cached verdict's left/right orientation aligned with
        the sweep that replays it."""
        return _digest([self.context, self.path(p), self.path(q)])
