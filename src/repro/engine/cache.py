"""The persistent pair-verdict cache.

One JSON file per application under the cache root (default
``.noctua-cache/``): ``<root>/<app>.json`` holding a format version and a
map ``pair fingerprint -> entry``.  Entries are content-addressed — the
fingerprint already covers the paths, schema, config, engine backend and
scheme version (see :mod:`repro.engine.fingerprint`) — so *invalidation
is free*: an edited path simply misses, and its stale entry is left
behind as garbage.  ``prune()`` drops entries not referenced by the
current sweep for callers that want a tight file.

Writes are atomic (tmp file + ``os.replace``) and only happen when the
entry map changed, so a fully warm sweep performs no writes at all.  The
scheduler also flushes *mid-sweep* every N solved pairs (checkpointing),
so a crashed or killed sweep loses at most the last checkpoint interval
of solver work — the atomic replace guarantees the file on disk is
always a complete, parseable snapshot.

A corrupt, unreadable or version-mismatched file is never an error — the
cache is an accelerator, not a correctness dependency — but it is also
never silently destroyed: the bad file is *quarantined* (renamed to
``<app>.json.corrupt``, with a tracer record and a warning) so the
evidence survives for inspection instead of being overwritten by the
next flush.  The one exception is a *known older* format: format-1 files
(entries without the signature-class field) are migrated in place —
their verdict payloads are identical, entries just predate class
tagging — so bumping to format 2 does not throw away warm caches.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

from ..metrics.registry import inc as _metric_inc
from ..obs import tracer as obs
from ..verifier.restrictions import (
    PairVerdict,
    verdict_from_obj,
    verdict_to_obj,
)
from .failures import cap_text

#: default cache root, relative to the working directory
DEFAULT_CACHE_DIR = ".noctua-cache"

#: bump on incompatible changes to the cache file layout.  Format 2
#: (signature-class provenance): entries gain an optional ``class`` key
#: and verdict objects may carry ``provenance``; format-1 files migrate
#: in place on load instead of being quarantined.
CACHE_FORMAT = 2

#: older formats ``_load`` upgrades rather than quarantines
MIGRATABLE_FORMATS = (1,)

#: suffix given to quarantined (corrupt / version-mismatched) cache files
QUARANTINE_SUFFIX = ".corrupt"


class ResultCache:
    """On-disk memo of solved pair verdicts for one application."""

    def __init__(self, root: str | os.PathLike, app_name: str):
        self.root = Path(root)
        self.app_name = app_name
        self.path = self.root / f"{_safe_name(app_name)}.json"
        #: where the previous cache file went if it failed to load —
        #: ``None`` on a clean (or cold) load
        self.quarantined: str | None = None
        #: True when the file on disk was a migratable older format —
        #: the load marked the cache dirty so the next flush rewrites it
        #: at the current format
        self.migrated_from: int | None = None
        self._dirty = False
        self._entries: dict[str, dict] = self._load()

    def _load(self) -> dict[str, dict]:
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return {}  # cold cache: normal, nothing to quarantine
        except OSError as exc:
            self._quarantine(f"unreadable: {exc}")
            return {}
        try:
            obj = json.loads(text)
        except ValueError as exc:
            self._quarantine(f"corrupt JSON: {exc}")
            return {}
        if not isinstance(obj, dict):
            self._quarantine("not a JSON object")
            return {}
        fmt = obj.get("format")
        if fmt != CACHE_FORMAT and fmt not in MIGRATABLE_FORMATS:
            self._quarantine(f"format {fmt!r} != {CACHE_FORMAT}")
            return {}
        entries = obj.get("entries")
        if not isinstance(entries, dict):
            self._quarantine("entries missing or not a map")
            return {}
        if fmt != CACHE_FORMAT:
            # Format-1 entries are a strict subset of format-2 ones (no
            # ``class`` key): keep them verbatim and rewrite the file at
            # the current format on the next flush.
            self.migrated_from = fmt
            self._dirty = True
            obs.record(f"cache {self.app_name}", "cache-migrate",
                       app=self.app_name, path=str(self.path),
                       from_format=fmt, to_format=CACHE_FORMAT,
                       entries=len(entries))
        return entries

    def _quarantine(self, reason: str) -> None:
        """Move the unusable cache file aside instead of overwriting it."""
        target = str(self.path) + QUARANTINE_SUFFIX
        try:
            os.replace(self.path, target)
        except OSError:
            # Can't rename (permissions, races): proceed with an empty
            # cache anyway; the next flush overwrites in place.
            target = None
        self.quarantined = target
        message = (f"cache file {self.path} unusable ({cap_text(reason)}); "
                   + (f"quarantined as {target}" if target
                      else "quarantine rename failed, will overwrite"))
        obs.record(f"cache {self.app_name}", "cache-quarantine",
                   app=self.app_name, path=str(self.path),
                   quarantined=target or "", reason=cap_text(reason))
        _metric_inc("noctua_engine_cache_quarantines_total")
        warnings.warn(f"noctua: {message}", RuntimeWarning, stacklevel=3)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> tuple[PairVerdict, float] | None:
        """The cached verdict and its original solve time, or ``None``.

        The replayed verdict's per-check ``elapsed_s`` is zeroed: the
        report's aggregate solve time measures work done *this* run, and
        a cache hit did none.  The original cost is returned separately
        so the scheduler can report time saved."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            return None
        try:
            verdict = verdict_from_obj(entry["verdict"])
        except (KeyError, TypeError, ValueError):
            return None
        solve_s = 0.0
        for check in (verdict.commutativity, verdict.semantic):
            if check is not None:
                solve_s += check.elapsed_s
                check.elapsed_s = 0.0
        return verdict, solve_s

    def put(self, fingerprint: str, verdict: PairVerdict,
            class_key: str | None = None) -> None:
        """Store a verdict, optionally tagged with its signature-class
        key so ``repro cache --stats`` and report tooling can see how
        much of the cache is class-shared."""
        entry: dict = {"verdict": verdict_to_obj(verdict)}
        if class_key:
            entry["class"] = class_key
        self._entries[fingerprint] = entry
        self._dirty = True

    def prune(self, live: set[str]) -> int:
        """Drop entries whose fingerprint is not in ``live``; returns the
        number removed."""
        stale = [fp for fp in self._entries if fp not in live]
        for fp in stale:
            del self._entries[fp]
        if stale:
            self._dirty = True
        return len(stale)

    def flush(self) -> None:
        """Persist the entry map if it changed since load (atomic).

        Also the checkpoint primitive: the scheduler calls it mid-sweep
        every N solved pairs, so a killed sweep resumes warm up to the
        last checkpoint."""
        if not self._dirty:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "app": self.app_name,
            "entries": self._entries,
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, self.path)
        self._dirty = False


def _safe_name(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)


def scan_cache(root: str | os.PathLike) -> list[dict]:
    """Inspect every cache file under ``root`` without loading it as a
    live cache (and therefore without quarantining anything): one row
    per ``*.json`` file with app name, entry count, size and status.
    Quarantined files are reported alongside, so ``repro cache --stats``
    shows the whole directory state."""
    rows: list[dict] = []
    root_path = Path(root)
    if not root_path.is_dir():
        return rows
    for path in sorted(root_path.iterdir()):
        name = path.name
        if name.endswith(QUARANTINE_SUFFIX):
            rows.append({"file": name, "status": "quarantined",
                         "bytes": path.stat().st_size})
            continue
        if path.suffix != ".json":
            continue
        row: dict = {"file": name, "bytes": path.stat().st_size}
        try:
            obj = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            row.update(status="corrupt", detail=cap_text(str(exc)))
            rows.append(row)
            continue
        entries = obj.get("entries") if isinstance(obj, dict) else None
        fmt = obj.get("format") if isinstance(obj, dict) else None
        readable = fmt == CACHE_FORMAT or fmt in MIGRATABLE_FORMATS
        if (not isinstance(obj, dict) or not readable
                or not isinstance(entries, dict)):
            row.update(status="incompatible",
                       detail=f"format {fmt!r}"
                       if isinstance(obj, dict) else "not a JSON object")
            rows.append(row)
            continue
        status = "ok" if fmt == CACHE_FORMAT else f"migratable (v{fmt})"
        row.update(status=status, app=obj.get("app", ""),
                   entries=len(entries))
        rows.append(row)
    return rows
