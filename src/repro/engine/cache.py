"""The persistent pair-verdict cache.

One JSON file per application under the cache root (default
``.noctua-cache/``): ``<root>/<app>.json`` holding a format version and a
map ``pair fingerprint -> entry``.  Entries are content-addressed — the
fingerprint already covers the paths, schema, config, engine backend and
scheme version (see :mod:`repro.engine.fingerprint`) — so *invalidation
is free*: an edited path simply misses, and its stale entry is left
behind as garbage.  ``prune()`` drops entries not referenced by the
current sweep for callers that want a tight file.

Writes are atomic (tmp file + ``os.replace``) and only happen when the
entry map changed, so a fully warm sweep performs no writes at all.
A corrupt, unreadable or version-mismatched file is treated as an empty
cache, never an error: the cache is an accelerator, not a correctness
dependency.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..verifier.restrictions import (
    PairVerdict,
    verdict_from_obj,
    verdict_to_obj,
)

#: default cache root, relative to the working directory
DEFAULT_CACHE_DIR = ".noctua-cache"

#: bump on incompatible changes to the cache file layout
CACHE_FORMAT = 1


class ResultCache:
    """On-disk memo of solved pair verdicts for one application."""

    def __init__(self, root: str | os.PathLike, app_name: str):
        self.root = Path(root)
        self.app_name = app_name
        self.path = self.root / f"{_safe_name(app_name)}.json"
        self._entries: dict[str, dict] = self._load()
        self._dirty = False

    def _load(self) -> dict[str, dict]:
        try:
            obj = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(obj, dict) or obj.get("format") != CACHE_FORMAT:
            return {}
        entries = obj.get("entries")
        return entries if isinstance(entries, dict) else {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> tuple[PairVerdict, float] | None:
        """The cached verdict and its original solve time, or ``None``.

        The replayed verdict's per-check ``elapsed_s`` is zeroed: the
        report's aggregate solve time measures work done *this* run, and
        a cache hit did none.  The original cost is returned separately
        so the scheduler can report time saved."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            return None
        try:
            verdict = verdict_from_obj(entry["verdict"])
        except (KeyError, TypeError, ValueError):
            return None
        solve_s = 0.0
        for check in (verdict.commutativity, verdict.semantic):
            if check is not None:
                solve_s += check.elapsed_s
                check.elapsed_s = 0.0
        return verdict, solve_s

    def put(self, fingerprint: str, verdict: PairVerdict) -> None:
        self._entries[fingerprint] = {"verdict": verdict_to_obj(verdict)}
        self._dirty = True

    def prune(self, live: set[str]) -> int:
        """Drop entries whose fingerprint is not in ``live``; returns the
        number removed."""
        stale = [fp for fp in self._entries if fp not in live]
        for fp in stale:
            del self._entries[fp]
        if stale:
            self._dirty = True
        return len(stale)

    def flush(self) -> None:
        """Persist the entry map if it changed since load."""
        if not self._dirty:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "app": self.app_name,
            "entries": self._entries,
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        os.replace(tmp, self.path)
        self._dirty = False


def _safe_name(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
