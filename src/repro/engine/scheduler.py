"""The verification scheduler: incremental, parallel, fault-tolerant
pair sweeps.

Sits between the analyzer and the pair checkers (paper Figure 1 gains a
box): ``run_pair_sweep`` drives the quadratic sweep over effectful code
paths that ``verify_application`` used to run inline, adding four layers
while preserving result equality with the plain serial loop:

1. **pruning** — the solver-free fast layers (``classify_pair``) resolve
   conservative, order-disabled and disjoint-footprint pairs in the
   parent process;
2. **memoization** — remaining pairs are looked up in a content-addressed
   on-disk cache (:mod:`repro.engine.cache`) keyed by the pair fingerprint
   (:mod:`repro.engine.fingerprint`); after an edit, only pairs whose
   fingerprints changed are re-solved, and the cache is *checkpointed*
   mid-sweep every ``checkpoint_every`` solved pairs so a killed sweep
   resumes warm;
3. **parallelism** — cache misses are dispatched across a hand-rolled
   pool of ``spawn`` worker processes (``jobs > 1``), falling back to
   serial execution if a pool cannot be created or dies entirely;
4. **fault tolerance** — every solve attempt runs under a per-pair
   wall-clock deadline (parent watchdog for workers, ``SIGALRM`` for the
   serial path) and failures are classified into the ``timeout`` /
   ``crash`` / ``solver-error`` taxonomy (:mod:`repro.engine.failures`).
   A failed pair costs only itself: the pool keeps draining, the pair is
   retried with backoff on a fresh worker (optionally with a degraded
   budget, or on the enum engine after a persistent SMT failure), and a
   pair that exhausts its attempts degrades to a conservative
   ``unknown`` verdict — restricted, clearly marked, and never cached.

The pool is hand-rolled rather than ``multiprocessing.Pool`` because the
failure semantics are the point: ``Pool`` treats one dead worker as a
poisoned ``imap`` and loses the whole sweep, while this pool pins one
duplex :class:`~multiprocessing.Pipe` per worker (no shared queue locks,
so killing a wedged worker cannot deadlock its siblings), detects death
as an ``EOF`` on that pipe, and respawns workers while unfinished work
remains.  The ``spawn`` start method is pinned explicitly: workers must
not inherit the parent's tracer, signal handlers or lock state via fork.

Observability: every sweep runs inside a ``pair-sweep`` span with one
``pair`` child per pair (route = ``pruned:<tag>`` / ``cached`` /
``shared`` / ``solved`` / ``unknown``; failed serial attempts appear as
route ``failed-attempt`` and each failed attempt also leaves a
``pair-failure`` record; a portfolio race additionally leaves a
``portfolio-loser`` pair child for the losing lane when it finishes and
a ``portfolio-sample`` record per cross-checked agreement).  When the caller has a tracer active (:mod:`repro.obs`) those
spans land in the caller's trace — including spans produced *inside
worker processes*, which are serialized and grafted back onto the parent
tree.  With no tracer active, the scheduler still builds the span tree on
a private tracer, because :class:`~repro.engine.metrics.EngineMetrics` is
computed *from* the spans (``EngineMetrics.from_sweep``).

Determinism: verdicts are assembled into the report in sweep order
(``i <= j`` over the effectful-path list) regardless of worker completion
order, and the checkers themselves are process-independent (seeded
sampling, no builtin ``hash``), so serial, parallel and cached sweeps
produce identical reports.  Fault tolerance preserves this on the
decided subset: a sweep with failures matches a clean sweep on every
pair the engine could decide (tests/test_engine_chaos.py asserts this
report equality under injected crashes, hangs and pool death).
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import time

from ..metrics import registry as metrics_registry
from ..obs import tracer as obs
from ..soir.path import AnalysisResult
from ..soir.serialize import path_to_obj, path_from_obj, schema_from_obj, schema_to_obj
from ..verifier.enumcheck import CheckConfig
from ..verifier.restrictions import (
    VerificationReport,
    verdict_from_obj,
    verdict_to_obj,
)
from ..verifier.runner import (
    PORTFOLIO_LANES,
    definitive,
    portfolio_agreement,
    solve_pair,
    solve_pair_guarded,
)
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .chaos import EngineChaosPlan, SweepAborted, apply_chaos
from .failures import (
    CRASH,
    PairFailure,
    RetryPolicy,
    TIMEOUT,
    Task,
    cap_text,
    classify_exception,
    default_deadline,
    degrade_config,
    plan_retry,
    unknown_verdict,
)
from .fingerprint import FingerprintContext
from .metrics import EngineMetrics, fold_sweep_into
from .reduction import (
    ROUTE_CACHED,
    ROUTE_PRUNED,
    ROUTE_SHARED,
    plan_sweep,
    shared_verdict,
)

#: default cache-checkpoint cadence (solved pairs between mid-sweep
#: flushes); the atomic replace in ``ResultCache.flush`` makes each
#: checkpoint a complete, parseable snapshot
DEFAULT_CHECKPOINT_EVERY = 8

# ---------------------------------------------------------------------------
# Worker side.  Each pool worker deserializes the sweep inputs once (in the
# initializer) and then solves pairs by index; passing SOIR JSON instead of
# pickled objects keeps the protocol spawn-safe and version-checkable.
# ---------------------------------------------------------------------------

_WORKER: dict = {}


def _worker_init(schema_json: str, paths_json: str, config_args: dict,
                 engine: str, trace: bool, chaos_obj: dict | None) -> None:
    _WORKER["schema"] = schema_from_obj(json.loads(schema_json))
    _WORKER["paths"] = [path_from_obj(o) for o in json.loads(paths_json)]
    _WORKER["config"] = CheckConfig(**config_args)
    _WORKER["engine"] = engine
    _WORKER["trace"] = trace
    _WORKER["chaos"] = (
        EngineChaosPlan.from_obj(chaos_obj) if chaos_obj else None)


def _worker_solve(task: Task) -> tuple[int, dict, int, float, dict | None]:
    """Solve one pair; optionally under a worker-local tracer.

    When the parent sweep is traced, the worker opens its own ``pair``
    span (the check/solver spans nest under it), serializes the finished
    span tree, and ships it back with the verdict — the parent grafts it
    into the sweep span so the final trace covers worker-side work.

    No deadline is armed here: the parent watchdog *is* the worker-side
    deadline, because only a separate process can stop a solver wedged
    in native-speed search (or a chaos-injected hang)."""
    slot, i, j, attempt, task_engine, level = task
    paths = _WORKER["paths"]
    p, q = paths[i], paths[j]
    config = degrade_config(_WORKER["config"], level)
    apply_chaos(_WORKER["chaos"], i, j, attempt, task_engine, stage="worker")
    started = time.perf_counter()
    span_obj: dict | None = None
    if _WORKER["trace"]:
        tracer = obs.Tracer()
        with obs.activate(tracer):
            with tracer.span(f"{p.name} x {q.name}", "pair",
                             left=p.name, right=q.name, route="solved",
                             pid=os.getpid()) as pair_span:
                verdict = solve_pair(p, q, _WORKER["schema"], config,
                                     engine=task_engine)
                pair_span.set(restricted=verdict.restricted)
        span_obj = obs.span_to_obj(tracer.roots[0])
    else:
        verdict = solve_pair(p, q, _WORKER["schema"], config,
                             engine=task_engine)
    elapsed = time.perf_counter() - started
    return slot, verdict_to_obj(verdict), os.getpid(), elapsed, span_obj


def _worker_main(conn, init_args: tuple) -> None:
    """Worker process entry point: recv tasks, send results, until EOF.

    A failed attempt is *reported*, not raised: the worker classifies the
    exception and sends a ``fail`` message, staying alive for the next
    task.  Only a hard crash (``os._exit``, a signal) silences it — which
    the parent observes as EOF on this pipe."""
    _worker_init(*init_args)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        try:
            result = _worker_solve(task)
        except BaseException as exc:  # classified, never fatal to the pool
            kind, detail = classify_exception(exc)
            conn.send(("fail", task, kind, detail))
            continue
        conn.send(("ok", task, result))


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


def run_pair_sweep(
    analysis: AnalysisResult,
    config: CheckConfig | None = None,
    *,
    engine: str = "enum",
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | None = None,
    prune_cache: bool = False,
    pair_deadline_s: float | None = None,
    retry: RetryPolicy | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    chaos: EngineChaosPlan | None = None,
    reduce: bool = True,
) -> VerificationReport:
    """Verify every unordered pair of effectful paths of ``analysis``.

    ``prune_cache`` additionally drops cache entries not referenced by
    this sweep (stale fingerprints from earlier versions of the app).

    ``pair_deadline_s`` bounds the wall clock of each solve attempt
    (default: :func:`~repro.engine.failures.default_deadline`, generous
    relative to the cooperative ``config.timeout_s`` budget); ``retry``
    sets the failure policy (attempts, backoff, degradation, engine
    fallback); ``checkpoint_every`` sets the mid-sweep cache-flush
    cadence (``0`` disables checkpointing); ``chaos`` injects a fault
    plan (tests and the ``engine-chaos`` harness only).

    ``reduce`` enables the pre-solve reduction pipeline
    (:mod:`repro.engine.reduction`): read/write disjointness pruning and
    signature-class verdict sharing — one representative solved per
    class, members relabeled with full provenance.  ``engine`` may be
    ``"portfolio"``: each representative races the enum and SMT backends
    in the worker pool, the first definitive answer wins and the loser's
    verdict (when it finishes) becomes a cross-check agreement sample."""
    config = config or CheckConfig()
    policy = retry or RetryPolicy()
    deadline_s = (pair_deadline_s if pair_deadline_s is not None
                  else default_deadline(config))
    wall_start = time.perf_counter()
    effectful = analysis.effectful_paths

    # The sweep always runs under a tracer: the ambient one when the
    # caller traces, otherwise a private tracer whose only job is to
    # carry the pair spans EngineMetrics is derived from.
    ambient = obs.current()
    tracer = ambient if ambient is not None else obs.Tracer(max_records=1)

    cache: ResultCache | None = None
    fingerprints: FingerprintContext | None = None
    if use_cache:
        cache = ResultCache(cache_dir or DEFAULT_CACHE_DIR, analysis.app_name)
        fingerprints = FingerprintContext(analysis.schema, config, engine)

    with tracer.span(f"pair-sweep {analysis.app_name}", "pair-sweep",
                     app=analysis.app_name, engine=engine,
                     jobs_requested=jobs, mode="serial", jobs_used=1,
                     fallback_reason="", checkpoints=0,
                     respawns=0) as sweep_span:
        # Pass 1 — one shared solver-free plan (pruning, cache lookups,
        # signature-class assignment) resolves every pair it can and
        # queues only genuine solver work.  ``verdicts`` is
        # slot-addressed so results land in sweep order no matter how
        # they were computed.  The same planner backs the service
        # daemon's invalidation preview, which is what keeps
        # ``preview == actual solver calls`` true under class sharing.
        plan = plan_sweep(analysis, config, engine=engine, reduce=reduce,
                          cache=cache, fingerprints=fingerprints)
        sweep_span.set(classes=plan.classes, reduce=reduce)
        verdicts: list = [None] * len(plan.pairs)
        queue: list[Task] = []
        slot_fp: dict[int, str] = {}
        slot_class: dict[int, str] = {}
        live_fps: set[str] = plan.live_fingerprints()
        #: representative slot -> class members awaiting its verdict
        shared_members: dict[int, list] = {}

        # Shared degradation machinery (used by both execution paths).
        cache_attr = {"cache": "miss"} if cache is not None else {}
        counters = {"solved": 0, "since_checkpoint": 0, "checkpoints": 0}

        def resolve_shared(member, rep_verdict, cacheable: bool) -> None:
            """Relabel a representative's verdict for a class member."""
            verdict = shared_verdict(rep_verdict, member)
            verdicts[member.slot] = verdict
            tracer.record(
                f"{member.left.name} x {member.right.name}", "pair",
                left=member.left.name, right=member.right.name,
                route="shared", class_key=member.class_key[:12],
                representative=f"{rep_verdict.left} x {rep_verdict.right}",
                restricted=verdict.restricted,
            )
            # The member caches under its *own* fingerprint: a warm
            # re-verify hits directly without re-deriving the class.
            if (cacheable and cache is not None and member.fp is not None
                    and not verdict.unknown):
                cache.put(member.fp, verdict, class_key=member.class_key)
                counters["since_checkpoint"] += 1

        def commit(slot: int, verdict, task: Task) -> None:
            """Accept a solver verdict: store, maybe cache, checkpoint,
            and fan it out to any signature-class members waiting on it.

            Verdicts computed under a degraded budget or a fallback
            engine are *tainted* — correct, but not what this sweep's
            fingerprint describes — and are never cached.  Portfolio
            lane engines are not taint: racing enum and SMT is exactly
            what a portfolio sweep's fingerprint describes."""
            verdicts[slot] = verdict
            counters["solved"] += 1
            lane_ok = engine == "portfolio" and task[4] in PORTFOLIO_LANES
            tainted = task[5] > 0 or (task[4] != engine and not lane_ok)
            fp = slot_fp.get(slot)
            if cache is not None and fp is not None and not tainted:
                cache.put(fp, verdict, class_key=slot_class.get(slot))
                counters["since_checkpoint"] += 1
                if (checkpoint_every
                        and counters["since_checkpoint"] >= checkpoint_every):
                    cache.flush()
                    counters["checkpoints"] += 1
                    counters["since_checkpoint"] = 0
            for member in shared_members.pop(slot, ()):
                resolve_shared(member, verdict, cacheable=not tainted)
            if (chaos is not None and chaos.abort_after_solved is not None
                    and counters["solved"] >= chaos.abort_after_solved):
                raise SweepAborted(
                    f"chaos: sweep aborted after {counters['solved']} "
                    f"solved pairs")

        def emit_unknown(slot: int, i: int, j: int,
                         failure: PairFailure) -> None:
            """Terminal degradation: conservative, restricted, uncached.

            Class members waiting on a failed representative degrade
            with it — each gets its own unknown verdict (provenance
            noting the representative), never a shared guess."""
            p, q = effectful[i], effectful[j]
            verdicts[slot] = unknown_verdict(
                p.name, q.name, failure,
                left_view=p.view, right_view=q.view)
            tracer.record(
                f"{p.name} x {q.name}", "pair",
                left=p.name, right=q.name, route="unknown",
                failure=failure.kind, attempts=failure.attempt,
                restricted=True, **cache_attr,
            )
            for member in shared_members.pop(slot, ()):
                mv = unknown_verdict(
                    member.left.name, member.right.name, failure,
                    left_view=member.left.view,
                    right_view=member.right.view)
                mv.provenance = {
                    "source": "shared", "class": member.class_key,
                    "representative": [p.name, q.name],
                    "renaming": member.renaming or {},
                }
                verdicts[member.slot] = mv
                tracer.record(
                    f"{member.left.name} x {member.right.name}", "pair",
                    left=member.left.name, right=member.right.name,
                    route="unknown", failure=failure.kind,
                    attempts=failure.attempt, restricted=True,
                    shared=True, **cache_attr,
                )

        for pp in plan.pairs:
            if pp.route == ROUTE_PRUNED:
                tracer.record(
                    f"{pp.left.name} x {pp.right.name}", "pair",
                    left=pp.left.name, right=pp.right.name,
                    route=f"pruned:{pp.tag}",
                    restricted=pp.verdict.restricted,
                )
                verdicts[pp.slot] = pp.verdict
            elif pp.route == ROUTE_CACHED:
                tracer.record(
                    f"{pp.left.name} x {pp.right.name}", "pair",
                    left=pp.left.name, right=pp.right.name, route="cached",
                    saved_s=pp.saved_s, restricted=pp.verdict.restricted,
                )
                verdicts[pp.slot] = pp.verdict
            elif pp.route == ROUTE_SHARED:
                rep = plan.pairs[pp.rep_slot]
                if rep.route == ROUTE_CACHED:
                    # Representative verdict already warm: share now.
                    resolve_shared(pp, rep.verdict, cacheable=True)
                else:
                    shared_members.setdefault(pp.rep_slot, []).append(pp)
            else:  # ROUTE_SOLVE
                if pp.fp is not None:
                    slot_fp[pp.slot] = pp.fp
                if pp.class_key:
                    slot_class[pp.slot] = pp.class_key
                queue.append((pp.slot, pp.i, pp.j, 0, engine, 0))

        def record_failure(task: Task, kind: str, detail: str,
                           stage: str) -> None:
            slot, i, j, attempt, task_engine, level = task
            p, q = effectful[i], effectful[j]
            tracer.record(
                f"{p.name} x {q.name}", "pair-failure",
                left=p.name, right=q.name, failure=kind,
                attempt=attempt + 1, stage=stage, engine=task_engine,
                detail=cap_text(detail),
            )

        # Pass 2 — solve the queue, in parallel when asked and worthwhile.
        solve_start = time.perf_counter()
        try:
            remaining = _solve_parallel(
                analysis, config, engine, jobs, queue, tracer, sweep_span,
                traced=ambient is not None, cache_attr=cache_attr,
                policy=policy, deadline_s=deadline_s, chaos=chaos,
                commit=commit, emit_unknown=emit_unknown,
                record_failure=record_failure,
            )
            _solve_serial(
                analysis, config, engine, remaining, tracer,
                cache_attr=cache_attr, policy=policy, deadline_s=deadline_s,
                chaos=chaos, commit=commit, emit_unknown=emit_unknown,
                record_failure=record_failure,
            )
        finally:
            # Whatever happens — including an injected SweepAborted —
            # solved work reaches disk; the atomic replace keeps the file
            # a complete snapshot, so a killed sweep resumes warm.
            if cache is not None and checkpoint_every:
                cache.flush()
        sweep_span.set(solve_wall_s=time.perf_counter() - solve_start,
                       checkpoints=counters["checkpoints"])

        if cache is not None:
            if prune_cache:
                cache.prune(live_fps)
            cache.flush()

        metrics = EngineMetrics.from_sweep(sweep_span)
        ambient_registry = metrics_registry.current()
        if ambient_registry is not None:
            # Accumulate the finished sweep into the ambient registry so
            # cross-run aggregates (cache efficiency, solve-time
            # histograms) survive beyond this report.
            fold_sweep_into(ambient_registry, sweep_span)
        sweep_span.set(
            pairs=metrics.pairs_total, pruned=metrics.pruned,
            solver_calls=metrics.solver_calls,
            unknowns=metrics.unknowns,
            cache=f"{metrics.cache_hits}h/{metrics.cache_misses}m"
            if cache is not None else "off",
        )

    report = VerificationReport(analysis.app_name)
    for verdict in verdicts:
        report.verdicts.append(verdict)
        if verdict.commutativity is not None:
            report.time_commutativity_s += verdict.commutativity.elapsed_s
        if verdict.semantic is not None:
            report.time_semantic_s += verdict.semantic.elapsed_s
    report.elapsed_s = time.perf_counter() - wall_start
    report.metrics = metrics.to_dict()
    return report


def _solve_serial(
    analysis: AnalysisResult,
    config: CheckConfig,
    engine: str,
    tasks: list[Task],
    tracer: "obs.Tracer",
    *,
    cache_attr: dict,
    policy: RetryPolicy,
    deadline_s: float,
    chaos: EngineChaosPlan | None,
    commit,
    emit_unknown,
    record_failure,
) -> None:
    """Drain ``tasks`` in the parent process, deadline-guarded.

    The per-pair deadline is enforced with ``SIGALRM`` here (see
    :func:`~repro.engine.failures.deadline`): the parent cannot kill
    itself, but it can interrupt a wedged solve and classify the attempt
    as a ``timeout``.  Retries continue in place (fresh attempt, possibly
    degraded budget or fallback engine) until the policy gives up and the
    pair degrades to an ``unknown`` verdict."""
    effectful = analysis.effectful_paths
    for task in tasks:
        while True:
            slot, i, j, attempt, task_engine, level = task
            p, q = effectful[i], effectful[j]
            attempt_config = degrade_config(config, level)
            with tracer.span(f"{p.name} x {q.name}", "pair",
                             left=p.name, right=q.name, route="solved",
                             pid=os.getpid(), **cache_attr) as pair_span:
                verdict, failure = solve_pair_guarded(
                    p, q, analysis.schema, attempt_config,
                    engine=task_engine, deadline_s=deadline_s,
                    inject=lambda: apply_chaos(
                        chaos, i, j, attempt, task_engine, stage="serial"),
                )
                if verdict is not None:
                    pair_span.set(restricted=verdict.restricted,
                                  attempts=attempt + 1)
                    if task_engine != engine:
                        pair_span.set(engine_fallback=True,
                                      engine_used=task_engine)
                    if level:
                        pair_span.set(degrade_level=level)
                    info = getattr(verdict, "portfolio_info", None)
                    if info is not None:
                        pair_span.set(portfolio_win=info["winner"])
                else:
                    kind, detail = failure
                    pair_span.set(route="failed-attempt", failure=kind,
                                  attempt=attempt + 1,
                                  detail=cap_text(detail))
            if verdict is not None:
                if info is not None and info["agree"] is not None:
                    # Both lanes ran to completion: a free cross-check.
                    tracer.record(
                        f"{p.name} x {q.name}", "portfolio-sample",
                        left=p.name, right=q.name, agree=info["agree"],
                        winner=info["winner"],
                    )
                commit(slot, verdict, task)
                break
            record_failure(task, kind, detail, "serial")
            next_task = plan_retry(task, kind, policy, base_engine=engine)
            if next_task is None:
                emit_unknown(slot, i, j, PairFailure(
                    kind, p.name, q.name, attempt + 1, "serial",
                    cap_text(detail)))
                break
            time.sleep(policy.backoff_for(attempt + 1))
            task = next_task


def _solve_parallel(
    analysis: AnalysisResult,
    config: CheckConfig,
    engine: str,
    jobs: int,
    queue: list[Task],
    tracer: "obs.Tracer",
    sweep_span: "obs.Span",
    *,
    traced: bool,
    cache_attr: dict,
    policy: RetryPolicy,
    deadline_s: float,
    chaos: EngineChaosPlan | None,
    commit,
    emit_unknown,
    record_failure,
) -> list[Task]:
    """Try to drain ``queue`` with a fault-tolerant worker pool.

    Pair-level isolation: a worker that crashes or blows the per-pair
    deadline loses only its current pair — the parent kills/collects it,
    classifies the failure, schedules a retry (fresh worker, backoff,
    possibly degraded budget or fallback engine) and respawns capacity.
    Only when the pool machinery itself fails does the sweep fall back to
    serial execution, recording the in-flight pairs (the likely poison)
    in ``fallback_reason``.

    In portfolio mode every queued pair expands into one task per lane
    (enum, smt) racing on separate workers: the first *definitive*
    verdict wins the pair and the sibling lane is cancelled; when both
    lanes finish, the loser's verdict is kept as a cross-check agreement
    sample (route ``portfolio-loser`` + a ``portfolio-sample`` record).
    A lane that fails retries within its own lane — the other lane is
    the fallback — and a pair degrades to ``unknown`` only when every
    lane is exhausted.

    Returns the tasks still unsolved — empty on success, or the
    unfinished tail (at their current attempt state) for the serial path.
    """
    portfolio = engine == "portfolio"
    work: list[Task] = queue
    if portfolio:
        work = [(slot, i, j, 0, lane, 0)
                for slot, i, j, _a, _e, _l in queue
                for lane in PORTFOLIO_LANES]
    if jobs <= 1 or len(work) < 2:
        return queue
    import dataclasses

    n_workers = min(jobs, len(work))
    resolved: set[int] = set()
    #: the most recent task tuple per unresolved slot, so a serial
    #: fallback resumes each pair's retry budget where the pool left it
    #: (portfolio falls back to fresh ``portfolio`` tasks instead: lane
    #: attempt state does not translate to the sequential form)
    latest: dict[int, Task] = {task[0]: task for task in queue}
    #: portfolio bookkeeping: lane liveness, non-definitive verdicts
    #: parked until the race settles, and winners for late cross-checks
    lanes: dict[int, dict[str, str]] = (
        {t[0]: {lane: "live" for lane in PORTFOLIO_LANES} for t in queue}
        if portfolio else {})
    candidates: dict[int, dict[str, tuple]] = {}
    winners: dict[int, tuple] = {}
    workers: dict[int, dict] = {}
    respawns = 0
    results_seen = 0

    def emit_pair_span(task: Task, verdict, pid, elapsed, span_obj,
                       route: str = "solved", extra: dict | None = None):
        """Land one worker result in the trace (graft or record)."""
        attrs = dict(attempts=task[3] + 1, **cache_attr)
        if portfolio:
            attrs["engine_used"] = task[4]
        elif task[4] != engine:
            attrs.update(engine_fallback=True, engine_used=task[4])
        if task[5]:
            attrs["degrade_level"] = task[5]
        if extra:
            attrs.update(extra)
        attrs["route"] = route
        if span_obj is not None:
            span_obj["attrs"].update(attrs)
            span_obj["attrs"].setdefault("restricted", verdict.restricted)
            tracer.graft(span_obj, parent=sweep_span)
        else:
            tracer.record(
                f"{verdict.left} x {verdict.right}", "pair",
                wall_s=elapsed, left=verdict.left,
                right=verdict.right, pid=pid,
                restricted=verdict.restricted, **attrs,
            )

    def emit_sample(win_verdict, win_lane: str, lose_verdict,
                    lose_lane: str) -> None:
        agree = portfolio_agreement(win_verdict, lose_verdict)
        if agree is not None:
            tracer.record(
                f"{win_verdict.left} x {win_verdict.right}",
                "portfolio-sample", left=win_verdict.left,
                right=win_verdict.right, agree=agree,
                winner=win_lane, loser=lose_lane,
            )

    def settle(slot: int, verdict, task: Task, pid, elapsed,
               span_obj) -> None:
        """Resolve a pair from a worker result, portfolio-aware."""
        pending[:] = [entry for entry in pending if entry[0][0] != slot]
        extra = {"portfolio_win": task[4]} if portfolio else None
        emit_pair_span(task, verdict, pid, elapsed, span_obj, extra=extra)
        resolved.add(slot)
        commit(slot, verdict, task)
        if not portfolio:
            return
        winners[slot] = (verdict, task[4])
        # A sibling candidate that already finished is the race loser.
        for lane, (cv, ctask, cpid, celapsed, cspan) in (
                candidates.pop(slot, {}).items()):
            emit_pair_span(ctask, cv, cpid, celapsed, cspan,
                           route="portfolio-loser")
            emit_sample(verdict, task[4], cv, lane)
        # Cancel the sibling lane still racing on a worker; the respawn
        # sweep below restores pool capacity.
        for wid in [w for w, st in workers.items()
                    if st["task"] is not None and st["task"][0] == slot
                    and st["task"] is not task]:
            reap(wid)

    def finalize_candidates(slot: int) -> None:
        """Every lane finished without a definitive answer: keep the
        preferred lane's verdict (enum first — the same tie-break as the
        sequential portfolio), cross-check against the rest."""
        cands = candidates.pop(slot, {})
        if not cands:
            return
        chosen = next(lane for lane in PORTFOLIO_LANES if lane in cands)
        verdict, task, pid, elapsed, span_obj = cands.pop(chosen)
        pending[:] = [entry for entry in pending if entry[0][0] != slot]
        emit_pair_span(task, verdict, pid, elapsed, span_obj,
                       extra={"portfolio_win": chosen})
        resolved.add(slot)
        commit(slot, verdict, task)
        winners[slot] = (verdict, chosen)
        for lane, (cv, ctask, cpid, celapsed, cspan) in cands.items():
            emit_pair_span(ctask, cv, cpid, celapsed, cspan,
                           route="portfolio-loser")
            emit_sample(verdict, chosen, cv, lane)

    def fail_task(task: Task, kind: str, detail: str, now: float) -> None:
        """Classify a failed worker attempt: retry or degrade to unknown."""
        slot = task[0]
        if slot in resolved:
            return
        record_failure(task, kind, detail, "worker")
        next_task = plan_retry(task, kind, policy, base_engine=engine)
        if next_task is None:
            if portfolio:
                lanes[slot][task[4]] = "dead"
                if any(s == "live" for s in lanes[slot].values()):
                    return  # the other lane may still answer
                if slot in candidates:
                    finalize_candidates(slot)
                    return
            p, q = (analysis.effectful_paths[task[1]],
                    analysis.effectful_paths[task[2]])
            emit_unknown(slot, task[1], task[2], PairFailure(
                kind, p.name, q.name, task[3] + 1, "worker",
                cap_text(detail)))
            resolved.add(slot)
        else:
            latest[slot] = next_task
            pending.append([next_task,
                            now + policy.backoff_for(task[3] + 1)])

    def reap(wid: int) -> Task | None:
        """Remove a dead/killed worker, returning its in-flight task."""
        state = workers.pop(wid)
        task = state["task"]
        proc = state["proc"]
        if proc.is_alive():
            proc.terminate()
            proc.join(0.2)
            if proc.is_alive():
                proc.kill()
                proc.join(0.2)
        state["conn"].close()
        return task

    try:
        ctx = multiprocessing.get_context("spawn")
        schema_json = json.dumps(schema_to_obj(analysis.schema))
        paths_json = json.dumps(
            [path_to_obj(p) for p in analysis.effectful_paths]
        )
        init_args = (schema_json, paths_json, dataclasses.asdict(config),
                     engine, traced, chaos.to_obj() if chaos else None)
        next_wid = 0

        def spawn() -> None:
            nonlocal next_wid
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, init_args), daemon=True)
            proc.start()
            child_conn.close()  # parent's copy; needed for EOF detection
            workers[next_wid] = {"proc": proc, "conn": parent_conn,
                                 "task": None, "deadline": 0.0}
            next_wid += 1

        for _ in range(n_workers):
            spawn()

        pending: list[list] = [[task, 0.0] for task in work]
        while len(resolved) < len(queue):
            now = time.monotonic()
            # Assign ready work (past its backoff) to idle workers.
            for state in workers.values():
                if state["task"] is not None:
                    continue
                index = next((k for k, (_, not_before) in enumerate(pending)
                              if not_before <= now), None)
                if index is None:
                    break
                task, _ = pending.pop(index)
                try:
                    state["conn"].send(task)
                except OSError:
                    # Worker died while idle; put the task back — the
                    # death sweep below reaps and respawns.
                    pending.insert(0, [task, now])
                    continue
                state["task"] = task
                state["deadline"] = now + deadline_s

            # Collect results from busy workers (EOF = worker death).
            busy_conns = {id(state["conn"]): wid
                          for wid, state in workers.items()
                          if state["task"] is not None}
            if busy_conns:
                ready = multiprocessing.connection.wait(
                    [workers[wid]["conn"] for wid in busy_conns.values()],
                    timeout=0.05)
            else:
                ready = []
                if pending:
                    time.sleep(0.01)  # backoff gap with no one to watch
            for conn in ready:
                wid = busy_conns[id(conn)]
                state = workers[wid]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    task = reap(wid)
                    exitcode = state["proc"].exitcode
                    if task is not None:
                        fail_task(task, CRASH,
                                  f"worker exited with code {exitcode}",
                                  time.monotonic())
                    continue
                state["task"] = None
                results_seen += 1
                if (chaos is not None and chaos.pool_fail_after is not None
                        and results_seen > chaos.pool_fail_after):
                    raise RuntimeError("chaos: injected pool failure")
                kind_tag, task, *payload = msg
                slot = task[0]
                if slot in resolved:
                    # Stale: the watchdog already gave up on this pair —
                    # or, in a portfolio race, the sibling lane already
                    # won, in which case this late finisher is the loser
                    # and still yields a free agreement sample.
                    if portfolio and slot in winners and kind_tag == "ok":
                        _, verdict_obj, pid, elapsed, span_obj = payload[0]
                        loser = verdict_from_obj(verdict_obj)
                        emit_pair_span(task, loser, pid, elapsed, span_obj,
                                       route="portfolio-loser")
                        win_verdict, win_lane = winners[slot]
                        emit_sample(win_verdict, win_lane, loser, task[4])
                    continue
                if kind_tag == "fail":
                    fail_task(task, payload[0], payload[1], time.monotonic())
                    continue
                _, verdict_obj, pid, elapsed, span_obj = payload[0]
                verdict = verdict_from_obj(verdict_obj)
                if portfolio and not definitive(verdict):
                    # Park it: the sibling lane may still produce a
                    # definitive answer worth waiting for.
                    lanes[slot][task[4]] = "done"
                    candidates.setdefault(slot, {})[task[4]] = (
                        verdict, task, pid, elapsed, span_obj)
                    if not any(s == "live" for s in lanes[slot].values()):
                        finalize_candidates(slot)
                    continue
                settle(slot, verdict, task, pid, elapsed, span_obj)

            # Watchdog: kill workers past the per-pair deadline.  The
            # kill, not the alarm, is the worker-side deadline — a solver
            # wedged in native search never checks a flag.
            now = time.monotonic()
            for wid in [w for w, state in workers.items()
                        if state["task"] is not None
                        and now > state["deadline"]]:
                task = reap(wid)
                if task is not None:
                    fail_task(task, TIMEOUT,
                              f"watchdog killed worker after "
                              f"{deadline_s:.1f}s deadline", now)

            # Reap workers that died while idle (rare: init crash).
            for wid in [w for w, state in workers.items()
                        if not state["proc"].is_alive()]:
                task = reap(wid)
                if task is not None:
                    fail_task(task, CRASH, "worker died unexpectedly",
                              time.monotonic())

            # Respawn capacity while unfinished work remains.
            if portfolio:
                unfinished = sum(
                    1 for slot, lane_states in lanes.items()
                    if slot not in resolved
                    for status in lane_states.values() if status == "live")
            else:
                unfinished = len(queue) - len(resolved)
            want = min(n_workers, unfinished)
            while len(workers) < want:
                spawn()
                respawns += 1

        sweep_span.set(mode="parallel", jobs_used=n_workers,
                       respawns=respawns)
        return []
    except SweepAborted:
        raise  # injected parent crash: never swallowed into a fallback
    except Exception as exc:  # pool creation failed or the drive loop died
        in_flight = sorted(
            f"{analysis.effectful_paths[state['task'][1]].name} x "
            f"{analysis.effectful_paths[state['task'][2]].name}"
            for state in workers.values() if state["task"] is not None)
        reason = cap_text(f"{type(exc).__name__}: {exc}")
        if in_flight:
            reason += "; in flight: " + cap_text(", ".join(in_flight))
        sweep_span.set(mode="serial", jobs_used=1, fallback_reason=reason,
                       respawns=respawns)
        if portfolio:
            # Lane attempt state does not translate to the sequential
            # form; fall back to fresh ``portfolio`` tasks per pair.
            return sorted((t for t in queue if t[0] not in resolved),
                          key=lambda t: t[0])
        return sorted((latest[slot] for slot in latest
                       if slot not in resolved), key=lambda t: t[0])
    finally:
        for wid in list(workers):
            state = workers[wid]
            if state["proc"].is_alive() and state["task"] is None:
                try:
                    state["conn"].send(None)  # graceful: let it exit
                except OSError:
                    pass
            reap(wid)
