"""The verification scheduler: incremental, parallel, traced pair sweeps.

Sits between the analyzer and the pair checkers (paper Figure 1 gains a
box): ``run_pair_sweep`` drives the quadratic sweep over effectful code
paths that ``verify_application`` used to run inline, adding three layers
while preserving result equality with the plain serial loop:

1. **pruning** — the solver-free fast layers (``classify_pair``) resolve
   conservative, order-disabled and disjoint-footprint pairs in the
   parent process;
2. **memoization** — remaining pairs are looked up in a content-addressed
   on-disk cache (:mod:`repro.engine.cache`) keyed by the pair fingerprint
   (:mod:`repro.engine.fingerprint`); after an edit, only pairs whose
   fingerprints changed are re-solved;
3. **parallelism** — cache misses are dispatched across a
   ``multiprocessing`` pool (``jobs > 1``), falling back to serial
   execution if a pool cannot be created or dies mid-sweep.

Observability: every sweep runs inside a ``pair-sweep`` span with one
``pair`` child per pair (route = ``pruned:<tag>`` / ``cached`` /
``solved``).  When the caller has a tracer active (:mod:`repro.obs`)
those spans land in the caller's trace — including spans produced
*inside worker processes*, which are serialized and grafted back onto
the parent tree, so a parallel sweep yields one coherent trace.  With no
tracer active, the scheduler still builds the span tree on a private
tracer, because :class:`~repro.engine.metrics.EngineMetrics` is computed
*from* the spans (``EngineMetrics.from_sweep``) rather than from ad-hoc
counters.

Determinism: verdicts are assembled into the report in sweep order
(``i <= j`` over the effectful-path list) regardless of worker completion
order, and the checkers themselves are process-independent (seeded
sampling, no builtin ``hash``), so serial, parallel and cached sweeps
produce identical reports.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

from ..obs import tracer as obs
from ..soir.path import AnalysisResult
from ..soir.serialize import path_to_obj, path_from_obj, schema_from_obj, schema_to_obj
from ..verifier.enumcheck import CheckConfig
from ..verifier.restrictions import (
    VerificationReport,
    verdict_from_obj,
    verdict_to_obj,
)
from ..verifier.runner import classify_pair, solve_pair
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .fingerprint import FingerprintContext
from .metrics import EngineMetrics

# ---------------------------------------------------------------------------
# Worker side.  Each pool worker deserializes the sweep inputs once (in the
# initializer) and then solves pairs by index; passing SOIR JSON instead of
# pickled objects keeps the protocol spawn-safe and version-checkable.
# ---------------------------------------------------------------------------

_WORKER: dict = {}


def _worker_init(schema_json: str, paths_json: str, config_args: dict,
                 engine: str, trace: bool) -> None:
    _WORKER["schema"] = schema_from_obj(json.loads(schema_json))
    _WORKER["paths"] = [path_from_obj(o) for o in json.loads(paths_json)]
    _WORKER["config"] = CheckConfig(**config_args)
    _WORKER["engine"] = engine
    _WORKER["trace"] = trace


def _worker_solve(
    task: tuple[int, int, int],
) -> tuple[int, dict, int, float, dict | None]:
    """Solve one pair; optionally under a worker-local tracer.

    When the parent sweep is traced, the worker opens its own ``pair``
    span (the check/solver spans nest under it), serializes the finished
    span tree, and ships it back with the verdict — the parent grafts it
    into the sweep span so the final trace covers worker-side work.
    """
    slot, i, j = task
    paths = _WORKER["paths"]
    p, q = paths[i], paths[j]
    started = time.perf_counter()
    span_obj: dict | None = None
    if _WORKER["trace"]:
        tracer = obs.Tracer()
        with obs.activate(tracer):
            with tracer.span(f"{p.name} x {q.name}", "pair",
                             left=p.name, right=q.name, route="solved",
                             pid=os.getpid()) as pair_span:
                verdict = solve_pair(
                    p, q, _WORKER["schema"], _WORKER["config"],
                    engine=_WORKER["engine"],
                )
                pair_span.set(restricted=verdict.restricted)
        span_obj = obs.span_to_obj(tracer.roots[0])
    else:
        verdict = solve_pair(
            p, q, _WORKER["schema"], _WORKER["config"],
            engine=_WORKER["engine"],
        )
    elapsed = time.perf_counter() - started
    return slot, verdict_to_obj(verdict), os.getpid(), elapsed, span_obj


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


def run_pair_sweep(
    analysis: AnalysisResult,
    config: CheckConfig | None = None,
    *,
    engine: str = "enum",
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | None = None,
    prune_cache: bool = False,
) -> VerificationReport:
    """Verify every unordered pair of effectful paths of ``analysis``.

    ``prune_cache`` additionally drops cache entries not referenced by
    this sweep (stale fingerprints from earlier versions of the app)."""
    config = config or CheckConfig()
    wall_start = time.perf_counter()
    effectful = analysis.effectful_paths

    # The sweep always runs under a tracer: the ambient one when the
    # caller traces, otherwise a private tracer whose only job is to
    # carry the pair spans EngineMetrics is derived from.
    ambient = obs.current()
    tracer = ambient if ambient is not None else obs.Tracer(max_records=1)

    cache: ResultCache | None = None
    fingerprints: FingerprintContext | None = None
    if use_cache:
        cache = ResultCache(cache_dir or DEFAULT_CACHE_DIR, analysis.app_name)
        fingerprints = FingerprintContext(analysis.schema, config, engine)

    with tracer.span(f"pair-sweep {analysis.app_name}", "pair-sweep",
                     app=analysis.app_name, engine=engine,
                     jobs_requested=jobs, mode="serial", jobs_used=1,
                     fallback_reason="") as sweep_span:
        # Pass 1 — resolve every pair through pruning and the cache,
        # queueing only genuine solver work.  ``verdicts`` is
        # slot-addressed so results land in sweep order no matter how
        # they were computed.
        verdicts: list = []
        queue: list[tuple[int, int, int]] = []  # (slot, i, j)
        slot_fp: dict[int, str] = {}
        live_fps: set[str] = set()
        for i, p in enumerate(effectful):
            for j in range(i, len(effectful)):
                q = effectful[j]
                slot = len(verdicts)
                classified = classify_pair(p, q, analysis.schema, config)
                if classified is not None:
                    verdict, tag = classified
                    tracer.record(
                        f"{p.name} x {q.name}", "pair",
                        left=p.name, right=q.name,
                        route=f"pruned:{tag}", restricted=verdict.restricted,
                    )
                    verdicts.append(verdict)
                    continue
                if cache is not None and fingerprints is not None:
                    fp = fingerprints.pair(p, q)
                    live_fps.add(fp)
                    hit = cache.get(fp)
                    if hit is not None:
                        verdict, saved_s = hit
                        tracer.record(
                            f"{p.name} x {q.name}", "pair",
                            left=p.name, right=q.name, route="cached",
                            saved_s=saved_s, restricted=verdict.restricted,
                        )
                        verdicts.append(verdict)
                        continue
                    slot_fp[slot] = fp
                verdicts.append(None)
                queue.append((slot, i, j))

        # Pass 2 — solve the queue, in parallel when asked and worthwhile.
        cache_attr = {"cache": "miss"} if cache is not None else {}
        solve_start = time.perf_counter()
        remaining = _solve_parallel(
            analysis, config, engine, jobs, queue, verdicts, tracer,
            sweep_span, traced=ambient is not None, cache_attr=cache_attr,
        )
        for slot, i, j in remaining:
            p, q = effectful[i], effectful[j]
            with tracer.span(f"{p.name} x {q.name}", "pair",
                             left=p.name, right=q.name, route="solved",
                             pid=os.getpid(), **cache_attr) as pair_span:
                verdict = solve_pair(p, q, analysis.schema, config,
                                     engine=engine)
                pair_span.set(restricted=verdict.restricted)
            verdicts[slot] = verdict
        sweep_span.set(solve_wall_s=time.perf_counter() - solve_start)

        if cache is not None:
            for slot, fp in slot_fp.items():
                if verdicts[slot] is not None:
                    cache.put(fp, verdicts[slot])
            if prune_cache:
                cache.prune(live_fps)
            cache.flush()

        metrics = EngineMetrics.from_sweep(sweep_span)
        sweep_span.set(
            pairs=metrics.pairs_total, pruned=metrics.pruned,
            solver_calls=metrics.solver_calls,
            cache=f"{metrics.cache_hits}h/{metrics.cache_misses}m"
            if cache is not None else "off",
        )

    report = VerificationReport(analysis.app_name)
    for verdict in verdicts:
        report.verdicts.append(verdict)
        if verdict.commutativity is not None:
            report.time_commutativity_s += verdict.commutativity.elapsed_s
        if verdict.semantic is not None:
            report.time_semantic_s += verdict.semantic.elapsed_s
    report.elapsed_s = time.perf_counter() - wall_start
    report.metrics = metrics.to_dict()
    return report


def _solve_parallel(
    analysis: AnalysisResult,
    config: CheckConfig,
    engine: str,
    jobs: int,
    queue: list[tuple[int, int, int]],
    verdicts: list,
    tracer: "obs.Tracer",
    sweep_span: "obs.Span",
    *,
    traced: bool,
    cache_attr: dict,
) -> list[tuple[int, int, int]]:
    """Try to drain ``queue`` with a worker pool, filling ``verdicts``.

    Returns the tasks still unsolved — empty on success, the whole queue
    when parallelism is unavailable, or the unfinished tail if the pool
    died mid-sweep (the caller finishes serially; results stay exact)."""
    if jobs <= 1 or len(queue) < 2:
        return queue
    import dataclasses

    workers = min(jobs, len(queue))
    done: set[int] = set()
    try:
        schema_json = json.dumps(schema_to_obj(analysis.schema))
        paths_json = json.dumps(
            [path_to_obj(p) for p in analysis.effectful_paths]
        )
        initargs = (schema_json, paths_json, dataclasses.asdict(config),
                    engine, traced)
        with multiprocessing.Pool(
            workers, initializer=_worker_init, initargs=initargs,
        ) as pool:
            for slot, obj, pid, elapsed, span_obj in pool.imap_unordered(
                _worker_solve, queue, chunksize=1,
            ):
                verdict = verdict_from_obj(obj)
                verdicts[slot] = verdict
                done.add(slot)
                if span_obj is not None:
                    span_obj["attrs"].update(cache_attr)
                    tracer.graft(span_obj, parent=sweep_span)
                else:
                    tracer.record(
                        f"{verdict.left} x {verdict.right}", "pair",
                        wall_s=elapsed, left=verdict.left,
                        right=verdict.right, route="solved", pid=pid,
                        restricted=verdict.restricted, **cache_attr,
                    )
        sweep_span.set(mode="parallel", jobs_used=workers)
        return []
    except Exception as exc:  # pool creation or a worker crash
        sweep_span.set(mode="serial", jobs_used=1,
                       fallback_reason=f"{type(exc).__name__}: {exc}")
        return [task for task in queue if task[0] not in done]
