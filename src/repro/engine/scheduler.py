"""The verification scheduler: incremental, parallel pair sweeps.

Sits between the analyzer and the pair checkers (paper Figure 1 gains a
box): ``run_pair_sweep`` drives the quadratic sweep over effectful code
paths that ``verify_application`` used to run inline, adding three layers
while preserving result equality with the plain serial loop:

1. **pruning** — the solver-free fast layers (``classify_pair``) resolve
   conservative, order-disabled and disjoint-footprint pairs in the
   parent process;
2. **memoization** — remaining pairs are looked up in a content-addressed
   on-disk cache (:mod:`repro.engine.cache`) keyed by the pair fingerprint
   (:mod:`repro.engine.fingerprint`); after an edit, only pairs whose
   fingerprints changed are re-solved;
3. **parallelism** — cache misses are dispatched across a
   ``multiprocessing`` pool (``jobs > 1``), falling back to serial
   execution if a pool cannot be created or dies mid-sweep.

Determinism: verdicts are assembled into the report in sweep order
(``i <= j`` over the effectful-path list) regardless of worker completion
order, and the checkers themselves are process-independent (seeded
sampling, no builtin ``hash``), so serial, parallel and cached sweeps
produce identical reports.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

from ..soir.path import AnalysisResult
from ..soir.serialize import path_to_obj, path_from_obj, schema_from_obj, schema_to_obj
from ..verifier.enumcheck import CheckConfig
from ..verifier.restrictions import (
    VerificationReport,
    verdict_from_obj,
    verdict_to_obj,
)
from ..verifier.runner import classify_pair, solve_pair
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .fingerprint import FingerprintContext
from .metrics import EngineMetrics

# ---------------------------------------------------------------------------
# Worker side.  Each pool worker deserializes the sweep inputs once (in the
# initializer) and then solves pairs by index; passing SOIR JSON instead of
# pickled objects keeps the protocol spawn-safe and version-checkable.
# ---------------------------------------------------------------------------

_WORKER: dict = {}


def _worker_init(schema_json: str, paths_json: str, config_args: dict,
                 engine: str) -> None:
    _WORKER["schema"] = schema_from_obj(json.loads(schema_json))
    _WORKER["paths"] = [path_from_obj(o) for o in json.loads(paths_json)]
    _WORKER["config"] = CheckConfig(**config_args)
    _WORKER["engine"] = engine


def _worker_solve(task: tuple[int, int, int]) -> tuple[int, dict, int, float]:
    slot, i, j = task
    paths = _WORKER["paths"]
    started = time.perf_counter()
    verdict = solve_pair(
        paths[i], paths[j], _WORKER["schema"], _WORKER["config"],
        engine=_WORKER["engine"],
    )
    elapsed = time.perf_counter() - started
    return slot, verdict_to_obj(verdict), os.getpid(), elapsed


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


def run_pair_sweep(
    analysis: AnalysisResult,
    config: CheckConfig | None = None,
    *,
    engine: str = "enum",
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | None = None,
    prune_cache: bool = False,
) -> VerificationReport:
    """Verify every unordered pair of effectful paths of ``analysis``.

    ``prune_cache`` additionally drops cache entries not referenced by
    this sweep (stale fingerprints from earlier versions of the app)."""
    config = config or CheckConfig()
    wall_start = time.perf_counter()
    effectful = analysis.effectful_paths
    metrics = EngineMetrics(jobs_requested=jobs)

    cache: ResultCache | None = None
    fingerprints: FingerprintContext | None = None
    if use_cache:
        cache = ResultCache(cache_dir or DEFAULT_CACHE_DIR, analysis.app_name)
        fingerprints = FingerprintContext(analysis.schema, config, engine)

    # Pass 1 — resolve every pair through pruning and the cache, queueing
    # only genuine solver work.  ``verdicts`` is slot-addressed so results
    # land in sweep order no matter how they were computed.
    verdicts: list = []
    queue: list[tuple[int, int, int]] = []  # (slot, i, j)
    slot_fp: dict[int, str] = {}
    live_fps: set[str] = set()
    prune_counters = {
        "conservative": 0,
        "order": 0,
        "disjoint": 0,
    }
    for i, p in enumerate(effectful):
        for j in range(i, len(effectful)):
            q = effectful[j]
            slot = len(verdicts)
            classified = classify_pair(p, q, analysis.schema, config)
            if classified is not None:
                verdict, tag = classified
                prune_counters[tag] += 1
                verdicts.append(verdict)
                continue
            if cache is not None and fingerprints is not None:
                fp = fingerprints.pair(p, q)
                live_fps.add(fp)
                hit = cache.get(fp)
                if hit is not None:
                    verdict, saved_s = hit
                    metrics.cache_hits += 1
                    metrics.cache_saved_s += saved_s
                    verdicts.append(verdict)
                    continue
                metrics.cache_misses += 1
                slot_fp[slot] = fp
            verdicts.append(None)
            queue.append((slot, i, j))
    metrics.pairs_total = len(verdicts)
    metrics.pruned_conservative = prune_counters["conservative"]
    metrics.pruned_order = prune_counters["order"]
    metrics.pruned_disjoint = prune_counters["disjoint"]

    # Pass 2 — solve the queue, in parallel when asked and worthwhile.
    solve_start = time.perf_counter()
    remaining = _solve_parallel(analysis, config, engine, jobs, queue,
                                verdicts, metrics)
    for slot, i, j in remaining:
        started = time.perf_counter()
        verdict = solve_pair(effectful[i], effectful[j], analysis.schema,
                             config, engine=engine)
        metrics.record_solve(os.getpid(), verdict.left, verdict.right,
                             time.perf_counter() - started)
        verdicts[slot] = verdict
    metrics.solve_wall_s = time.perf_counter() - solve_start

    if cache is not None:
        for slot, fp in slot_fp.items():
            if verdicts[slot] is not None:
                cache.put(fp, verdicts[slot])
        if prune_cache:
            cache.prune(live_fps)
        cache.flush()

    report = VerificationReport(analysis.app_name)
    for verdict in verdicts:
        report.verdicts.append(verdict)
        if verdict.commutativity is not None:
            report.time_commutativity_s += verdict.commutativity.elapsed_s
        if verdict.semantic is not None:
            report.time_semantic_s += verdict.semantic.elapsed_s
    report.elapsed_s = time.perf_counter() - wall_start
    report.metrics = metrics.to_dict()
    return report


def _solve_parallel(
    analysis: AnalysisResult,
    config: CheckConfig,
    engine: str,
    jobs: int,
    queue: list[tuple[int, int, int]],
    verdicts: list,
    metrics: EngineMetrics,
) -> list[tuple[int, int, int]]:
    """Try to drain ``queue`` with a worker pool, filling ``verdicts``.

    Returns the tasks still unsolved — empty on success, the whole queue
    when parallelism is unavailable, or the unfinished tail if the pool
    died mid-sweep (the caller finishes serially; results stay exact)."""
    if jobs <= 1 or len(queue) < 2:
        return queue
    import dataclasses

    workers = min(jobs, len(queue))
    done: set[int] = set()
    try:
        schema_json = json.dumps(schema_to_obj(analysis.schema))
        paths_json = json.dumps(
            [path_to_obj(p) for p in analysis.effectful_paths]
        )
        initargs = (schema_json, paths_json, dataclasses.asdict(config),
                    engine)
        with multiprocessing.Pool(
            workers, initializer=_worker_init, initargs=initargs,
        ) as pool:
            for slot, obj, pid, elapsed in pool.imap_unordered(
                _worker_solve, queue, chunksize=1,
            ):
                verdict = verdict_from_obj(obj)
                verdicts[slot] = verdict
                done.add(slot)
                metrics.record_solve(pid, verdict.left, verdict.right,
                                     elapsed)
        metrics.mode = "parallel"
        metrics.jobs_used = workers
        return []
    except Exception as exc:  # pool creation or a worker crash
        metrics.mode = "serial"
        metrics.jobs_used = 1
        metrics.fallback_reason = f"{type(exc).__name__}: {exc}"
        return [task for task in queue if task[0] not in done]
