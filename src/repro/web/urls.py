"""URL routing.

Patterns use Django's ``path()`` syntax with ``<name>`` / ``<int:name>``
converters::

    path("articles/<int:pk>/delete", delete_article, name="delete-article")

Every pattern can report its parameter specification
(:meth:`URLPattern.param_specs`) so the analyzer can build symbolic URL
arguments without parsing source code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

_CONVERTERS = {
    "str": (r"[^/]+", str),
    "int": (r"[0-9]+", int),
    "slug": (r"[-a-zA-Z0-9_]+", str),
}

_PARAM_RE = re.compile(r"<(?:(?P<conv>\w+):)?(?P<name>\w+)>")


class RoutingError(Exception):
    """Bad pattern syntax or unresolvable path."""


@dataclass
class URLPattern:
    """One route: pattern string, view callable, optional name."""

    pattern: str
    view: Callable
    name: str = ""

    def __post_init__(self) -> None:
        regex_parts: list[str] = []
        self._params: list[tuple[str, type]] = []
        rest = self.pattern
        pos = 0
        for m in _PARAM_RE.finditer(rest):
            conv = m.group("conv") or "str"
            if conv not in _CONVERTERS:
                raise RoutingError(f"unknown converter {conv!r} in {self.pattern!r}")
            regex, py_type = _CONVERTERS[conv]
            regex_parts.append(re.escape(rest[pos:m.start()]))
            regex_parts.append(f"(?P<{m.group('name')}>{regex})")
            self._params.append((m.group("name"), py_type))
            pos = m.end()
        regex_parts.append(re.escape(rest[pos:]))
        self._regex = re.compile("^" + "".join(regex_parts) + "$")

    def match(self, path: str) -> dict | None:
        m = self._regex.match(path.strip("/"))
        if m is None:
            return None
        out = {}
        for name, py_type in self._params:
            out[name] = py_type(m.group(name))
        return out

    def param_specs(self) -> list[tuple[str, type]]:
        """``[(name, python_type)]`` of the URL parameters, for the analyzer."""
        return list(self._params)

    @property
    def view_name(self) -> str:
        return self.name or getattr(self.view, "__name__", "view")


def path(pattern: str, view: Callable, name: str = "") -> URLPattern:
    return URLPattern(pattern.strip("/"), view, name)


def include(prefix: str, patterns: list[URLPattern]) -> list[URLPattern]:
    """Mount a list of patterns under a prefix."""
    prefix = prefix.strip("/")
    out = []
    for p in patterns:
        joined = f"{prefix}/{p.pattern}".strip("/")
        out.append(URLPattern(joined, p.view, p.name))
    return out


class Resolver:
    def __init__(self, patterns: list[URLPattern]):
        self.patterns = list(patterns)

    def resolve(self, request_path: str) -> tuple[URLPattern, dict]:
        for p in self.patterns:
            params = p.match(request_path)
            if params is not None:
                return p, params
        raise RoutingError(f"no route matches {request_path!r}")
