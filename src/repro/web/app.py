"""The application object: registry + routes + request dispatch.

An :class:`Application` is what both the test client and the Noctua
analyzer consume.  Dispatch wraps every request in a transaction, which is
the serializability assumption underpinning the paper's semantic check
(§2.2.1: "many web frameworks, including Django, readily wrap HTTP
responder functions in transactions to achieve serializability") — a
request whose path conditions fail leaves no partial effects behind.
"""

from __future__ import annotations

from ..orm.database import Database
from ..orm.exceptions import IntegrityError, ObjectDoesNotExist, ValidationError
from ..orm.registry import Registry
from .http import BadRequest, Http404, HttpRequest, HttpResponse
from .urls import Resolver, RoutingError, URLPattern


class Application:
    """One web application: models (via ``registry``) and HTTP endpoints."""

    def __init__(
        self,
        name: str,
        registry: Registry,
        urlpatterns: list[URLPattern],
        *,
        source_loc: int = 0,
    ):
        self.name = name
        self.registry = registry
        self.urlpatterns = list(urlpatterns)
        self.resolver = Resolver(self.urlpatterns)
        #: lines of application code, reported in evaluation tables; set by
        #: the app package (counted from its own source files).
        self.source_loc = source_loc

    # ------------------------------------------------------------------
    # Endpoint discovery (used by the analyzer, paper §5.1)
    # ------------------------------------------------------------------

    def endpoints(self) -> list[URLPattern]:
        """Every HTTP endpoint with its (possibly runtime-constructed)
        view function.  This is the framework-integration point: the
        analyzer queries the *initialized* application instead of parsing
        source code."""
        return list(self.urlpatterns)

    # ------------------------------------------------------------------
    # Dispatch (concrete execution)
    # ------------------------------------------------------------------

    def handle(self, request: HttpRequest, db: Database) -> HttpResponse:
        """Route and execute one request transactionally against ``db``."""
        try:
            pattern, params = self.resolver.resolve(request.path)
        except RoutingError:
            return HttpResponse(content="not found", status=404)
        with db.activate():
            try:
                with db.atomic():
                    response = pattern.view(request, **params)
            except (Http404, ObjectDoesNotExist) as exc:
                return HttpResponse(content=str(exc), status=404)
            except (
                BadRequest,
                KeyError,
                ValueError,
                ValidationError,
                IntegrityError,
            ) as exc:
                return HttpResponse(content=str(exc), status=400)
        if response is None:
            response = HttpResponse(status=200)
        return response


class Client:
    """Test client bound to an application and a database."""

    def __init__(self, app: Application, db: Database):
        self.app = app
        self.db = db

    def get(self, path: str, params: dict | None = None) -> HttpResponse:
        request = HttpRequest("GET", path, GET=params or {})
        return self.app.handle(request, self.db)

    def post(self, path: str, data: dict | None = None) -> HttpResponse:
        request = HttpRequest("POST", path, POST=data or {})
        return self.app.handle(request, self.db)

    def delete(self, path: str) -> HttpResponse:
        request = HttpRequest("DELETE", path)
        return self.app.handle(request, self.db)
