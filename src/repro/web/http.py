"""HTTP request/response primitives (Django-shaped)."""

from __future__ import annotations

from typing import Any, Mapping


class Http404(Exception):
    """Raised by views to produce a 404 response."""


class BadRequest(Exception):
    """Raised by views to produce a 400 response."""


class QueryDict(dict):
    """Request parameters.  ``[]`` raises ``KeyError`` like Django's
    ``MultiValueDict``; ``get`` returns a default."""

    def __missing__(self, key):
        raise KeyError(key)


class HttpRequest:
    """One HTTP request.

    ``GET`` and ``POST`` hold the query-string and form parameters.  The
    analyzer substitutes a symbolic subclass whose parameter accesses are
    recorded as code-path arguments (paper §4.1: "whenever a new POST
    parameter is accessed, it is automatically recorded as an additional
    argument").
    """

    def __init__(
        self,
        method: str = "GET",
        path: str = "/",
        GET: Mapping[str, Any] | None = None,
        POST: Mapping[str, Any] | None = None,
        user: Any = None,
    ):
        self.method = method.upper()
        self.path = path
        self.GET = QueryDict(GET or {})
        self.POST = QueryDict(POST or {})
        self.user = user

    def post_int(self, key: str) -> int:
        """Typed access to a POST parameter (form-style coercion)."""
        return int(self.POST[key])

    def get_int(self, key: str) -> int:
        return int(self.GET[key])

    def __repr__(self) -> str:
        return f"<HttpRequest {self.method} {self.path}>"


class HttpResponse:
    """One HTTP response."""

    def __init__(self, content: Any = "", status: int = 200,
                 content_type: str = "text/plain"):
        self.content = content
        self.status = status
        self.content_type = content_type

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def __repr__(self) -> str:
        return f"<HttpResponse {self.status}>"


class JsonResponse(HttpResponse):
    def __init__(self, data: Any, status: int = 200):
        super().__init__(content=data, status=status,
                         content_type="application/json")


def get_object_or_404(model: type, **lookups):
    """Django's shortcut: ``get`` or raise :class:`Http404`."""
    try:
        return model.objects.get(**lookups)
    except model.DoesNotExist:
        raise Http404(f"{model.__name__} not found") from None
