"""A from-scratch Django-like web framework (substrate for the reproduction).

Routing with Django ``path()`` converters, function and class-based views,
dynamically-constructed viewsets (the DRF-style pattern that defeats static
analysis), transactional request dispatch, and a test client.
"""

from .app import Application, Client
from .http import (
    BadRequest,
    Http404,
    HttpRequest,
    HttpResponse,
    JsonResponse,
    QueryDict,
    get_object_or_404,
)
from .urls import Resolver, RoutingError, URLPattern, include, path
from .views import (
    CreateMixin,
    DestroyMixin,
    GenericViewSet,
    ListMixin,
    ModelViewSet,
    ReadOnlyViewSet,
    RetrieveMixin,
    UpdateMixin,
    View,
)

__all__ = [
    "Application",
    "BadRequest",
    "Client",
    "CreateMixin",
    "DestroyMixin",
    "GenericViewSet",
    "Http404",
    "HttpRequest",
    "HttpResponse",
    "JsonResponse",
    "ListMixin",
    "ModelViewSet",
    "QueryDict",
    "ReadOnlyViewSet",
    "Resolver",
    "RetrieveMixin",
    "RoutingError",
    "URLPattern",
    "UpdateMixin",
    "View",
    "get_object_or_404",
    "include",
    "path",
]
