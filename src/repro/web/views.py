"""Class-based views, mixins and viewsets.

These exist to reproduce the dynamic-construction patterns (closures built
at runtime from mixin method resolution) that make real Django/DRF
codebases *statically unanalyzable* — the paper's challenge (C1) and the
reason for the embedded, runtime-integrated analyzer (§4.1, §5.1 "Entry
discovery: it is impossible to find entries statically by just looking at
the source code").

``ModelViewSet.urls()`` manufactures view *functions* (closures) at
runtime, one per action, exactly like DRF routers do.
"""

from __future__ import annotations

from typing import Callable

from .http import Http404, HttpRequest, HttpResponse, JsonResponse
from .urls import URLPattern, path


class View:
    """Minimal class-based view: dispatch by HTTP method."""

    @classmethod
    def as_view(cls, **initkwargs) -> Callable:
        # The returned closure is created at runtime; its body is invisible
        # to static analysis of the call site.
        def view(request: HttpRequest, **kwargs):
            instance = cls(**initkwargs)
            handler = getattr(instance, request.method.lower(), None)
            if handler is None:
                return HttpResponse(status=405)
            return handler(request, **kwargs)

        view.__name__ = cls.__name__
        return view

    def __init__(self, **initkwargs):
        for key, value in initkwargs.items():
            setattr(self, key, value)


class GenericViewSet:
    """Base viewset bound to a model; subclasses mix in actions."""

    model: type | None = None
    #: fields accepted from POST data by create/update actions
    fields: tuple[str, ...] = ()
    #: url prefix used by :meth:`urls`
    basename: str = ""

    def get_queryset(self):
        assert self.model is not None
        return self.model.objects.all()

    def get_object(self, pk):
        try:
            return self.get_queryset().get(pk=pk)
        except self.model.DoesNotExist:
            raise Http404(f"{self.model.__name__} not found") from None

    # ------------------------------------------------------------------

    @classmethod
    def urls(cls) -> list[URLPattern]:
        """Manufacture one view function per supported action, at runtime.

        Mirrors DRF's router: the set of routes depends on which action
        mixins the concrete class inherits — pure MRO introspection.
        """
        base = cls.basename or (cls.model.__name__.lower() if cls.model else "obj")
        patterns: list[URLPattern] = []

        def make_action(action_name: str) -> Callable:
            def view(request: HttpRequest, **kwargs):
                instance = cls()
                return getattr(instance, action_name)(request, **kwargs)

            view.__name__ = f"{base}_{action_name}"
            return view

        if hasattr(cls, "list"):
            patterns.append(path(f"{base}/", make_action("list"), f"{base}-list"))
        if hasattr(cls, "create"):
            patterns.append(
                path(f"{base}/create", make_action("create"), f"{base}-create")
            )
        if hasattr(cls, "retrieve"):
            patterns.append(
                path(f"{base}/<int:pk>/", make_action("retrieve"), f"{base}-detail")
            )
        if hasattr(cls, "update"):
            patterns.append(
                path(f"{base}/<int:pk>/update", make_action("update"), f"{base}-update")
            )
        if hasattr(cls, "destroy"):
            patterns.append(
                path(f"{base}/<int:pk>/delete", make_action("destroy"), f"{base}-delete")
            )
        return patterns


def _typed_param(model: type, field_name: str, request: HttpRequest):
    """Read a POST parameter coerced to the field's type (form-style)."""
    from ..orm.fields import BooleanField, DateTimeField, IntegerField

    column = model._meta.column(field_name)
    if isinstance(column, (IntegerField, DateTimeField)):
        return request.post_int(field_name)
    if isinstance(column, BooleanField):
        return bool(request.POST[field_name])
    return request.POST[field_name]


class ListMixin:
    def list(self, request: HttpRequest) -> HttpResponse:
        return JsonResponse(self.get_queryset().count())


class RetrieveMixin:
    def retrieve(self, request: HttpRequest, pk) -> HttpResponse:
        obj = self.get_object(pk)
        return JsonResponse({f: getattr(obj, f) for f in self.fields})


class CreateMixin:
    def create(self, request: HttpRequest) -> HttpResponse:
        kwargs = {
            f: _typed_param(self.model, f, request)
            for f in self.fields
            if f in request.POST
        }
        obj = self.model.objects.create(**kwargs)
        return JsonResponse({"pk": obj.pk}, status=201)


class UpdateMixin:
    def update(self, request: HttpRequest, pk) -> HttpResponse:
        obj = self.get_object(pk)
        for f in self.fields:
            if f in request.POST:
                setattr(obj, f, _typed_param(self.model, f, request))
        obj.save()
        return JsonResponse({"pk": obj.pk})


class DestroyMixin:
    def destroy(self, request: HttpRequest, pk) -> HttpResponse:
        obj = self.get_object(pk)
        obj.delete()
        return HttpResponse(status=204)


class ModelViewSet(
    ListMixin, RetrieveMixin, CreateMixin, UpdateMixin, DestroyMixin, GenericViewSet
):
    """Full CRUD viewset (list/retrieve/create/update/destroy)."""


class ReadOnlyViewSet(ListMixin, RetrieveMixin, GenericViewSet):
    """List/retrieve only."""
