"""The order-aware array-based SMT encoding (paper §4.2, Table 2),
grounded over the finite scopes of :mod:`repro.verifier.scopes`.

A model state is encoded as the paper's triple, one term per universe
element:

* ``ids``   — a boolean membership term per candidate primary key;
* ``data``  — per candidate key, one term per field (a *total* map: keys
  outside ``ids`` carry unconstrained values, exactly the array-theory
  totality the paper exploits);
* ``order`` — per candidate key, an integer order term.  **Decoupling**:
  the order component is materialized lazily — only when the code paths
  under verification actually use an order-related primitive — so the
  common case pays nothing for it (``order_mode="decoupled"``).

Well-formedness axioms follow §5.2: the pk column of ``data[r]`` *is*
``r`` (structurally), unique fields do not collide between present rows,
order numbers are distinct, and foreign keys are functional, non-dangling
and (when non-nullable) total.

:class:`Encoder` symbolically executes a SOIR code path over such a state:
*run* mode collects the precondition ``g_P`` (explicit guards plus
implicit existence/non-emptiness obligations); *apply* mode is replication
semantics (guards skipped, ghost reads).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..smt import terms as T
from ..soir import commands as C
from ..soir import expr as E
from ..soir.path import CodePath
from ..soir.schema import Schema
from ..soir.types import (
    Aggregation,
    Comparator,
    Direction,
    SoirType,
)
from ..soir.types import BOOL as S_BOOL, FLOAT as S_FLOAT, INT as S_INT
from .scopes import Scope


class EncodingUnsupported(Exception):
    """The construct cannot be encoded; the caller degrades conservatively."""


def term_sort(soir_type: SoirType) -> str:
    if soir_type == S_BOOL:
        return T.BOOL
    if soir_type == S_FLOAT:
        return T.FLOAT
    if soir_type == S_INT:
        return T.INT
    if str(soir_type) == "Datetime":
        return T.INT
    return T.STR


@dataclass
class GroundState:
    """One encoded database state (the paper's Table 2, grounded)."""

    prefix: str
    ids: dict[str, dict[object, T.Term]] = field(default_factory=dict)
    data: dict[str, dict[object, dict[str, T.Term]]] = field(default_factory=dict)
    order: dict[str, dict[object, T.Term] | None] = field(default_factory=dict)
    assocs: dict[str, dict[tuple, T.Term]] = field(default_factory=dict)

    def copy(self) -> "GroundState":
        return GroundState(
            prefix=self.prefix,
            ids={m: dict(v) for m, v in self.ids.items()},
            data={m: {r: dict(fs) for r, fs in rows.items()}
                  for m, rows in self.data.items()},
            order={m: (dict(v) if v is not None else None)
                   for m, v in self.order.items()},
            assocs={rel: dict(v) for rel, v in self.assocs.items()},
        )


@dataclass
class StateBundle:
    """A fresh state with its axioms and variable domains."""

    state: GroundState
    axioms: list[T.Term]
    domains: dict[str, list]


def universe_of(scope: Scope) -> dict[str, list]:
    """Candidate primary keys per model: scope rows, plus fresh-pool slots
    for models the paths actually insert fresh rows into (keeping the
    grounded state as small as the pair allows)."""
    return {
        m: list(scope.ids[m]) + (
            list(scope.fresh_ids.get(m, [])) if m in scope.fresh_models else []
        )
        for m in scope.models
    }


def fresh_state(
    prefix: str,
    schema: Schema,
    scope: Scope,
    *,
    with_order: bool,
) -> StateBundle:
    universe = universe_of(scope)
    state = GroundState(prefix)
    axioms: list[T.Term] = []
    domains: dict[str, list] = {}

    for mname in sorted(scope.models):
        model = schema.model(mname)
        refs = universe[mname]
        state.ids[mname] = {}
        state.data[mname] = {}
        state.order[mname] = {} if with_order else None
        for r in refs:
            id_var = T.var(f"{prefix}.{mname}.ids[{r}]", T.BOOL)
            state.ids[mname][r] = id_var
            domains[id_var.name] = [True, False]
            row: dict[str, T.Term] = {}
            for fschema in model.fields:
                if fschema.name == model.pk:
                    # Well-formedness axiom data[r].pk == r, structurally.
                    row[fschema.name] = T.const(r)
                    continue
                fvar = T.var(
                    f"{prefix}.{mname}.data[{r}].{fschema.name}",
                    term_sort(fschema.type),
                )
                row[fschema.name] = fvar
                domain = list(scope.field_domains.get((mname, fschema.name),
                                                      [None]))
                domains[fvar.name] = domain
            state.data[mname][r] = row
            if with_order:
                ovar = T.var(f"{prefix}.{mname}.order[{r}]", T.INT)
                state.order[mname][r] = ovar
                domains[ovar.name] = list(range(len(refs) + 2))
        # Unique-field axioms between distinct present rows.
        for fschema in model.fields:
            if not fschema.unique or fschema.name == model.pk:
                continue
            for r1, r2 in itertools.combinations(refs, 2):
                both = T.and_(state.ids[mname][r1], state.ids[mname][r2])
                v1 = state.data[mname][r1][fschema.name]
                v2 = state.data[mname][r2][fschema.name]
                axioms.append(T.implies(
                    T.and_(both, T.not_(T.is_null(v1))), T.ne(v1, v2)
                ))
        for group in model.unique_together:
            for r1, r2 in itertools.combinations(refs, 2):
                both = T.and_(state.ids[mname][r1], state.ids[mname][r2])
                same = T.and_(*(
                    T.eq(state.data[mname][r1][f], state.data[mname][r2][f])
                    for f in group
                ))
                axioms.append(T.implies(both, T.not_(same)))
        if with_order:
            # Order numbers are unique among present rows (§5.2).
            for r1, r2 in itertools.combinations(refs, 2):
                both = T.and_(state.ids[mname][r1], state.ids[mname][r2])
                axioms.append(T.implies(
                    both,
                    T.ne(state.order[mname][r1], state.order[mname][r2]),
                ))

    for rname in sorted(scope.relations):
        rel = schema.relation(rname)
        if rel.source not in scope.models or rel.target not in scope.models:
            continue
        srcs = universe[rel.source]
        dsts = universe[rel.target]
        state.assocs[rname] = {}
        for s in srcs:
            for d in dsts:
                avar = T.var(f"{prefix}.{rname}[{s},{d}]", T.BOOL)
                state.assocs[rname][(s, d)] = avar
                domains[avar.name] = [True, False]
                # No dangling associations in a valid state.
                axioms.append(T.implies(
                    avar,
                    T.and_(state.ids[rel.source][s], state.ids[rel.target][d]),
                ))
        if rel.kind == "fk":
            for s in srcs:
                # Functional: at most one target per source.
                for d1, d2 in itertools.combinations(dsts, 2):
                    axioms.append(T.not_(T.and_(
                        state.assocs[rname][(s, d1)],
                        state.assocs[rname][(s, d2)],
                    )))
                if not rel.nullable:
                    axioms.append(T.implies(
                        state.ids[rel.source][s],
                        T.or_(*(state.assocs[rname][(s, d)] for d in dsts)),
                    ))
    return StateBundle(state, axioms, domains)


# ---------------------------------------------------------------------------
# Symbolic values
# ---------------------------------------------------------------------------


@dataclass
class ObjV:
    """A symbolic object: per-field terms (pk included)."""

    model: str
    fields: dict[str, T.Term]

    def replace(self, name: str, value: T.Term) -> "ObjV":
        fields = dict(self.fields)
        fields[name] = value
        return ObjV(self.model, fields)


@dataclass
class SetV:
    """A symbolic query set: membership / data / optional order, per
    universe element."""

    model: str
    member: dict[object, T.Term]
    data: dict[object, dict[str, T.Term]]
    #: sort-key levels, outermost first — each ``({ref: key term}, desc)``.
    #: A stable re-sort keeps the previous arrangement among ties, so an
    #: ``OrderBy`` *prepends* its key and the old levels become the
    #: tie-break; the final, implicit level is the state's base order,
    #: whose values are axiomatically distinct (no further ties possible).
    #: Descending order is a per-level comparison-direction flag rather
    #: than key negation — negation is meaningless for string/NULL keys,
    #: while flipping the comparison direction works for every sort.
    order_levels: tuple[tuple[dict, bool], ...] = ()
    #: the base (insertion) order tie-break runs reversed.
    base_desc: bool = False


# ---------------------------------------------------------------------------
# The encoder
# ---------------------------------------------------------------------------


class Encoder:
    """Symbolically executes one SOIR path over a ground state."""

    def __init__(
        self,
        schema: Schema,
        scope: Scope,
        state: GroundState,
        env: dict[str, T.Term],
        *,
        mode: str = "run",
        uses_order: bool = False,
    ):
        self.schema = schema
        self.scope = scope
        self.universe = universe_of(scope)
        self.state = state
        self.env = env
        self.mode = mode
        self.uses_order = uses_order
        self.pre: list[T.Term] = []
        self._fresh = itertools.count()
        #: extra variables created during encoding (opaque orders, aggregates)
        self.extra_domains: dict[str, list] = {}

    # -- helpers ---------------------------------------------------------

    def fresh_var(self, hint: str, sort: str) -> T.Var:
        return T.var(f"{self.state.prefix}!{hint}{next(self._fresh)}", sort)

    def _declare(self, var: T.Var, domain: list) -> None:
        self.extra_domains[var.name] = domain

    def member_term(self, model: str, ref: T.Term) -> T.Term:
        """Whether the object named by ``ref`` exists in the state."""
        return T.or_(*(
            T.and_(T.eq(ref, T.const(r)), self.state.ids[model][r])
            for r in self.universe[model]
        ))

    def _base_order(self, model: str) -> dict[object, T.Term]:
        """Base (insertion) order terms — axiomatically distinct among
        alive rows, or the universe position when never materialized."""
        model_order = self.state.order.get(model)
        if model_order:
            return model_order
        return {r: T.const(i) for i, r in enumerate(self.universe[model])}

    @staticmethod
    def _key_lt(a: T.Term, b: T.Term) -> T.Term:
        """Strict sort-key comparison, NULLs first (the interpreter sorts
        by ``(v is not None, v)``)."""
        a_null, b_null = T.is_null(a), T.is_null(b)
        return T.or_(
            T.and_(a_null, T.not_(b_null)),
            T.and_(T.not_(a_null), T.not_(b_null), T.lt(a, b)),
        )

    def _before(self, setv: SetV, r, r2) -> T.Term:
        """Does ``r`` precede ``r2`` in the set's sequence order?
        Lexicographic over the key levels, tie-broken by base order —
        a total order, so for a non-empty set a strict minimum always
        exists (strict single-key comparison would leave tied rows with
        no minimum and the selection ITE falling into its default)."""
        base = self._base_order(setv.model)
        term = (T.lt(base[r2], base[r]) if setv.base_desc
                else T.lt(base[r], base[r2]))
        for keys, desc in reversed(setv.order_levels):
            lt = (self._key_lt(keys[r2], keys[r]) if desc
                  else self._key_lt(keys[r], keys[r2]))
            term = T.or_(lt, T.and_(T.eq(keys[r], keys[r2]), term))
        return term

    def _select(self, setv: SetV, *, smallest: bool) -> ObjV:
        """The minimal/maximal-order member, as ITE chains; in run mode the
        non-emptiness obligation joins the precondition."""
        refs = list(self.universe[setv.model])
        if self.mode == "run":
            self.pre.append(T.or_(*(setv.member[r] for r in refs)))
        conds: dict[object, T.Term] = {}
        for r in refs:
            others = []
            for r2 in refs:
                if r2 == r:
                    continue
                cmp_term = (
                    self._before(setv, r, r2) if smallest
                    else self._before(setv, r2, r)
                )
                others.append(T.or_(T.not_(setv.member[r2]), cmp_term))
            conds[r] = T.and_(setv.member[r], *others)
        model = self.schema.model(setv.model)
        fields: dict[str, T.Term] = {}
        for fschema in model.fields:
            # Fall-through default: the last universe element's value
            # (unreachable when the set is non-empty and orders distinct).
            acc = setv.data[refs[-1]][fschema.name]
            for r in refs[:-1]:
                acc = T.ite(conds[r], setv.data[r][fschema.name], acc)
            fields[fschema.name] = acc
        return ObjV(setv.model, fields)

    # -- expressions -----------------------------------------------------

    def eval(self, e: E.Expr):
        method = getattr(self, f"_eval_{type(e).__name__}", None)
        if method is None:
            raise EncodingUnsupported(type(e).__name__)
        return method(e)

    def _eval_Lit(self, e: E.Lit):
        if isinstance(e.value, (list, tuple)):
            return tuple(e.value)  # IN-lists stay concrete
        return T.const(e.value)

    def _eval_NoneLit(self, e: E.NoneLit):
        return T.null(term_sort(e.none_type))

    def _eval_Var(self, e: E.Var):
        try:
            return self.env[e.name]
        except KeyError:
            raise EncodingUnsupported(f"unbound {e.name}") from None

    def _eval_Opaque(self, e: E.Opaque):
        try:
            return self.env[e.name]
        except KeyError:
            raise EncodingUnsupported(f"unpinned opaque {e.name}") from None

    def _eval_BinOp(self, e: E.BinOp):
        left, right = self.eval(e.left), self.eval(e.right)
        ops = {"+": T.add, "-": T.sub, "*": T.mul, "concat": T.concat}
        if e.op not in ops:
            raise EncodingUnsupported(f"operator {e.op}")
        return ops[e.op](left, right)

    def _eval_Neg(self, e: E.Neg):
        return T.neg(self.eval(e.operand))

    def _eval_Cmp(self, e: E.Cmp):
        left, right = self.eval(e.left), self.eval(e.right)
        return compare_terms(e.op, left, right)

    def _eval_Not(self, e: E.Not):
        return T.not_(self.eval(e.operand))

    def _eval_And(self, e: E.And):
        return T.and_(*(self.eval(a) for a in e.args))

    def _eval_Or(self, e: E.Or):
        return T.or_(*(self.eval(a) for a in e.args))

    def _eval_Ite(self, e: E.Ite):
        return T.ite(self.eval(e.cond), self.eval(e.then_), self.eval(e.else_))

    def _eval_FieldGet(self, e: E.FieldGet):
        obj = self.eval(e.obj)
        return obj.fields[e.field]

    def _eval_SetField(self, e: E.SetField):
        return self.eval(e.obj).replace(e.field, self.eval(e.value))

    def _eval_MakeObj(self, e: E.MakeObj):
        return ObjV(e.model, {n: self.eval(v) for n, v in e.fields})

    def _eval_MapSet(self, e: E.MapSet):
        setv = self.eval(e.qs)
        value = self.eval(e.value)
        data = {r: {**fs, e.field: value} for r, fs in setv.data.items()}
        return SetV(setv.model, dict(setv.member), data, setv.order_levels,
                    setv.base_desc)

    def _eval_Singleton(self, e: E.Singleton):
        obj = self.eval(e.obj)
        model = self.schema.model(obj.model)
        ref = obj.fields[model.pk]
        member = {
            r: T.eq(ref, T.const(r)) for r in self.universe[obj.model]
        }
        data = {r: dict(obj.fields) for r in self.universe[obj.model]}
        # pk column stays structurally correct per universe slot.
        for r in data:
            data[r][model.pk] = T.const(r)
        return SetV(obj.model, member, data)

    def _eval_Deref(self, e: E.Deref):
        ref = self.eval(e.ref)
        if self.mode == "run":
            self.pre.append(self.member_term(e.model, ref))
        model = self.schema.model(e.model)
        refs = self.universe[e.model]
        fields: dict[str, T.Term] = {}
        for fschema in model.fields:
            if fschema.name == model.pk:
                fields[fschema.name] = ref
                continue
            acc = self.state.data[e.model][refs[-1]][fschema.name]
            for r in refs[:-1]:
                acc = T.ite(T.eq(ref, T.const(r)),
                            self.state.data[e.model][r][fschema.name], acc)
            fields[fschema.name] = acc
        return ObjV(e.model, fields)

    def _eval_RefOf(self, e: E.RefOf):
        obj = self.eval(e.obj)
        return obj.fields[self.schema.model(obj.model).pk]

    def _eval_AnyOf(self, e: E.AnyOf):
        return self._select(self.eval(e.qs), smallest=True)

    def _eval_FirstOf(self, e: E.FirstOf):
        return self._select(self.eval(e.qs), smallest=True)

    def _eval_LastOf(self, e: E.LastOf):
        return self._select(self.eval(e.qs), smallest=False)

    def _eval_All(self, e: E.All):
        return SetV(
            e.model,
            dict(self.state.ids[e.model]),
            {r: dict(fs) for r, fs in self.state.data[e.model].items()},
        )

    def _eval_Filter(self, e: E.Filter):
        setv = self.eval(e.qs)
        value = self.eval(e.value)
        member = {}
        for r in self.universe[setv.model]:
            matches = self._match_through(
                setv.model, r, e.relpath, e.field, e.op, value
            )
            member[r] = T.and_(setv.member[r], matches)
        return SetV(setv.model, member, setv.data, setv.order_levels,
                    setv.base_desc)

    def _match_through(self, model, r, relpath, fieldname, op, value):
        """Does object ``r`` (of ``model``), through ``relpath``, reach an
        object whose ``fieldname`` satisfies ``op value``?"""
        if not relpath:
            row = self.state.data[model][r] if fieldname != \
                self.schema.model(model).pk else None
            term = (T.const(r) if fieldname == self.schema.model(model).pk
                    else self.state.data[model][r][fieldname])
            if op == Comparator.ISNULL:
                cond = T.is_null(term)
                want_null = bool(value.value) if isinstance(value, T.Const) else True
                return cond if want_null else T.not_(cond)
            return compare_terms(op, term, value)
        hop, rest = relpath[0], relpath[1:]
        rel = self.schema.relation(hop.relation)
        if hop.direction == Direction.FORWARD:
            next_model = rel.target
            pair = lambda r2: (r, r2)  # noqa: E731
        else:
            next_model = rel.source
            pair = lambda r2: (r2, r)  # noqa: E731
        assoc = self.state.assocs[hop.relation]
        reached = []
        for r2 in self.universe[next_model]:
            linked = assoc.get(pair(r2), T.FALSE)
            reached.append(T.and_(
                linked,
                self._match_through(next_model, r2, rest, fieldname, op, value),
            ))
        if op == Comparator.ISNULL:
            want_null = bool(value.value) if isinstance(value, T.Const) else True
            has = []
            for r2 in self.universe[next_model]:
                linked = assoc.get(pair(r2), T.FALSE)
                non_null = T.not_(T.is_null(
                    T.const(r2) if fieldname == self.schema.model(next_model).pk
                    else self.state.data[next_model][r2][fieldname]
                )) if not rest else self._match_through(
                    next_model, r2, rest, fieldname, op, value)
                has.append(T.and_(linked, non_null))
            present = T.or_(*has)
            return T.not_(present) if want_null else present
        return T.or_(*reached)

    def _eval_Follow(self, e: E.Follow):
        setv = self.eval(e.qs)
        current = setv.member
        current_model = setv.model
        for hop in e.relpath:
            rel = self.schema.relation(hop.relation)
            assoc = self.state.assocs[hop.relation]
            if hop.direction == Direction.FORWARD:
                next_model = rel.target
                linked = lambda a, b: assoc.get((a, b), T.FALSE)  # noqa: E731
            else:
                next_model = rel.source
                linked = lambda a, b: assoc.get((b, a), T.FALSE)  # noqa: E731
            new_member = {}
            for r2 in self.universe[next_model]:
                new_member[r2] = T.or_(*(
                    T.and_(current[r1], linked(r1, r2))
                    for r1 in self.universe[current_model]
                ))
            current = new_member
            current_model = next_model
        return SetV(
            current_model,
            current,
            {r: dict(fs) for r, fs in self.state.data[current_model].items()},
        )

    def _eval_OrderBy(self, e: E.OrderBy):
        from ..soir.types import Order

        setv = self.eval(e.qs)
        keys = {r: setv.data[r][e.field] for r in self.universe[setv.model]}
        # A stable sort: the new key leads, the old arrangement breaks ties.
        levels = ((keys, e.order == Order.DESC), *setv.order_levels)
        return SetV(setv.model, setv.member, setv.data, levels,
                    setv.base_desc)

    def _eval_ReverseSet(self, e: E.ReverseSet):
        setv = self.eval(e.qs)
        # order'[x] = -order[x] (paper §4.2), realized by flipping every
        # comparison direction so non-numeric sort keys work too.
        levels = tuple((keys, not desc) for keys, desc in setv.order_levels)
        return SetV(setv.model, setv.member, setv.data, levels,
                    not setv.base_desc)

    def _eval_Aggregate(self, e: E.Aggregate):
        setv = self.eval(e.qs)
        zero = T.const(0)
        if e.agg == Aggregation.CNT:
            acc = zero
            for r in self.universe[setv.model]:
                acc = T.add(acc, T.ite(setv.member[r], T.const(1), zero))
            return acc
        if e.agg == Aggregation.SUM:
            acc = zero
            present = []
            for r in self.universe[setv.model]:
                value = setv.data[r][e.field]
                counted = T.and_(setv.member[r],
                                 T.not_(T.is_null(value)))
                present.append(counted)
                acc = T.add(acc, T.ite(counted, value, zero))
            # SQL semantics (mirrored by the interpreter): SUM over no
            # non-NULL values is NULL, not 0 — downstream comparisons
            # with NULL are then uniformly false.
            return T.ite(T.or_(*present), acc,
                         T.null(term_sort(e.result_type)))
        # max/min/avg: an unconstrained value (over-approximation; the
        # paper notes Z3 cannot handle averages either, §3.3).
        fresh = self.fresh_var(f"agg_{e.agg.value}_", term_sort(e.result_type))
        self._declare(fresh, self.scope.type_domains.get(
            e.result_type, [0, 1]))
        return fresh

    def _eval_IsEmpty(self, e: E.IsEmpty):
        setv = self.eval(e.qs)
        return T.not_(T.or_(*setv.member.values()))

    def _eval_Exists(self, e: E.Exists):
        return self.member_term(e.model, self.eval(e.ref))

    def _eval_MemberOf(self, e: E.MemberOf):
        obj = self.eval(e.obj)
        setv = self.eval(e.qs)
        pk = self.schema.model(setv.model).pk
        ref = obj.fields[pk]
        return T.or_(*(
            T.and_(T.eq(ref, T.const(r)), setv.member[r])
            for r in self.universe[setv.model]
        ))

    # -- commands ---------------------------------------------------------

    def exec_path(self, path: CodePath) -> None:
        for cmd in path.commands:
            self.exec(cmd)

    def exec(self, cmd: C.Command) -> None:
        if isinstance(cmd, C.Guard):
            if self.mode == "run":
                self.pre.append(self.eval(cmd.cond))
            return
        method = getattr(self, f"_exec_{type(cmd).__name__}", None)
        if method is None:
            raise EncodingUnsupported(type(cmd).__name__)
        method(cmd)

    def _exec_Update(self, cmd: C.Update) -> None:
        setv = self.eval(cmd.qs)
        model = setv.model
        ids = self.state.ids[model]
        data = self.state.data[model]
        order = self.state.order.get(model)
        if self.mode == "run":
            # ``merge_objects`` aborts when a merged object's unique field
            # collides with a *different* pre-merge row or with another
            # object of the same merge (interp ``_check_unique``) — in run
            # mode that abort is part of ``g_P``.
            self._unique_preconditions(model, setv)
        for r in self.universe[model]:
            merged = setv.member[r]
            if order is not None:
                # New rows get an opaque, unknown order (paper §4.2).
                fresh = self.fresh_var(f"order_{model}_{r}_", T.INT)
                self._declare(fresh, list(range(len(self.universe[model]) + 2)))
                order[r] = T.ite(
                    T.and_(merged, T.not_(ids[r])), fresh, order[r]
                )
            for fname in data[r]:
                if fname == self.schema.model(model).pk:
                    continue
                data[r][fname] = T.ite(merged, setv.data[r][fname],
                                       data[r][fname])
            ids[r] = T.or_(ids[r], merged)

    def _unique_preconditions(self, model: str, setv) -> None:
        """Preconditions mirroring the interpreter's merge-time unique
        checks: each merged object, against the pre-merge table and
        against the rest of the merge batch."""
        mschema = self.schema.model(model)
        ids = self.state.ids[model]
        data = self.state.data[model]
        univ = self.universe[model]
        unique_fields = [
            f.name for f in mschema.fields
            if f.unique and f.name != mschema.pk
        ]
        groups = list(mschema.unique_together)
        if not unique_fields and not groups:
            return
        for r1 in univ:
            merged1 = setv.member[r1]
            for fname in unique_fields:
                new_v = setv.data[r1][fname]
                clash = T.or_(*(
                    T.and_(ids[r2], T.eq(new_v, data[r2][fname]))
                    for r2 in univ if r2 != r1
                ))
                batch = T.or_(*(
                    T.and_(setv.member[r2], T.eq(new_v, setv.data[r2][fname]))
                    for r2 in univ if r2 != r1
                ))
                self.pre.append(T.not_(T.and_(
                    merged1,
                    T.not_(T.is_null(new_v)),
                    T.or_(clash, batch),
                )))
            for group in groups:
                for r2 in univ:
                    if r2 == r1:
                        continue
                    same = T.and_(*(
                        T.eq(setv.data[r1][g], data[r2][g]) for g in group
                    ))
                    self.pre.append(
                        T.not_(T.and_(merged1, ids[r2], same))
                    )

    def _exec_Delete(self, cmd: C.Delete) -> None:
        setv = self.eval(cmd.qs)
        deleted: dict[str, dict[object, T.Term]] = {
            setv.model: dict(setv.member)
        }
        # Bounded cascade fixpoint over the schema graph.
        for _ in range(len(self.scope.models)):
            changed = False
            for rname in self.state.assocs:
                rel = self.schema.relation(rname)
                if rel.kind != "fk" or rel.on_delete != "cascade":
                    continue
                tgt = deleted.get(rel.target)
                if not tgt:
                    continue
                src_del = deleted.setdefault(
                    rel.source,
                    {r: T.FALSE for r in self.universe[rel.source]},
                )
                for s in self.universe[rel.source]:
                    extra = T.or_(*(
                        T.and_(self.state.assocs[rname][(s, d)], tgt[d])
                        for d in self.universe[rel.target]
                    ))
                    combined = T.or_(src_del[s], extra)
                    if combined != src_del[s]:
                        src_del[s] = combined
                        changed = True
            if not changed:
                break
        # Referential actions on associations.
        for rname in self.state.assocs:
            rel = self.schema.relation(rname)
            assoc = self.state.assocs[rname]
            tgt_del = deleted.get(rel.target)
            src_del = deleted.get(rel.source)
            for (s, d), present in list(assoc.items()):
                keep = present
                if tgt_del is not None:
                    if rel.on_delete == "protect":
                        if self.mode == "run":
                            self.pre.append(T.not_(T.and_(present, tgt_del[d])))
                        # apply mode: dangling association survives
                    else:
                        keep = T.and_(keep, T.not_(tgt_del[d]))
                if src_del is not None:
                    keep = T.and_(keep, T.not_(src_del[s]))
                assoc[(s, d)] = keep
        for mname, dels in deleted.items():
            for r in self.universe[mname]:
                self.state.ids[mname][r] = T.and_(
                    self.state.ids[mname][r], T.not_(dels[r])
                )

    def _ref_of(self, obj: ObjV) -> T.Term:
        return obj.fields[self.schema.model(obj.model).pk]

    def _exec_Link(self, cmd: C.Link) -> None:
        rel = self.schema.relation(cmd.relation)
        src = self.eval(cmd.src)
        dst = self.eval(cmd.dst)
        self._link(rel, cmd.relation, self._ref_of(src), self._ref_of(dst))

    def _link(self, rel, rname: str, src_ref: T.Term, dst_ref: T.Term) -> None:
        assoc = self.state.assocs[rname]
        for (s, d), present in list(assoc.items()):
            is_src = T.eq(src_ref, T.const(s))
            is_pair = T.and_(is_src, T.eq(dst_ref, T.const(d)))
            if rel.kind == "fk":
                # fk: the new association replaces the source's old one.
                assoc[(s, d)] = T.or_(is_pair, T.and_(present, T.not_(is_src)))
            else:
                assoc[(s, d)] = T.or_(present, is_pair)

    def _exec_Delink(self, cmd: C.Delink) -> None:
        rel = self.schema.relation(cmd.relation)
        src_ref = self._ref_of(self.eval(cmd.src))
        dst_ref = self._ref_of(self.eval(cmd.dst))
        assoc = self.state.assocs[cmd.relation]
        for (s, d), present in list(assoc.items()):
            is_pair = T.and_(T.eq(src_ref, T.const(s)),
                             T.eq(dst_ref, T.const(d)))
            assoc[(s, d)] = T.and_(present, T.not_(is_pair))

    def _exec_RLink(self, cmd: C.RLink) -> None:
        rel = self.schema.relation(cmd.relation)
        setv = self.eval(cmd.srcs)
        dst_ref = self._ref_of(self.eval(cmd.dst))
        assoc = self.state.assocs[cmd.relation]
        for (s, d), present in list(assoc.items()):
            in_set = setv.member[s]
            is_dst = T.eq(dst_ref, T.const(d))
            linked = T.and_(in_set, is_dst)
            if rel.kind == "fk":
                assoc[(s, d)] = T.or_(
                    linked, T.and_(present, T.not_(in_set))
                )
            else:
                assoc[(s, d)] = T.or_(present, linked)

    def _exec_ClearLinks(self, cmd: C.ClearLinks) -> None:
        rel = self.schema.relation(cmd.relation)
        obj = self.eval(cmd.obj)
        ref = self._ref_of(obj)
        assoc = self.state.assocs[cmd.relation]
        for (s, d), present in list(assoc.items()):
            hit = T.eq(ref, T.const(s if cmd.end == "source" else d))
            assoc[(s, d)] = T.and_(present, T.not_(hit))


def compare_terms(op: Comparator, left, right) -> T.Term:
    if op == Comparator.EQ:
        return T.eq(left, right)
    if op == Comparator.NE:
        return T.ne(left, right)
    if op == Comparator.LT:
        return T.lt(left, right)
    if op == Comparator.LE:
        return T.le(left, right)
    if op == Comparator.GT:
        return T.gt(left, right)
    if op == Comparator.GE:
        return T.ge(left, right)
    if op == Comparator.CONTAINS:
        return T.contains(left, right)
    if op == Comparator.STARTSWITH:
        return T.startswith(left, right)
    if op == Comparator.IN:
        values = right if isinstance(right, tuple) else (right,)
        return T.in_list(left, values)
    if op == Comparator.ISNULL:
        cond = T.is_null(left)
        want_null = bool(right.value) if isinstance(right, T.Const) else True
        return cond if want_null else T.not_(cond)
    raise EncodingUnsupported(f"comparator {op}")


def states_equal_parts(
    a: GroundState, b: GroundState, schema: Schema, scope: Scope
) -> list[T.Term]:
    """Pointwise equality of two encoded states, one term per state
    component (order excluded, like the enumerative engine: merged-in
    order is opaque).  Components untouched by either execution are
    *structurally identical* terms and fold to ``True`` — only genuinely
    written components survive, which lets the commutativity check issue
    one small solver query per touched component."""
    parts: list[T.Term] = []
    universe = universe_of(scope)
    for mname in sorted(scope.models):
        model = schema.model(mname)
        for r in universe[mname]:
            ida, idb = a.ids[mname][r], b.ids[mname][r]
            parts.append(T.eq(ida, idb))
            for fschema in model.fields:
                if fschema.name == model.pk:
                    continue
                parts.append(T.implies(
                    ida,
                    T.eq(a.data[mname][r][fschema.name],
                         b.data[mname][r][fschema.name]),
                ))
    for rname in sorted(scope.relations):
        for pair in a.assocs[rname]:
            parts.append(T.eq(a.assocs[rname][pair], b.assocs[rname][pair]))
    return [p for p in parts if p != T.TRUE]


def states_equal(
    a: GroundState, b: GroundState, schema: Schema, scope: Scope
) -> T.Term:
    return T.and_(*states_equal_parts(a, b, schema, scope))
