"""The symbolic verification engine: checks as solver queries.

Mirrors the paper's VERIFIER (§5.2): for a pair of SOIR paths, the
checking rule is instantiated as a *counterexample query* over encoded
states — no quantified formula ever reaches the solver; ``S + P(x)`` is
computed by symbolic execution and the values plugged in.

* **Commutativity** (rule 1): fresh state ``S0`` (axioms asserted), fresh
  feasibility states ``S_P``/``S_Q`` on which each operation's
  precondition must hold (the paper's "asserting its precondition to be
  true on another fresh system state"), the two application orders
  executed over copies of ``S0`` in replication mode; ask the solver for a
  model where the results differ.
* **Semantic** (rule 2): one state ``S``; assert ``g_P(x,S) ∧ g_Q(y,S)``;
  compute ``S + Q(y)``; ask for a model where ``g_P(x, S+Q(y))`` fails
  (and symmetrically).

The unique-ID optimisation asserts ``distinct`` over fresh-ID arguments
(§5.2); the order component is materialized per ``CheckConfig.order_enabled``
and the decoupling rule (only when a path of the pair uses order).
"""

from __future__ import annotations

import time

from ..smt import terms as T
from ..smt.solver import Solver, SolverError, SolverTimeout
from ..soir.path import CodePath
from ..soir.schema import Schema
from .encoding import (
    Encoder,
    EncodingUnsupported,
    StateBundle,
    fresh_state,
    states_equal_parts,
    term_sort,
)
from .enumcheck import CheckConfig
from .restrictions import CheckResult, Counterexample, Outcome
from .scopes import (
    Scope,
    arg_domain,
    build_scope,
    collect_args,
    fresh_pool_for,
)


class SmtPairChecker:
    """Solver-backed counterpart of :class:`PairChecker`."""

    def __init__(
        self,
        p: CodePath,
        q: CodePath,
        schema: Schema,
        config: CheckConfig | None = None,
        scope: Scope | None = None,
    ):
        self.p = p
        self.q = q
        self.schema = schema
        self.config = config or CheckConfig()
        self.scope = scope or build_scope(
            schema, [p, q], ids_per_model=self.config.ids_per_model
        )
        self.with_order = self.config.order_enabled and (
            p.uses_order() or q.uses_order()
        )

    # ------------------------------------------------------------------

    def _arg_terms(
        self, path: CodePath, suffix: str, solver: Solver,
        fresh_taken: list,
    ) -> dict[str, T.Term]:
        env: dict[str, T.Term] = {}
        for arg in collect_args(path):
            if arg.unique_id and self.config.unique_ids:
                # Pin each fresh ID to its own constant: `distinct(...)`.
                pool = fresh_pool_for(arg.type)
                value = next(v for v in pool if v not in fresh_taken)
                fresh_taken.append(value)
                env[arg.name] = T.const(value)
                continue
            var = T.var(f"arg{suffix}.{arg.name}", term_sort(arg.type))
            env[arg.name] = var
            if arg.unique_id:
                solver.declare(var.name, fresh_pool_for(arg.type)[:2])
            else:
                # Same per-argument domain the enum checker searches
                # (lean id domains for pure references, boundary values
                # for arithmetic) — the engines must disagree only on
                # reasoning power, never on the space they quantify over.
                domain = arg_domain(arg, self.scope)
                if arg.type in self.scope.fresh_arg_types:
                    # With unique-ID pinning, each fresh argument occupies
                    # its own pool constant — a plain argument must be able
                    # to collide with *any* of them, not just the first
                    # (a client may name an ID either operation is minting);
                    # ``arg_domain`` already appended the first.
                    n_fresh = sum(
                        1 for p in (self.p, self.q)
                        for a in collect_args(p)
                        if a.unique_id and a.type == arg.type
                    )
                    domain += [
                        v for v in fresh_pool_for(arg.type)[:max(1, n_fresh)]
                        if v not in domain
                    ]
                solver.declare(var.name, domain)
        return env

    def _install(self, solver: Solver, bundle: StateBundle) -> None:
        for name, domain in bundle.domains.items():
            solver.declare(name, domain)
        for axiom in bundle.axioms:
            solver.add(axiom)

    def _assert_fresh_absent(self, solver: Solver, bundle: StateBundle) -> None:
        """The storage tier mints globally-fresh IDs (§5.2): a row whose
        id this pair is about to mint cannot pre-exist in the shared
        initial state.  Without this, the solver fabricates initial
        states containing the "fresh" row — e.g. pre-linked into an
        association — and reports divergences no execution can reach.
        Feasibility states stay unconstrained: a *plain* argument may
        name a fresh ID another site has already materialized (§6.2)."""
        for mname in sorted(self.scope.models):
            ids = bundle.state.ids[mname]
            for v in self.scope.fresh_ids.get(mname, []):
                if v in ids:
                    solver.add(T.not_(ids[v]))

    def _encode_run(
        self, path: CodePath, bundle_state, env, solver: Solver
    ) -> Encoder:
        encoder = Encoder(
            self.schema, self.scope, bundle_state, env,
            mode="run", uses_order=self.with_order,
        )
        encoder.exec_path(path)
        for name, domain in encoder.extra_domains.items():
            solver.declare(name, domain)
        return encoder

    # ------------------------------------------------------------------

    def check_commutativity(self) -> CheckResult:
        start = time.perf_counter()
        try:
            solver = Solver()
            s0 = fresh_state("S0", self.schema, self.scope,
                             with_order=self.with_order)
            sp = fresh_state("SP", self.schema, self.scope,
                             with_order=self.with_order)
            sq = fresh_state("SQ", self.schema, self.scope,
                             with_order=self.with_order)
            for bundle in (s0, sp, sq):
                self._install(solver, bundle)
            self._assert_fresh_absent(solver, s0)
            fresh_taken: list = []
            env_p = self._arg_terms(self.p, "P", solver, fresh_taken)
            env_q = self._arg_terms(self.q, "Q", solver, fresh_taken)

            # Feasibility: preconditions hold on independent fresh states.
            pre_p = self._encode_run(self.p, sp.state, env_p, solver).pre
            pre_q = self._encode_run(self.q, sq.state, env_q, solver).pre
            for g in pre_p + pre_q:
                solver.add(g)

            # Both application orders over S0.
            state_pq = s0.state.copy()
            enc1 = Encoder(self.schema, self.scope, state_pq, env_p,
                           mode="apply", uses_order=self.with_order)
            enc1.exec_path(self.p)
            enc1.env = env_q
            enc1.exec_path(self.q)
            state_qp = s0.state.copy()
            enc2 = Encoder(self.schema, self.scope, state_qp, env_q,
                           mode="apply", uses_order=self.with_order)
            enc2.exec_path(self.q)
            enc2.env = env_p
            enc2.exec_path(self.p)
            for enc in (enc1, enc2):
                for name, domain in enc.extra_domains.items():
                    solver.declare(name, domain)

            # One focused query per touched state component: components
            # untouched by both orders fold away structurally, and each
            # query prunes as soon as its component is forced equal.
            arg_priority = [
                t.name for t in (*env_p.values(), *env_q.values())
                if isinstance(t, T.Var)
            ]
            deadline = start + self.config.timeout_s
            model = None
            for part in states_equal_parts(
                state_pq, state_qp, self.schema, self.scope
            ):
                goal = T.not_(part)
                if goal == T.FALSE:
                    continue
                query = Solver()
                query.assertions = list(solver.assertions) + [goal]
                query.domains = solver.domains
                budget = deadline - time.perf_counter()
                if budget <= 0:
                    raise SolverTimeout()
                priority = arg_priority + sorted(goal.free_vars())
                model = query.check(timeout_s=budget, priority=priority)
                if model is not None:
                    break
        except EncodingUnsupported as exc:
            return CheckResult(
                self.p.name, self.q.name, "commutativity",
                Outcome.CONSERVATIVE, time.perf_counter() - start,
                detail=f"unencodable: {exc}",
            )
        except SolverTimeout:
            return CheckResult(
                self.p.name, self.q.name, "commutativity",
                Outcome.TIMEOUT, time.perf_counter() - start,
            )
        except (KeyError, TypeError, ValueError, RecursionError) as exc:
            # A broken internal invariant is a backend failure, not a
            # verdict: surface it as SolverError so the engine's failure
            # layer can retry on the enum backend instead of losing the
            # whole sweep to one pair.
            raise SolverError(f"smt internal error: {exc}") from exc
        elapsed = time.perf_counter() - start
        if model is None:
            return CheckResult(self.p.name, self.q.name, "commutativity",
                               Outcome.PASS, elapsed)
        return CheckResult(
            self.p.name, self.q.name, "commutativity", Outcome.FAIL, elapsed,
            witness=Counterexample(
                description="application orders diverge (symbolic model)",
                args_p=_model_args(model, "P"),
                args_q=_model_args(model, "Q"),
            ),
        )

    def check_semantic(self) -> CheckResult:
        start = time.perf_counter()
        try:
            first = self._not_invalidate(self.p, self.q, "P", "Q")
            if first.outcome != Outcome.PASS:
                return CheckResult(
                    self.p.name, self.q.name, "semantic", first.outcome,
                    time.perf_counter() - start, witness=first.witness,
                    detail=first.detail,
                )
            second = self._not_invalidate(self.q, self.p, "Q", "P")
            return CheckResult(
                self.p.name, self.q.name, "semantic", second.outcome,
                time.perf_counter() - start, witness=second.witness,
                detail=second.detail,
            )
        except EncodingUnsupported as exc:
            return CheckResult(
                self.p.name, self.q.name, "semantic", Outcome.CONSERVATIVE,
                time.perf_counter() - start, detail=f"unencodable: {exc}",
            )
        except SolverTimeout:
            return CheckResult(
                self.p.name, self.q.name, "semantic", Outcome.TIMEOUT,
                time.perf_counter() - start,
            )
        except (KeyError, TypeError, ValueError, RecursionError) as exc:
            raise SolverError(f"smt internal error: {exc}") from exc

    def _not_invalidate(self, p, q, sp_suffix, sq_suffix) -> CheckResult:
        """Search for ``g_p(x,S) ∧ g_q(y,S) ∧ ¬g_p(x, S+q(y))``."""
        solver = Solver()
        s0 = fresh_state("S", self.schema, self.scope,
                         with_order=self.with_order)
        self._install(solver, s0)
        self._assert_fresh_absent(solver, s0)
        fresh_taken: list = []
        env_p = self._arg_terms(p, sp_suffix, solver, fresh_taken)
        env_q = self._arg_terms(q, sq_suffix, solver, fresh_taken)

        # Run-mode execution applies effects too; encode g_p on a copy so
        # the shared state S stays pristine.
        for g in self._encode_run(p, s0.state.copy(), env_p, solver).pre:
            solver.add(g)
        # Run q with precondition AND effects on a copy -> S + q(y).
        after_q = s0.state.copy()
        enc_q = Encoder(self.schema, self.scope, after_q, env_q,
                        mode="run", uses_order=self.with_order)
        enc_q.exec_path(q)
        for name, domain in enc_q.extra_domains.items():
            solver.declare(name, domain)
        for g in enc_q.pre:
            solver.add(g)
        # p's precondition evaluated on the post state must fail.
        enc_p2 = Encoder(self.schema, self.scope, after_q.copy(), env_p,
                         mode="run", uses_order=self.with_order)
        enc_p2.exec_path(p)
        for name, domain in enc_p2.extra_domains.items():
            solver.declare(name, domain)
        solver.add(T.not_(T.and_(*enc_p2.pre)))

        priority = [t.name for t in (*env_p.values(), *env_q.values())
                    if isinstance(t, T.Var)]
        model = solver.check(
            timeout_s=self.config.timeout_s, priority=priority
        )
        if model is None:
            return CheckResult(p.name, q.name, "semantic", Outcome.PASS)
        return CheckResult(
            p.name, q.name, "semantic", Outcome.FAIL,
            witness=Counterexample(
                description=f"{q.name} invalidates {p.name} (symbolic model)",
                args_p=_model_args(model, sp_suffix),
                args_q=_model_args(model, sq_suffix),
            ),
        )


def _model_args(model, suffix: str) -> str:
    prefix = f"arg{suffix}."
    return repr({
        k[len(prefix):]: v
        for k, v in model.assignment.items()
        if k.startswith(prefix)
    })
