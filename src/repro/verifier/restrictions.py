"""Verification result types.

The verifier's output is a *restriction set*: the set of operation pairs
that must not run concurrently because their concurrent execution can
diverge state (commutativity failure) or invalidate a precondition
(semantic failure).  A PoR-consistent runtime coordinates exactly these
pairs (paper §2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Outcome(enum.Enum):
    PASS = "pass"
    FAIL = "fail"
    TIMEOUT = "timeout"  # treated as fail (restricted), conservatively
    CONSERVATIVE = "conservative"  # a path the analyzer could not translate

    @property
    def restricts(self) -> bool:
        return self is not Outcome.PASS


@dataclass(frozen=True)
class Counterexample:
    """A witness found by the model finder."""

    description: str
    state: str = ""
    args_p: str = ""
    args_q: str = ""


@dataclass
class CheckResult:
    """The result of one check (one rule on one pair)."""

    left: str
    right: str
    kind: str  # "commutativity" | "semantic"
    outcome: Outcome
    elapsed_s: float = 0.0
    witness: Counterexample | None = None
    detail: str = ""


@dataclass
class PairVerdict:
    """Combined verdict for one unordered pair of code paths."""

    left: str
    right: str
    commutativity: CheckResult | None = None
    semantic: CheckResult | None = None

    @property
    def restricted(self) -> bool:
        for check in (self.commutativity, self.semantic):
            if check is not None and check.outcome.restricts:
                return True
        return False


@dataclass
class VerificationReport:
    """Aggregate results for one application (the rows of Table 6)."""

    app_name: str
    verdicts: list[PairVerdict] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: wall-clock split by check kind (Figure 9's com/sem stacking)
    time_commutativity_s: float = 0.0
    time_semantic_s: float = 0.0

    @property
    def checks(self) -> int:
        """Number of verified pairs (the paper's '#Checks')."""
        return len(self.verdicts)

    @property
    def restrictions(self) -> list[PairVerdict]:
        return [v for v in self.verdicts if v.restricted]

    @property
    def commutativity_failures(self) -> list[PairVerdict]:
        return [
            v
            for v in self.verdicts
            if v.commutativity is not None and v.commutativity.outcome.restricts
        ]

    @property
    def semantic_failures(self) -> list[PairVerdict]:
        return [
            v
            for v in self.verdicts
            if v.semantic is not None and v.semantic.outcome.restricts
        ]

    def restriction_pairs(self) -> set[frozenset[str]]:
        """The restriction set over operation (code path) names."""
        return {frozenset((v.left, v.right)) for v in self.restrictions}

    def coordination_free_operations(self) -> set[str]:
        """Operations (code paths) never named by any restriction.

        These are the 'blue' operations in RedBlue terms (paper §7): a
        PoR runtime can accept and replicate them with no coordination at
        all, which is where the end-to-end speedup comes from."""
        everyone = {v.left for v in self.verdicts} | {
            v.right for v in self.verdicts
        }
        restricted = {
            name
            for v in self.restrictions
            for name in (v.left, v.right)
        }
        return everyone - restricted

    def to_json_obj(self) -> dict:
        """A deployment-facing artifact: the restriction set and per-check
        outcomes, consumable by a coordination service."""
        return {
            "app": self.app_name,
            "checks": self.checks,
            "restrictions": sorted(
                sorted(pair) for pair in self.restriction_pairs()
            ),
            "coordination_free": sorted(self.coordination_free_operations()),
            "verdicts": [
                {
                    "left": v.left,
                    "right": v.right,
                    "commutativity": v.commutativity.outcome.value
                    if v.commutativity else None,
                    "semantic": v.semantic.outcome.value
                    if v.semantic else None,
                }
                for v in self.verdicts
            ],
        }

    def summary(self) -> dict[str, object]:
        return {
            "app": self.app_name,
            "checks": self.checks,
            "restrictions": len(self.restrictions),
            "com_failures": len(self.commutativity_failures),
            "sem_failures": len(self.semantic_failures),
            "time_s": self.elapsed_s,
        }
