"""Verification result types.

The verifier's output is a *restriction set*: the set of operation pairs
that must not run concurrently because their concurrent execution can
diverge state (commutativity failure) or invalidate a precondition
(semantic failure).  A PoR-consistent runtime coordinates exactly these
pairs (paper §2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Outcome(enum.Enum):
    PASS = "pass"
    FAIL = "fail"
    TIMEOUT = "timeout"  # treated as fail (restricted), conservatively
    CONSERVATIVE = "conservative"  # a path the analyzer could not translate
    #: the engine could not produce a verdict at all (worker crash, blown
    #: deadline, persistent solver error) — restricted conservatively so
    #: the restriction set stays sound; never cached, always surfaced in
    #: EngineMetrics.unknowns and the report JSON
    UNKNOWN = "unknown"

    @property
    def restricts(self) -> bool:
        return self is not Outcome.PASS


@dataclass(frozen=True)
class Counterexample:
    """A witness found by the model finder.

    ``args_p``/``args_q`` are human-readable reprs; ``env_p``/``env_q``
    carry the same argument bindings as structured name→value dicts when
    the engine has them in concrete form (the enumerative checker always
    does; the symbolic engine's model reprs stay string-only).  Directed
    difftest harvests these to seed its mutation walk."""

    description: str
    state: str = ""
    args_p: str = ""
    args_q: str = ""
    env_p: dict | None = None
    env_q: dict | None = None


@dataclass
class CheckResult:
    """The result of one check (one rule on one pair)."""

    left: str
    right: str
    kind: str  # "commutativity" | "semantic"
    outcome: Outcome
    elapsed_s: float = 0.0
    witness: Counterexample | None = None
    detail: str = ""


@dataclass
class PairVerdict:
    """Combined verdict for one unordered pair of code paths."""

    left: str
    right: str
    commutativity: CheckResult | None = None
    semantic: CheckResult | None = None
    #: the view (HTTP endpoint) each code path belongs to.  Empty on
    #: verdicts deserialized from legacy reports, in which case consumers
    #: fall back to parsing the ``view[index]`` path-name convention.
    left_view: str = ""
    right_view: str = ""
    #: where this verdict came from when it was not solved directly for
    #: this pair: ``{"source": "shared", "class": ..., "representative":
    #: [left, right], "renaming": {...}}`` for a signature-class member,
    #: ``{"source": "pruned", "tag": ...}`` for the read/write
    #: disjointness fast path.  ``None`` for directly solved verdicts.
    provenance: dict | None = None

    @property
    def restricted(self) -> bool:
        for check in (self.commutativity, self.semantic):
            if check is not None and check.outcome.restricts:
                return True
        return False

    @property
    def unknown(self) -> bool:
        """True when the engine failed to decide this pair and degraded
        to the conservative ``Outcome.UNKNOWN`` verdict."""
        for check in (self.commutativity, self.semantic):
            if check is not None and check.outcome is Outcome.UNKNOWN:
                return True
        return False


# ---------------------------------------------------------------------------
# Verdict (de)serialization — used by the engine's result cache and by the
# deployment JSON artifact.  Round-trips exactly; legacy objects without
# view fields load with empty views.
# ---------------------------------------------------------------------------


def check_result_to_obj(result: CheckResult) -> dict:
    obj: dict = {
        "left": result.left,
        "right": result.right,
        "kind": result.kind,
        "outcome": result.outcome.value,
        "elapsed_s": result.elapsed_s,
        "detail": result.detail,
    }
    if result.witness is not None:
        obj["witness"] = {
            "description": result.witness.description,
            "state": result.witness.state,
            "args_p": result.witness.args_p,
            "args_q": result.witness.args_q,
            "env_p": result.witness.env_p,
            "env_q": result.witness.env_q,
        }
    return obj


def check_result_from_obj(obj: dict) -> CheckResult:
    witness = None
    if obj.get("witness") is not None:
        w = obj["witness"]
        witness = Counterexample(
            description=w.get("description", ""),
            state=w.get("state", ""),
            args_p=w.get("args_p", ""),
            args_q=w.get("args_q", ""),
            env_p=w.get("env_p"),
            env_q=w.get("env_q"),
        )
    return CheckResult(
        left=obj["left"],
        right=obj["right"],
        kind=obj["kind"],
        outcome=Outcome(obj["outcome"]),
        elapsed_s=obj.get("elapsed_s", 0.0),
        witness=witness,
        detail=obj.get("detail", ""),
    )


def verdict_to_obj(verdict: PairVerdict) -> dict:
    obj = {
        "left": verdict.left,
        "right": verdict.right,
        "left_view": verdict.left_view,
        "right_view": verdict.right_view,
        "commutativity": check_result_to_obj(verdict.commutativity)
        if verdict.commutativity else None,
        "semantic": check_result_to_obj(verdict.semantic)
        if verdict.semantic else None,
    }
    if verdict.provenance is not None:
        obj["provenance"] = verdict.provenance
    return obj


def verdict_from_obj(obj: dict) -> PairVerdict:
    return PairVerdict(
        left=obj["left"],
        right=obj["right"],
        commutativity=check_result_from_obj(obj["commutativity"])
        if obj.get("commutativity") else None,
        semantic=check_result_from_obj(obj["semantic"])
        if obj.get("semantic") else None,
        left_view=obj.get("left_view", ""),
        right_view=obj.get("right_view", ""),
        provenance=obj.get("provenance"),
    )


@dataclass
class VerificationReport:
    """Aggregate results for one application (the rows of Table 6)."""

    app_name: str
    verdicts: list[PairVerdict] = field(default_factory=list)
    #: wall clock of the whole sweep (what the user waited for)
    elapsed_s: float = 0.0
    #: aggregate per-pair solve time split by check kind (Figure 9's
    #: com/sem stacking).  Sums of each check's own elapsed time, so the
    #: split stays meaningful under parallel execution, where the wall
    #: clock is smaller than the work performed.
    time_commutativity_s: float = 0.0
    time_semantic_s: float = 0.0
    #: scheduler metrics (cache hits/misses, pruning counts, worker
    #: utilization, ...) when the sweep ran through ``repro.engine``
    metrics: dict = field(default_factory=dict)

    @property
    def time_solve_s(self) -> float:
        """Aggregate solver time across all pairs (≥ wall clock when
        serial, typically > wall clock when parallel)."""
        return self.time_commutativity_s + self.time_semantic_s

    @property
    def checks(self) -> int:
        """Number of verified pairs (the paper's '#Checks')."""
        return len(self.verdicts)

    @property
    def restrictions(self) -> list[PairVerdict]:
        return [v for v in self.verdicts if v.restricted]

    @property
    def unknown_verdicts(self) -> list[PairVerdict]:
        """Pairs the engine could not decide (restricted conservatively)."""
        return [v for v in self.verdicts if v.unknown]

    @property
    def commutativity_failures(self) -> list[PairVerdict]:
        return [
            v
            for v in self.verdicts
            if v.commutativity is not None and v.commutativity.outcome.restricts
        ]

    @property
    def semantic_failures(self) -> list[PairVerdict]:
        return [
            v
            for v in self.verdicts
            if v.semantic is not None and v.semantic.outcome.restricts
        ]

    def restriction_pairs(self) -> set[frozenset[str]]:
        """The restriction set over operation (code path) names."""
        return {frozenset((v.left, v.right)) for v in self.restrictions}

    def coordination_free_operations(self) -> set[str]:
        """Operations (code paths) never named by any restriction.

        These are the 'blue' operations in RedBlue terms (paper §7): a
        PoR runtime can accept and replicate them with no coordination at
        all, which is where the end-to-end speedup comes from."""
        everyone = {v.left for v in self.verdicts} | {
            v.right for v in self.verdicts
        }
        restricted = {
            name
            for v in self.restrictions
            for name in (v.left, v.right)
        }
        return everyone - restricted

    def to_json_obj(self) -> dict:
        """A deployment-facing artifact: the restriction set and per-check
        outcomes, consumable by a coordination service."""
        return {
            "app": self.app_name,
            "checks": self.checks,
            "restrictions": sorted(
                sorted(pair) for pair in self.restriction_pairs()
            ),
            "coordination_free": sorted(self.coordination_free_operations()),
            # Pairs restricted because the engine failed on them, not
            # because a witness was found: conservative, re-attempted on
            # the next sweep (never cached).
            "unknowns": sorted(
                sorted((v.left, v.right)) for v in self.unknown_verdicts
            ),
            "verdicts": [
                {
                    "left": v.left,
                    "right": v.right,
                    "left_view": v.left_view,
                    "right_view": v.right_view,
                    "status": "unknown" if v.unknown else "decided",
                    "commutativity": v.commutativity.outcome.value
                    if v.commutativity else None,
                    "semantic": v.semantic.outcome.value
                    if v.semantic else None,
                    # Per-pair solve timing.  Populated identically on the
                    # parallel and the serial(-fallback) code paths: the
                    # checkers stamp ``elapsed_s`` on each CheckResult and
                    # the worker protocol round-trips it verbatim, so the
                    # JSON artifact never loses the split on a fallback.
                    "commutativity_s": v.commutativity.elapsed_s
                    if v.commutativity else None,
                    "semantic_s": v.semantic.elapsed_s
                    if v.semantic else None,
                    # Shared/pruned verdicts say where they came from
                    # (signature class + representative + renaming, or
                    # the rw-disjointness prune tag).
                    **({"provenance": v.provenance}
                       if v.provenance is not None else {}),
                }
                for v in self.verdicts
            ],
            "timing": {
                "wall_s": self.elapsed_s,
                "solve_s": self.time_solve_s,
                "commutativity_s": self.time_commutativity_s,
                "semantic_s": self.time_semantic_s,
            },
            "metrics": self.metrics,
        }

    def summary(self) -> dict[str, object]:
        out: dict[str, object] = {
            "app": self.app_name,
            "checks": self.checks,
            "restrictions": len(self.restrictions),
            "com_failures": len(self.commutativity_failures),
            "sem_failures": len(self.semantic_failures),
            "time_s": self.elapsed_s,
            "solve_time_s": self.time_solve_s,
        }
        if self.unknown_verdicts:
            out["unknowns"] = len(self.unknown_verdicts)
        if self.metrics:
            for key in ("cache_hits", "cache_misses", "solver_calls"):
                if key in self.metrics:
                    out[key] = self.metrics[key]
        return out
