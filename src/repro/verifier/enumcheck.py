"""The bounded model finder: counterexample search for the checking rules.

Both checking rules (paper §2.2.1) are decided by searching the finite
scope for witnesses:

* **commutativity** — find ``S, x, y`` with both preconditions holding at
  ``S`` (the concurrent operations' common ancestor state) such that
  *applying* the two effects (replication semantics: guards skipped, an
  inapplicable effect no-ops) in the two orders diverges;
* **semantic** (``NotInvalidate(P, Q)``) — find ``S, x, y`` with
  ``g_P(x, S)`` and ``g_Q(y, S)`` but ``¬g_P(x, S + Q(y))``.

A found witness is a *real* counterexample (it is produced by the reference
interpreter, not an abstraction); absence of a witness within scope and
budget counts as a pass, mirroring the paper's use of the SMT solver as a
counterexample finder (§5.2).
"""

from __future__ import annotations

import dataclasses
import random
import time
import zlib
from dataclasses import dataclass
from typing import Iterator


from ..metrics.registry import inc as _metric_inc, observe as _metric_observe
from ..obs import tracer as obs
from ..soir.interp import apply_path, run_path
from ..soir.path import CodePath
from ..soir.schema import Schema
from ..soir.state import DBState
from .restrictions import CheckResult, Counterexample, Outcome
from .scopes import (
    Scope,
    StateGenerator,
    build_scope,
    collect_args,
    env_products,
    random_envs,
)


@dataclass
class CheckConfig:
    """Knobs of the bounded search."""

    ids_per_model: int = 2
    timeout_s: float = 2.0
    max_samples: int = 1200
    env_product_cap: int = 4096
    max_exhaustive: int = 30000
    #: the unique-ID optimisation (paper §5.2): storage-generated fresh IDs
    #: are globally distinct, so two inserts never collide on pk.
    unique_ids: bool = True
    #: order-aware encoding (paper §4.2).  When disabled, the verifier
    #: behaves like a classic order-less array encoding: any path using an
    #: order-related primitive cannot be verified and is restricted
    #: conservatively (the "unnecessary restrictions" of paper §2.2.2).
    order_enabled: bool = True
    seed: int = 0x5EED


class PairChecker:
    """Runs both checks for one pair of effectful code paths."""

    def __init__(
        self,
        p: CodePath,
        q: CodePath,
        schema: Schema,
        config: CheckConfig | None = None,
        scope: Scope | None = None,
    ):
        self.p = p
        self.q = q
        self.schema = schema
        self.config = config or CheckConfig()
        self.scope = scope or build_scope(
            schema, [p, q], ids_per_model=self.config.ids_per_model
        )
        self.args_p = collect_args(p)
        self.args_q = collect_args(q)
        self.generator = StateGenerator(self.scope)

    # ------------------------------------------------------------------

    def _candidates(self) -> Iterator[tuple[DBState, dict, dict]]:
        """Deterministic candidate stream: canonical states × exhaustive
        argument products first, then seeded random sampling."""
        cfg = self.config
        envs = env_products(
            self.args_p,
            self.args_q,
            self.scope,
            unique_ids_distinct=cfg.unique_ids,
            cap=cfg.env_product_cap,
        )
        produced = 0
        if envs is not None:
            # Exhaustive over canonical states × argument products.
            for state in self.generator.canonical_states():
                for env_p, env_q in envs:
                    yield state, env_p, env_q
                    produced += 1
                    if produced >= cfg.max_exhaustive:
                        break
                if produced >= cfg.max_exhaustive:
                    break
        # The per-pair stream must not depend on the process: built-in
        # ``hash()`` of strings is randomized per interpreter (PYTHONHASHSEED),
        # which made verdicts differ between processes — fatal for the
        # parallel engine and the result cache, where the same pair must
        # solve identically everywhere.
        pair_tag = zlib.crc32(f"{self.p.name}\x00{self.q.name}".encode())
        rng = random.Random(cfg.seed ^ pair_tag)
        produced = 0
        while produced < cfg.max_samples:
            state = self.generator.random_state(rng)
            if state is None:
                produced += 1
                continue
            env_p, env_q = random_envs(
                self.args_p,
                self.args_q,
                self.scope,
                rng,
                unique_ids_distinct=cfg.unique_ids,
            )
            yield state, env_p, env_q
            produced += 1

    # ------------------------------------------------------------------

    def _feasibility_states(self) -> list[DBState]:
        """States used to witness that an argument vector is generatable.

        The paper only requires an effect's precondition to hold on *some*
        fresh system state (§5.2), so beyond the scope's canonical states
        this includes states where the fresh-ID pool values already exist
        as rows (an ID that is fresh for one replica's insert may have
        long existed at another operation's originating site)."""
        states = list(self.generator.canonical_states())
        extended_ids = {
            m: pks + self.scope.fresh_ids.get(m, [])
            for m, pks in self.scope.ids.items()
        }
        extended = StateGenerator(dataclasses.replace(self.scope, ids=extended_ids))
        states.extend(extended.canonical_states())
        # States over *only* the fresh-pool ids: the populated suites above
        # always fill base ids first, so a fresh-pool row never appears
        # without the base rows already holding every unique field value —
        # which would mask preconditions that need one of those values free.
        fresh_only_ids = {
            m: self.scope.fresh_ids.get(m) or pks
            for m, pks in self.scope.ids.items()
        }
        fresh_only = StateGenerator(
            dataclasses.replace(self.scope, ids=fresh_only_ids)
        )
        states.extend(fresh_only.canonical_states())
        rng = random.Random(self.config.seed ^ 0xFEA51B1E)
        for _ in range(12):
            sampled = extended.random_state(rng)
            if sampled is not None:
                states.append(sampled)
        return states

    def _feasible(self, path: CodePath, env: dict, cache: dict) -> bool:
        """Whether the argument vector can be *generated* at all."""
        key = (id(path), tuple(sorted((k, repr(v)) for k, v in env.items())))
        cached = cache.get(key)
        if cached is not None:
            return cached
        states = cache.get("__states__")
        if states is None:
            states = self._feasibility_states()
            cache["__states__"] = states
        ok = any(
            run_path(path, state, env, self.schema).committed for state in states
        )
        cache[key] = ok
        return ok

    def search_commutativity(self, deadline: float) -> tuple[str, dict]:
        """The commutativity witness search, structurally.

        Returns ``(status, info)`` where ``status`` is ``"fail"`` /
        ``"pass"`` / ``"timeout"``.  On ``"fail"``, ``info`` carries the
        *live* witness — the :class:`~repro.soir.state.DBState` and both
        argument environments plus the two diverging result states — which
        is what the restriction explainer (:mod:`repro.obs.explain`)
        replays.  ``info["candidates"]`` always counts the scenarios
        examined (surfaced on the ``solver-call`` trace span).
        """
        feasible_cache: dict = {}
        # The candidate stream is state-major over a product
        # state x env_p x env_q: the first-level application of each side
        # depends on only one env, so it is memoized per env for the
        # current state (the cache resets when the state changes) —
        # cutting the interpreter work for a full sweep roughly in half.
        first_level: dict = {}
        current_state = None
        candidates = 0

        def applied(path, state, env) -> object:
            key = (
                id(path),
                tuple(sorted((k, repr(v)) for k, v in env.items())),
            )
            cached = first_level.get(key)
            if cached is None:
                cached = apply_path(path, state, env, self.schema)
                first_level[key] = cached
            return cached

        for state, env_p, env_q in self._candidates():
            if state is not current_state:
                first_level.clear()
                current_state = state
            if time.perf_counter() > deadline:
                return "timeout", {"candidates": candidates}
            candidates += 1
            s_pq = apply_path(
                self.q, applied(self.p, state, env_p), env_q, self.schema
            )
            s_qp = apply_path(
                self.p, applied(self.q, state, env_q), env_p, self.schema
            )
            if s_pq.same_state(s_qp):
                continue
            # Divergence found — confirm both effects are generatable.
            if not self._feasible(self.p, env_p, feasible_cache):
                continue
            if not self._feasible(self.q, env_q, feasible_cache):
                continue
            return "fail", {
                "candidates": candidates,
                "state": state,
                "env_p": env_p,
                "env_q": env_q,
                "s_pq": s_pq,
                "s_qp": s_qp,
            }
        return "pass", {"candidates": candidates}

    def check_commutativity(self) -> CheckResult:
        """Counterexample search for paper rule 1.

        The two effects were generated concurrently, each at its *own*
        originating site (the paper asserts each precondition on an
        independent fresh state, §5.2); both are then applied to a common
        state ``S`` in the two possible orders, with replication
        semantics.  A divergence of the final states is a witness.
        """
        start = time.perf_counter()
        status, info = self.search_commutativity(start + self.config.timeout_s)
        elapsed = time.perf_counter() - start
        obs.record(
            f"enum search {self.p.name} x {self.q.name}", "solver-call",
            wall_s=elapsed, backend="enum", check="commutativity",
            candidates=info["candidates"], result=status,
        )
        _metric_inc("noctua_solver_calls_total", backend="enum", result=status)
        _metric_observe("noctua_solver_call_seconds", elapsed, backend="enum")
        _metric_observe("noctua_solver_candidates", info["candidates"],
                        backend="enum")
        if status == "timeout":
            return CheckResult(self.p.name, self.q.name, "commutativity",
                               Outcome.TIMEOUT, elapsed)
        if status == "pass":
            return CheckResult(self.p.name, self.q.name, "commutativity",
                               Outcome.PASS, elapsed)
        return CheckResult(
            self.p.name, self.q.name, "commutativity", Outcome.FAIL, elapsed,
            witness=Counterexample(
                description="application orders diverge",
                state=repr(info["state"].canonical()),
                args_p=repr(info["env_p"]),
                args_q=repr(info["env_q"]),
                env_p=dict(info["env_p"]),
                env_q=dict(info["env_q"]),
            ),
        )

    def search_semantic(self, deadline: float) -> tuple[str, dict]:
        """The NotInvalidate witness search, structurally.

        On ``"fail"``, ``info`` carries the common state, both argument
        environments, the committed outcome of the invalidating side
        (``after`` — the state on which the other precondition now fails)
        and ``direction`` (``"Q invalidates P"`` / ``"P invalidates Q"``).
        """
        generated: dict = {}
        current_state = None
        candidates = 0

        def gen(path, state, env):
            key = (
                id(path),
                tuple(sorted((k, repr(v)) for k, v in env.items())),
            )
            cached = generated.get(key)
            if cached is None:
                cached = run_path(path, state, env, self.schema)
                generated[key] = cached
            return cached

        for state, env_p, env_q in self._candidates():
            if state is not current_state:
                generated.clear()
                current_state = state
            if time.perf_counter() > deadline:
                return "timeout", {"candidates": candidates}
            candidates += 1
            out_p = gen(self.p, state, env_p)
            out_q = gen(self.q, state, env_q)
            if not (out_p.committed and out_q.committed):
                continue
            if not run_path(self.p, out_q.state, env_p, self.schema).committed:
                return "fail", {
                    "candidates": candidates,
                    "state": state,
                    "env_p": env_p,
                    "env_q": env_q,
                    "after": out_q.state,
                    "direction": "Q invalidates P",
                }
            if not run_path(self.q, out_p.state, env_q, self.schema).committed:
                return "fail", {
                    "candidates": candidates,
                    "state": state,
                    "env_p": env_p,
                    "env_q": env_q,
                    "after": out_p.state,
                    "direction": "P invalidates Q",
                }
        return "pass", {"candidates": candidates}

    def check_semantic(self) -> CheckResult:
        """``NotInvalidate(P,Q) ∧ NotInvalidate(Q,P)`` (paper rule 2).

        ``NotInvalidate(P,Q)`` fails on a witness ``S, x, y`` where both
        preconditions hold at ``S`` (so both effects can be generated from
        the common ancestor state of the concurrent execution) but ``g_P``
        no longer holds once ``Q``'s effect lands.
        """
        start = time.perf_counter()
        status, info = self.search_semantic(start + self.config.timeout_s)
        elapsed = time.perf_counter() - start
        obs.record(
            f"enum search {self.p.name} x {self.q.name}", "solver-call",
            wall_s=elapsed, backend="enum", check="semantic",
            candidates=info["candidates"], result=status,
        )
        _metric_inc("noctua_solver_calls_total", backend="enum", result=status)
        _metric_observe("noctua_solver_call_seconds", elapsed, backend="enum")
        _metric_observe("noctua_solver_candidates", info["candidates"],
                        backend="enum")
        if status == "timeout":
            return CheckResult(self.p.name, self.q.name, "semantic",
                               Outcome.TIMEOUT, elapsed)
        if status == "pass":
            return CheckResult(self.p.name, self.q.name, "semantic",
                               Outcome.PASS, elapsed)
        return CheckResult(
            self.p.name, self.q.name, "semantic", Outcome.FAIL, elapsed,
            witness=Counterexample(
                description=info["direction"],
                state=repr(info["state"].canonical()),
                args_p=repr(info["env_p"]),
                args_q=repr(info["env_q"]),
                env_p=dict(info["env_p"]),
                env_q=dict(info["env_q"]),
            ),
        )
