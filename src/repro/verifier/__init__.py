"""The Noctua VERIFIER.

Decides, for every pair of effectful code paths, whether they may run
concurrently under PoR consistency: the commutativity check guards state
convergence, the semantic check guards invariant preservation (paper
§2.2.1).  Facts are established by counterexample search over finite
scopes (the offline substitution for Z3 documented in DESIGN.md); the
restriction set is the union of failing pairs.
"""

from .enumcheck import CheckConfig, PairChecker
from .restrictions import (
    CheckResult,
    Counterexample,
    Outcome,
    PairVerdict,
    VerificationReport,
)
from .runner import operation_conflict_table, verify_application, verify_pair
from .smtcheck import SmtPairChecker
from .scopes import Scope, StateGenerator, build_scope

__all__ = [
    "CheckConfig",
    "CheckResult",
    "Counterexample",
    "Outcome",
    "PairChecker",
    "PairVerdict",
    "Scope",
    "SmtPairChecker",
    "StateGenerator",
    "VerificationReport",
    "build_scope",
    "operation_conflict_table",
    "verify_application",
    "verify_pair",
]
