"""The Noctua VERIFIER.

Decides, for every pair of effectful code paths, whether they may run
concurrently under PoR consistency: the commutativity check guards state
convergence, the semantic check guards invariant preservation (paper
§2.2.1).  Facts are established by counterexample search over finite
scopes (the offline substitution for Z3 documented in DESIGN.md); the
restriction set is the union of failing pairs.

When a tracer is active (``repro.obs``) each check emits a ``check``
span with nested ``solver-call`` records; ``noctua trace --pair`` turns
a failing check into a human-readable witness via ``repro.obs.explain``.
"""

from .enumcheck import CheckConfig, PairChecker
from .restrictions import (
    CheckResult,
    Counterexample,
    Outcome,
    PairVerdict,
    VerificationReport,
    verdict_from_obj,
    verdict_to_obj,
)
from .runner import (
    classify_pair,
    operation_conflict_table,
    solve_pair,
    verify_application,
    verify_pair,
)
from .smtcheck import SmtPairChecker
from .scopes import Scope, StateGenerator, build_scope

__all__ = [
    "CheckConfig",
    "CheckResult",
    "Counterexample",
    "Outcome",
    "PairChecker",
    "PairVerdict",
    "Scope",
    "SmtPairChecker",
    "StateGenerator",
    "VerificationReport",
    "build_scope",
    "classify_pair",
    "operation_conflict_table",
    "solve_pair",
    "verdict_from_obj",
    "verdict_to_obj",
    "verify_application",
    "verify_pair",
]
