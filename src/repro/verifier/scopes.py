"""Finite scopes for the bounded model finder.

The verifier proves facts by *failing to find counterexamples* (paper §5.2
runs Z3 the same way).  This module derives, for a pair of code paths, a
finite search space of well-formed database states and argument vectors:

* the *footprint* (models/relations either path can touch) bounds which
  state components vary at all;
* per-field value domains are seeded with the constants the paths mention
  (plus boundary neighbours for integers), so guard boundaries are hit;
* fields irrelevant to the pair are pinned to a single value;
* generated states satisfy the schema's well-formedness axioms (pk
  consistency, unique fields, non-null FKs) — the same axioms the paper
  asserts on symbolic states (§5.2).

State/argument candidates are produced as a deterministic stream: a small
canonical suite first (empty and fully-populated states with exhaustive
argument products), then seeded pseudo-random sampling.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from ..soir import expr as E
from ..soir.path import Argument, CodePath
from ..soir.schema import Schema
from ..soir.state import DBState
from ..soir.types import (
    BOOL,
    DATETIME,
    FLOAT,
    INT,
    STRING,
    SoirType,
)


@dataclass
class Scope:
    """The finite search space for one pair of code paths."""

    schema: Schema
    models: frozenset[str]
    relations: frozenset[str]
    ids: dict[str, list]              # model -> candidate row pks
    fresh_ids: dict[str, list]        # model -> pks for fresh-id arguments
    field_domains: dict[tuple[str, str], list]  # (model, field) -> values
    type_domains: dict[SoirType, list]          # scalar domains for args
    #: types at which either path declares a unique (fresh-ID) argument;
    #: plain arguments of these types may collide with a fresh ID
    fresh_arg_types: frozenset[SoirType] = frozenset()
    #: models into which either path inserts fresh-ID rows; only these
    #: need fresh-pool slots in a symbolic universe
    fresh_models: frozenset[str] = frozenset()
    #: arguments used *only* in id positions (deref/exists/pk-filter/
    #: CNT bounds); they take the lean pks-plus-absent domain instead of
    #: the arithmetic boundary domain
    pure_id_args: frozenset[str] = frozenset()
    #: arguments in id positions *and* value positions: boundary domain
    #: unioned with the id values
    mixed_id_args: frozenset[str] = frozenset()
    #: per-type id-position values: every integer pk plus one absent probe
    id_values: dict[SoirType, list] = field(default_factory=dict)


def _int_domain(constants: set[int]) -> list[int]:
    values: set[int] = {0, 1, -1}
    for c in constants:
        values.update((c - 1, c, c + 1))
    return sorted(values)[:9]


def _collect_constants(paths: list[CodePath]) -> dict[SoirType, set]:
    out: dict[SoirType, set] = {INT: set(), STRING: set(), FLOAT: set(),
                                DATETIME: set(), BOOL: set()}
    for path in paths:
        for cmd in path.commands:
            for node in cmd.walk_exprs():
                if isinstance(node, E.Lit) and node.lit_type in out:
                    if isinstance(node.value, (list, tuple)):
                        out[node.lit_type].update(
                            v for v in node.value
                            if isinstance(v, (int, float, str, bool))
                        )
                    else:
                        out[node.lit_type].add(node.value)
    return out


def _relevant_fields(paths: list[CodePath], schema: Schema) -> set[tuple[str, str]]:
    """(model, field) pairs whose values can influence either path."""
    relevant: set[tuple[str, str]] = set()
    for path in paths:
        for cmd in path.commands:
            for node in cmd.walk_exprs():
                fname = getattr(node, "field", None)
                if fname is None:
                    continue
                if isinstance(node, (E.Filter, E.OrderBy, E.Aggregate, E.MapSet)):
                    qs_model = node.qs.type.model
                    if isinstance(node, E.Filter) and node.relpath:
                        qs_model = _terminal(schema, qs_model, node.relpath)
                    relevant.add((qs_model, fname))
                elif isinstance(node, (E.FieldGet, E.SetField)):
                    relevant.add((node.obj.type.model, fname))
    # Unique fields always matter (they carry implicit preconditions).
    for mname in schema.models:
        model = schema.model(mname)
        for f in model.fields:
            if f.unique:
                relevant.add((mname, f.name))
        for group in model.unique_together:
            for f in group:
                relevant.add((mname, f))
    return relevant


def _arg_id_positions(
    paths: list[CodePath], schema: Schema
) -> tuple[set[str], set[str]]:
    """Split argument names by how the paths consume them.

    Returns ``(pure_id, mixed)``: *pure_id* arguments appear **only** in
    id positions — ``Deref``/``Exists`` references, filters on a pk
    field, ``MakeObj`` pk slots, comparisons against a pk ``FieldGet``/
    ``RefOf`` or a CNT aggregate — where the only values worth testing
    are the scope's pks, one absent probe, and the counts they induce.
    *mixed* arguments also flow into arithmetic or non-pk comparisons
    and need the pk values unioned onto the boundary domain.  Giving
    every integer argument the union instead would square the symbolic
    engine's search space per argument pair (8 plain INT args took one
    corpus pin from 6s to over 60s)."""
    from ..soir.types import Aggregation

    id_counts: dict[str, int] = {}
    total_counts: dict[str, int] = {}
    for path in paths:
        for cmd in path.commands:
            for node in cmd.walk_exprs():
                if isinstance(node, E.Var):
                    total_counts[node.name] = total_counts.get(node.name, 0) + 1
                    continue
                id_children: list[E.Expr] = []
                if isinstance(node, (E.Deref, E.Exists)):
                    id_children.append(node.ref)
                elif isinstance(node, E.Filter):
                    qs_model = node.qs.type.model
                    if node.relpath:
                        qs_model = _terminal(schema, qs_model, node.relpath)
                    if node.field == schema.model(qs_model).pk:
                        id_children.append(node.value)
                elif isinstance(node, E.MakeObj):
                    model = schema.model(node.model)
                    try:
                        id_children.append(node.field_expr(model.pk))
                    except KeyError:
                        pass
                elif isinstance(node, E.Cmp):
                    for a, b in ((node.left, node.right),
                                 (node.right, node.left)):
                        if isinstance(a, E.RefOf):
                            id_children.append(b)
                        elif isinstance(a, E.FieldGet):
                            m = schema.model(a.obj.type.model)
                            if a.field == m.pk:
                                id_children.append(b)
                        elif (isinstance(a, E.Aggregate)
                              and a.agg == Aggregation.CNT):
                            id_children.append(b)
                for child in id_children:
                    if isinstance(child, E.Var):
                        id_counts[child.name] = id_counts.get(child.name, 0) + 1
    pure = {n for n, c in id_counts.items() if total_counts.get(n, 0) == c}
    mixed = set(id_counts) - pure
    return pure, mixed


def _terminal(schema: Schema, start: str, relpath) -> str:
    from ..soir.types import Direction

    current = start
    for hop in relpath:
        rel = schema.relation(hop.relation)
        current = rel.target if hop.direction == Direction.FORWARD else rel.source
    return current


def build_scope(
    schema: Schema,
    paths: list[CodePath],
    *,
    ids_per_model: int = 2,
) -> Scope:
    models: set[str] = set()
    relations: set[str] = set()
    for path in paths:
        models |= path.models_touched(schema)
        relations |= path.relations_touched(schema)
    # Relations drag both endpoints in.
    for rname in relations:
        rel = schema.relation(rname)
        models.add(rel.source)
        models.add(rel.target)

    constants = _collect_constants(paths)
    relevant = _relevant_fields(paths, schema)

    # The symbolic universe needs one fresh-pool slot per fresh-ID argument
    # the pair can pin (each occupies its own pool constant) — with only
    # two slots, a pair of double-insert paths writes rows the encoded
    # state cannot see, hiding guard invalidations.
    n_fresh = max(
        2, sum(1 for path in paths for arg in path.args if arg.unique_id)
    )
    ids: dict[str, list] = {}
    fresh_ids: dict[str, list] = {}
    for mname in models:
        model = schema.model(mname)
        pk_type = model.pk_field.type
        if pk_type == STRING:
            ids[mname] = [f"{mname[:2].lower()}{i}" for i in range(ids_per_model)]
        else:
            ids[mname] = list(range(1, ids_per_model + 1))
        # The fresh-ID rows must carry the *same* values that
        # ``env_products`` pins fresh arguments to (and ``arg_domain``
        # offers to colliding plain arguments): feasibility states and
        # the symbolic universe extend the id space with these rows, and
        # a differently-named row can never witness a pinned argument.
        fresh_ids[mname] = fresh_pool_for(pk_type)[:n_fresh]

    string_constants = {v for v in constants[STRING] if isinstance(v, str)}
    type_domains: dict[SoirType, list] = {
        INT: _int_domain({v for v in constants[INT] if isinstance(v, int)}),
        FLOAT: sorted({0.0, 1.0, -1.0} | set(constants[FLOAT]))[:6],
        BOOL: [True, False],
        DATETIME: [0, 1],
        # Two fillers so string-valued writes can differ (a single value
        # would hide last-writer divergence between two inserts).
        STRING: sorted(string_constants)[:6] + ["zz", "yy"],
    }
    # A unique field must never saturate its scalar domain: with
    # ``ids_per_model`` rows alive, a well-formed state already holds that
    # many distinct values, and an insert needs a free one to be
    # generatable at all.  Too small a domain makes full states block
    # every insert, hiding real guard invalidations from the bounded
    # search (the scope must witness feasibility, not forbid it).
    min_unique_domain = ids_per_model + 2
    unique_value_types = set()
    for mname in models:
        model = schema.model(mname)
        grouped = {f for group in model.unique_together for f in group}
        for f in model.fields:
            if f.name == model.pk or f.choices is not None:
                continue
            if f.unique or f.name in grouped:
                unique_value_types.add(f.type)
    if STRING in unique_value_types:
        dom = type_domains[STRING]
        for filler in ("xx", "ww", "vv", "uu", "tt", "ss"):
            if len(dom) >= min_unique_domain:
                break
            if filler not in dom:
                dom.append(filler)
    if INT in unique_value_types:
        dom = type_domains[INT]
        value = max(dom) + 1
        while len(dom) < min_unique_domain:
            dom.append(value)
            value += 1

    # Argument strings must be able to hit existing string pks.
    arg_strings = list(type_domains[STRING])
    for mname in models:
        if schema.model(mname).pk_field.type == STRING:
            arg_strings = ids[mname] + arg_strings
    type_domains[STRING] = arg_strings[:8]
    # Integer arguments addressing rows must be able to hit every pk —
    # the boundary values only cover pk 1, so a witness addressing a
    # later row (or a CNT-aggregate bound equal to the table size) would
    # be unrepresentable.  The pks live in a dedicated id domain rather
    # than ``type_domains[INT]`` so pure-value arguments stay lean (see
    # ``_arg_id_positions``); ``arg_domain`` picks or unions per use.
    pure_id_args, mixed_id_args = _arg_id_positions(paths, schema)
    int_ids = sorted({v for mname in models for v in ids[mname]
                      if isinstance(v, int)})
    id_values: dict[SoirType, list] = {INT: int_ids + [0]}

    field_domains: dict[tuple[str, str], list] = {}
    for mname in models:
        model = schema.model(mname)
        for f in model.fields:
            if f.name == model.pk:
                continue
            if (mname, f.name) in relevant:
                domain = list(type_domains.get(f.type, [None]))
                if f.min_value is not None:
                    domain = [v for v in domain if v >= f.min_value] or [f.min_value]
                if f.choices is not None:
                    domain = list(f.choices)
            else:
                domain = [_pinned_value(f.type)]
            if f.nullable:
                domain = domain + [None]
            field_domains[(mname, f.name)] = domain

    fresh_arg_types = frozenset(
        arg.type for path in paths for arg in path.args if arg.unique_id
    )
    fresh_models = set()
    unique_arg_names = {
        arg.name for path in paths for arg in path.args if arg.unique_id
    }
    for path in paths:
        for cmd in path.commands:
            for node in cmd.walk_exprs():
                if isinstance(node, E.MakeObj):
                    model = schema.model(node.model)
                    try:
                        pk_expr = node.field_expr(model.pk)
                    except KeyError:
                        continue
                    if isinstance(pk_expr, E.Var) and pk_expr.name in unique_arg_names:
                        fresh_models.add(node.model)
    return Scope(
        schema=schema,
        models=frozenset(models),
        relations=frozenset(relations),
        ids=ids,
        fresh_ids=fresh_ids,
        field_domains=field_domains,
        type_domains=type_domains,
        fresh_arg_types=fresh_arg_types,
        fresh_models=frozenset(fresh_models),
        pure_id_args=frozenset(pure_id_args),
        mixed_id_args=frozenset(mixed_id_args),
        id_values=id_values,
    )


def _synthesize_unique(domain: list, index: int):
    """A value guaranteed distinct from the domain and from other indices,
    matching the domain's type."""
    sample = next((v for v in domain if v is not None), "u")
    if isinstance(sample, bool) or not isinstance(sample, (int, float, str)):
        return f"u{index}"
    if isinstance(sample, (int, float)):
        return max(v for v in domain if v is not None) + 1 + index
    return f"u{index}!"


def _pinned_value(t: SoirType):
    if t == BOOL:
        return False
    if t == INT or t == DATETIME:
        return 0
    if t == FLOAT:
        return 0.0
    return "p"


# ---------------------------------------------------------------------------
# State generation
# ---------------------------------------------------------------------------


class StateGenerator:
    """Produces well-formed states within a scope."""

    def __init__(self, scope: Scope):
        self.scope = scope
        self.schema = scope.schema

    def canonical_states(self) -> list[DBState]:
        """The deterministic suite: varied full tables first (preconditions
        are most often satisfiable there, so truncated budgets still search
        fertile ground), then shrinking tables down to the empty state."""
        states = []
        k = max(len(v) for v in self.scope.ids.values()) if self.scope.ids else 0
        if k >= 2:
            states.append(self._populated(k, vary=True))
        # Rotated suites: the plain states above only ever exercise the
        # *leading* values of each field domain, so a witness that needs a
        # row holding a later value (e.g. a positive balance where the
        # domain leads with boundary values) would never appear in a
        # deterministic state.  Rotate the domains so every value shows up
        # in some full state.
        if k >= 1:
            width = max(
                (len(d) for d in self.scope.field_domains.values()), default=0
            )
            for shift in range(1, min(width, 4)):
                states.append(self._populated(k, vary=True, shift=shift))
        for rows in range(k, -1, -1):
            states.append(self._populated(rows))
        states.extend(self._group_collision_states())
        return [s for s in states if s is not None]

    def _group_collision_states(self) -> list[DBState]:
        """``unique_together`` collision probes: two rows agreeing on every
        group field but one.  A write landing on the free field can
        collide with the other row only from such a state, and the plain
        suites never build one — ``vary`` assigns distinct values to every
        field, uniform assignment tripped the group constraint and dropped
        the second row.  The free field runs over *all* value pairs, not
        just adjacent ones: an update typically shifts the value by an
        argument-sized step, so the colliding pair may be far apart."""
        states: list[DBState] = []
        for mname in sorted(self.scope.models):
            model = self.schema.model(mname)
            pks = self.scope.ids[mname]
            if len(pks) < 2:
                continue
            for group in model.unique_together:
                fields = [f for f in group if f != model.pk]
                if len(fields) < 2:
                    continue
                # A group member that is individually unique cannot agree
                # across rows, so the group can never collide through it.
                if any(model.field(f).unique for f in fields):
                    continue
                for free in fields:
                    pinned = {}
                    for other in fields:
                        if other == free:
                            continue
                        dom = self.scope.field_domains[(mname, other)]
                        pin = next((v for v in dom if v is not None), None)
                        if pin is None:
                            break
                        pinned[other] = pin
                    if len(pinned) != len(fields) - 1:
                        continue
                    dom = self.scope.field_domains[(mname, free)]
                    values = [v for v in dom if v is not None]
                    for i in range(len(values)):
                        for j in range(i + 1, len(values)):
                            base = self._populated(len(pks), vary=True)
                            if base is None:
                                continue
                            table = base.table(mname)
                            probe = [pk for pk in pks[:2] if pk in table]
                            if len(probe) < 2:
                                continue
                            for pk, v in zip(probe, (values[i], values[j])):
                                table[pk][free] = v
                                for other, pin in pinned.items():
                                    table[pk][other] = pin
                            self._fix_unique_together(base)
                            if len(base.table(mname)) < 2:
                                continue
                            states.append(base)
        return states

    def _empty(self) -> DBState:
        """A state carrying only the scope's footprint — checks clone
        states on every execution, so keeping them minimal matters."""
        state = DBState()
        for mname in self.scope.models:
            state.tables[mname] = {}
            state.order[mname] = {}
            state.next_order[mname] = 0
        for rname in self.scope.relations:
            state.assocs[rname] = set()
        return state

    def _populated(
        self, rows: int, *, vary: bool = False, shift: int = 0
    ) -> DBState:
        state = self._empty()
        for mname in sorted(self.scope.models):
            model = self.schema.model(mname)
            pks = self.scope.ids[mname][:rows]
            for idx, pk in enumerate(pks):
                row = {model.pk: pk}
                for f in model.fields:
                    if f.name == model.pk:
                        continue
                    domain = self.scope.field_domains[(mname, f.name)]
                    if f.unique and idx >= len(domain):
                        # More rows than distinct domain values: synthesize
                        # fresh values so the state stays well-formed.
                        row[f.name] = _synthesize_unique(domain, idx)
                        continue
                    offset = (idx if (vary or f.unique) else 0) + shift
                    row[f.name] = domain[offset % len(domain)]
                state.insert_row(mname, pk, row)
        self._fix_unique_together(state)
        for rname in sorted(self.scope.relations):
            rel = self.schema.relation(rname)
            sources = list(state.table(rel.source))
            targets = list(state.table(rel.target))
            if not targets:
                if rel.kind == "fk" and not rel.nullable:
                    # Non-null FK with no targets forces an empty source.
                    for pk in sources:
                        state.delete_row(rel.source, pk)
                continue
            for idx, src in enumerate(sources):
                dst = targets[idx % len(targets)] if vary else targets[0]
                state.relation(rname).add((src, dst))
        self._prune_dangling(state)
        return state

    def _prune_dangling(self, state: DBState) -> None:
        """Drop association pairs whose endpoint rows were removed while
        satisfying a *different* relation's non-null constraint."""
        for rname in self.scope.relations:
            rel = self.schema.relation(rname)
            sources = state.table(rel.source)
            targets = state.table(rel.target)
            pairs = state.relation(rname)
            state.assocs[rname] = {
                (s, t) for s, t in pairs if s in sources and t in targets
            }

    def _fix_unique_together(self, state: DBState) -> None:
        """Drop rows violating unique_together in generated states."""
        for mname in sorted(self.scope.models):
            model = self.schema.model(mname)
            for group in model.unique_together:
                seen: set[tuple] = set()
                for pk, row in list(state.table(mname).items()):
                    key = tuple(row.get(f) for f in group)
                    if key in seen:
                        state.delete_row(mname, pk)
                    else:
                        seen.add(key)

    def random_state(self, rng: random.Random) -> DBState | None:
        """One sampled well-formed state, or None if sampling failed."""
        state = self._empty()
        for mname in sorted(self.scope.models):
            model = self.schema.model(mname)
            all_pks = self.scope.ids[mname]
            nrows = rng.randint(0, len(all_pks))
            pks = all_pks[:nrows]
            used_unique: dict[str, set] = {}
            for pk in pks:
                row = {model.pk: pk}
                for f in model.fields:
                    if f.name == model.pk:
                        continue
                    domain = self.scope.field_domains[(mname, f.name)]
                    value = rng.choice(domain)
                    if f.unique:
                        taken = used_unique.setdefault(f.name, set())
                        free = [v for v in domain if v not in taken]
                        if not free:
                            value = _synthesize_unique(domain, len(taken))
                        else:
                            value = rng.choice(free)
                        taken.add(value)
                    row[f.name] = value
                state.insert_row(mname, pk, row)
        self._fix_unique_together(state)
        for rname in sorted(self.scope.relations):
            rel = self.schema.relation(rname)
            sources = list(state.table(rel.source))
            targets = list(state.table(rel.target))
            pairs = state.relation(rname)
            if rel.kind == "fk":
                for src in sources:
                    if not targets:
                        if not rel.nullable:
                            state.delete_row(rel.source, src)
                        continue
                    if rel.nullable and rng.random() < 0.34:
                        continue
                    pairs.add((src, rng.choice(targets)))
            else:
                for src in sources:
                    for dst in targets:
                        if rng.random() < 0.5:
                            pairs.add((src, dst))
        self._prune_dangling(state)
        # Occasionally shuffle insertion order so order-sensitive reads vary.
        if rng.random() < 0.5:
            for mname in sorted(self.scope.models):
                order = state.order.get(mname, {})
                pks = list(order)
                rng.shuffle(pks)
                for rank, pk in enumerate(pks):
                    order[pk] = rank
        return state


# ---------------------------------------------------------------------------
# Argument generation
# ---------------------------------------------------------------------------


def collect_args(path: CodePath) -> list[Argument]:
    """Declared arguments plus any Opaque placeholders in the commands."""
    args = list(path.args)
    seen = {a.name for a in args}
    for cmd in path.commands:
        for node in cmd.walk_exprs():
            if isinstance(node, E.Opaque) and node.name not in seen:
                args.append(Argument(node.name, node.opaque_type, source="opaque"))
                seen.add(node.name)
    return args


def fresh_pool_for(t: SoirType) -> list:
    """Candidate storage-generated fresh IDs, by SOIR type."""
    if t == STRING:
        return ["F0", "F1", "F2", "F3"]
    return [101, 102, 103, 104]


def arg_domain(arg: Argument, scope: Scope) -> list:
    if arg.unique_id:
        return list(fresh_pool_for(arg.type))
    domain = scope.type_domains.get(arg.type)
    if domain is None:
        # Model-typed arguments are not produced by the analyzer today;
        # fall back to a single placeholder.
        return [None]
    domain = list(domain)
    id_values = scope.id_values.get(arg.type, [])
    if arg.name in scope.pure_id_args and id_values:
        # Only ever an object reference: the pks, one absent probe, and
        # (below) a fresh-pool collision cover every distinguishable case.
        domain = list(id_values)
    elif arg.name in scope.mixed_id_args:
        domain = domain + [v for v in id_values if v not in domain]
    # A plain argument can name a storage-generated fresh ID (a client may
    # reference an object another operation is creating concurrently —
    # the 'AddCourse/DeleteCourse can carry the same ID' case, paper §6.2),
    # but only when a fresh-ID argument of this type is actually in play.
    if arg.type in scope.fresh_arg_types:
        domain += fresh_pool_for(arg.type)[:1]
    return domain


def env_products(
    args_p: list[Argument],
    args_q: list[Argument],
    scope: Scope,
    *,
    unique_ids_distinct: bool,
    cap: int,
):
    """Exhaustive product of argument assignments (capped)."""
    specs: list[tuple[str, str, list]] = []  # (side, name, domain)
    fresh_counter = 0
    for side, args in (("p", args_p), ("q", args_q)):
        for arg in args:
            if arg.unique_id:
                pool = fresh_pool_for(arg.type)
                if unique_ids_distinct:
                    # The storage tier guarantees global distinctness
                    # (paper §5.2): pin each fresh argument to its own ID.
                    pool = [pool[fresh_counter % len(pool)]]
                    fresh_counter += 1
                else:
                    pool = pool[:2]
            else:
                pool = arg_domain(arg, scope)
            specs.append((side, arg.name, pool))
    total = 1
    for _, _, pool in specs:
        total *= max(1, len(pool))
    if total > cap:
        # Don't abandon exhaustive coverage wholesale: shrink the widest
        # domains until the product fits, shedding the least
        # witness-relevant values first — scope ids are moved to the
        # front before trimming because a value that names an existing
        # row is what guards and derefs hinge on.  The sampling phase
        # still explores the full domains.
        id_values = {v for pks in scope.ids.values() for v in pks}
        pools = [
            [v for v in pool if v in id_values]
            + [v for v in pool if v not in id_values]
            for _, _, pool in specs
        ]
        while total > cap:
            widest = max(range(len(pools)), key=lambda k: len(pools[k]))
            if len(pools[widest]) <= 1:
                return None  # cannot fit: caller falls back to sampling
            total //= len(pools[widest])
            pools[widest].pop()
            total *= max(1, len(pools[widest]))
        specs = [
            (side, name, pool)
            for (side, name, _), pool in zip(specs, pools)
        ]
    out = []
    for combo in itertools.product(*(pool for _, _, pool in specs)):
        env_p: dict[str, object] = {}
        env_q: dict[str, object] = {}
        for (side, name, _), value in zip(specs, combo):
            (env_p if side == "p" else env_q)[name] = value
        out.append((env_p, env_q))
    return out


def random_envs(
    args_p: list[Argument],
    args_q: list[Argument],
    scope: Scope,
    rng: random.Random,
    *,
    unique_ids_distinct: bool,
) -> tuple[dict, dict]:
    env_p: dict[str, object] = {}
    env_q: dict[str, object] = {}
    fresh_used: list = []
    used_by_type: dict[SoirType, list] = {}

    def assign(env: dict, arg: Argument) -> None:
        if arg.unique_id:
            pool = fresh_pool_for(arg.type)
            if unique_ids_distinct:
                pool = [v for v in pool if v not in fresh_used] or pool
            else:
                pool = pool[:2]
            value = rng.choice(pool)
            fresh_used.append(value)
            env[arg.name] = value
            return
        # Collision bias: conflicts almost always require two arguments to
        # name the same object/value, so reuse a previously drawn value of
        # the same type half of the time.
        used = used_by_type.setdefault(arg.type, [])
        if used and rng.random() < 0.5:
            value = rng.choice(used)
        else:
            value = rng.choice(arg_domain(arg, scope))
        used.append(value)
        env[arg.name] = value

    for arg in args_p:
        assign(env_p, arg)
    for arg in args_q:
        assign(env_q, arg)
    return env_p, env_q
