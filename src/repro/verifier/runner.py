"""The pairwise verification driver.

For every unordered pair of *effectful* code paths (including a path with
itself), runs the commutativity and semantic checks and aggregates the
restriction set.  Fast paths keep the quadratic sweep tractable:

* a pair involving a *conservative* path is restricted without solving
  (paper §3.3);
* a pair whose footprints (models + relations, including referential-action
  spill-over) are disjoint cannot interact: both checks pass immediately.
"""

from __future__ import annotations

import time

from ..soir.path import AnalysisResult, CodePath
from ..soir.schema import Schema
from .enumcheck import CheckConfig, PairChecker
from .restrictions import (
    CheckResult,
    Outcome,
    PairVerdict,
    VerificationReport,
)


def verify_pair(
    p: CodePath,
    q: CodePath,
    schema: Schema,
    config: CheckConfig | None = None,
    *,
    engine: str = "enum",
) -> PairVerdict:
    """Run both checks for one pair.

    ``engine`` selects the verification backend: ``"enum"`` (the bounded
    model finder over concrete states — the default) or ``"smt"`` (the
    symbolic engine: Table-2 encoding + finite-domain solver).  The two
    are independent implementations of the same checking rules and agree
    on the paper's benchmarks (see tests/test_smt_engine.py)."""
    config = config or CheckConfig()
    verdict = PairVerdict(p.name, q.name)
    if p.conservative or q.conservative:
        why = p.name if p.conservative else q.name
        for kind in ("commutativity", "semantic"):
            result = CheckResult(
                p.name, q.name, kind, Outcome.CONSERVATIVE,
                detail=f"{why} analyzed conservatively",
            )
            _attach(verdict, result)
        return verdict
    if not config.order_enabled and (p.uses_order() or q.uses_order()):
        # Classic order-less array encoding: order-related semantics are
        # unverifiable, so the pair is restricted without solving.
        why = p.name if p.uses_order() else q.name
        for kind in ("commutativity", "semantic"):
            _attach(
                verdict,
                CheckResult(
                    p.name, q.name, kind, Outcome.CONSERVATIVE,
                    detail=f"{why} uses order primitives (order encoding off)",
                ),
            )
        return verdict
    if (
        not (p.models_touched(schema) & q.models_touched(schema))
        and not (p.relations_touched(schema) & q.relations_touched(schema))
    ):
        for kind in ("commutativity", "semantic"):
            _attach(
                verdict,
                CheckResult(
                    p.name, q.name, kind, Outcome.PASS,
                    detail="disjoint footprint",
                ),
            )
        return verdict
    if engine == "smt":
        from .smtcheck import SmtPairChecker

        checker = SmtPairChecker(p, q, schema, config)
    else:
        checker = PairChecker(p, q, schema, config)
    _attach(verdict, checker.check_commutativity())
    _attach(verdict, checker.check_semantic())
    return verdict


def _attach(verdict: PairVerdict, result: CheckResult) -> None:
    if result.kind == "commutativity":
        verdict.commutativity = result
    else:
        verdict.semantic = result


def verify_application(
    analysis: AnalysisResult,
    config: CheckConfig | None = None,
    *,
    engine: str = "enum",
) -> VerificationReport:
    """Verify every pair of effectful paths of an analyzed application."""
    config = config or CheckConfig()
    report = VerificationReport(analysis.app_name)
    start = time.perf_counter()
    effectful = analysis.effectful_paths
    for i, p in enumerate(effectful):
        for q in effectful[i:]:
            verdict = verify_pair(p, q, analysis.schema, config, engine=engine)
            report.verdicts.append(verdict)
            if verdict.commutativity is not None:
                report.time_commutativity_s += verdict.commutativity.elapsed_s
            if verdict.semantic is not None:
                report.time_semantic_s += verdict.semantic.elapsed_s
    report.elapsed_s = time.perf_counter() - start
    return report


def operation_conflict_table(report: VerificationReport) -> set[frozenset[str]]:
    """Lift path-level restrictions to view-level (operation) conflicts.

    Two *operations* (HTTP endpoints) conflict if any pair of their code
    paths is restricted.  This is the table a PoR coordination service
    consumes (paper §6.5 coordinates on endpoints + parameters).
    """
    conflicts: set[frozenset[str]] = set()
    for verdict in report.restrictions:
        left_view = verdict.left.split("[")[0]
        right_view = verdict.right.split("[")[0]
        conflicts.add(frozenset((left_view, right_view)))
    return conflicts
