"""The pairwise verification driver.

For every unordered pair of *effectful* code paths (including a path with
itself), runs the commutativity and semantic checks and aggregates the
restriction set.  Fast paths keep the quadratic sweep tractable:

* a pair involving a *conservative* path is restricted without solving
  (paper §3.3);
* with the order encoding disabled, a pair using order primitives is
  restricted without solving (the classic order-less array encoding);
* a pair whose footprints (models + relations, including referential-action
  spill-over) are disjoint cannot interact: both checks pass immediately.

``classify_pair`` resolves the fast layers without touching a solver;
``solve_pair`` runs the actual checkers.  ``verify_pair`` composes the two.
The whole-application sweep (``verify_application``) is executed by the
scheduler in :mod:`repro.engine`, which adds pair memoization and a
multiprocessing worker pool on top of these primitives.
"""

from __future__ import annotations

from ..obs import tracer as obs
from ..soir.path import AnalysisResult, CodePath
from ..soir.schema import Schema
from .enumcheck import CheckConfig, PairChecker
from .restrictions import (
    CheckResult,
    Outcome,
    PairVerdict,
    VerificationReport,
)

#: fast-path tags reported by :func:`classify_pair` (the scheduler's
#: pruning counters are keyed by these)
PRUNE_CONSERVATIVE = "conservative"
PRUNE_ORDER = "order"
PRUNE_DISJOINT = "disjoint"
PRUNE_RW = "rw-disjoint"

#: backends raced by the ``portfolio`` engine, in serial-preference order
PORTFOLIO_LANES = ("enum", "smt")


def _new_verdict(p: CodePath, q: CodePath) -> PairVerdict:
    return PairVerdict(p.name, q.name, left_view=p.view, right_view=q.view)


def classify_pair(
    p: CodePath,
    q: CodePath,
    schema: Schema,
    config: CheckConfig | None = None,
    *,
    rw: bool = False,
) -> tuple[PairVerdict, str] | None:
    """Resolve a pair through the solver-free fast layers.

    Returns ``(verdict, prune_tag)`` when one of the fast paths decides
    the pair, or ``None`` when the pair needs actual solving.

    ``rw`` additionally enables the column-level read/write disjointness
    layer (:func:`repro.engine.reduction.rw_disjoint`) — finer than the
    model-level footprint check, and gated behind the sweep's ``reduce``
    flag so reduction-off sweeps reproduce the historical behavior."""
    config = config or CheckConfig()
    if p.conservative or q.conservative:
        why = p.name if p.conservative else q.name
        verdict = _new_verdict(p, q)
        for kind in ("commutativity", "semantic"):
            _attach(verdict, CheckResult(
                p.name, q.name, kind, Outcome.CONSERVATIVE,
                detail=f"{why} analyzed conservatively",
            ))
        return verdict, PRUNE_CONSERVATIVE
    if not config.order_enabled and (p.uses_order() or q.uses_order()):
        # Classic order-less array encoding: order-related semantics are
        # unverifiable, so the pair is restricted without solving.
        why = p.name if p.uses_order() else q.name
        verdict = _new_verdict(p, q)
        for kind in ("commutativity", "semantic"):
            _attach(verdict, CheckResult(
                p.name, q.name, kind, Outcome.CONSERVATIVE,
                detail=f"{why} uses order primitives (order encoding off)",
            ))
        return verdict, PRUNE_ORDER
    if (
        not (p.models_touched(schema) & q.models_touched(schema))
        and not (p.relations_touched(schema) & q.relations_touched(schema))
    ):
        verdict = _new_verdict(p, q)
        for kind in ("commutativity", "semantic"):
            _attach(verdict, CheckResult(
                p.name, q.name, kind, Outcome.PASS,
                detail="disjoint footprint",
            ))
        return verdict, PRUNE_DISJOINT
    if rw:
        # Lazy import: repro.engine imports this module at init time.
        from ..engine.reduction import rw_disjoint

        if rw_disjoint(p, q, schema):
            verdict = _new_verdict(p, q)
            for kind in ("commutativity", "semantic"):
                _attach(verdict, CheckResult(
                    p.name, q.name, kind, Outcome.PASS,
                    detail="disjoint read/write footprints",
                ))
            verdict.provenance = {"source": "pruned", "tag": PRUNE_RW}
            return verdict, PRUNE_RW
    return None


def definitive(verdict: PairVerdict) -> bool:
    """Whether every check of ``verdict`` reached a real answer.

    ``PASS`` and ``FAIL`` are definitive; ``TIMEOUT`` / ``CONSERVATIVE``
    / ``UNKNOWN`` are budget or capability artifacts a racing backend
    might still beat.  The portfolio engine's win condition."""
    outcomes = [
        check.outcome
        for check in (verdict.commutativity, verdict.semantic)
        if check is not None
    ]
    return bool(outcomes) and all(
        o in (Outcome.PASS, Outcome.FAIL) for o in outcomes
    )


def portfolio_agreement(a: PairVerdict, b: PairVerdict) -> bool | None:
    """Cross-check two backends' verdicts for the same pair.

    Returns ``True``/``False`` when at least one check is definitive on
    both sides (the difftest-style agreement sample the portfolio race
    yields for free), or ``None`` when no check is comparable — budget
    artifacts are not disagreements."""
    comparable = False
    for ca, cb in ((a.commutativity, b.commutativity),
                   (a.semantic, b.semantic)):
        if ca is None or cb is None:
            continue
        if (ca.outcome in (Outcome.PASS, Outcome.FAIL)
                and cb.outcome in (Outcome.PASS, Outcome.FAIL)):
            comparable = True
            if ca.outcome != cb.outcome:
                return False
    return True if comparable else None


def solve_pair(
    p: CodePath,
    q: CodePath,
    schema: Schema,
    config: CheckConfig | None = None,
    *,
    engine: str = "enum",
) -> PairVerdict:
    """Run both checkers for one pair, skipping the fast layers.

    ``engine`` selects the verification backend: ``"enum"`` (the bounded
    model finder over concrete states — the default), ``"smt"`` (the
    symbolic engine: Table-2 encoding + finite-domain solver), or
    ``"portfolio"`` (both in sequence here, raced in the worker pool:
    first definitive answer wins).  Enum and SMT are independent
    implementations of the same checking rules and agree on the paper's
    benchmarks (see tests/test_smt_engine.py)."""
    config = config or CheckConfig()
    if engine == "portfolio":
        return _solve_portfolio(p, q, schema, config)
    verdict = _new_verdict(p, q)
    if engine == "smt":
        from .smtcheck import SmtPairChecker

        checker = SmtPairChecker(p, q, schema, config)
    else:
        checker = PairChecker(p, q, schema, config)
    for run_check, check_kind in (
        (checker.check_commutativity, "commutativity"),
        (checker.check_semantic, "semantic"),
    ):
        with obs.span(f"{p.name} x {q.name}", "check",
                      check=check_kind, backend=engine) as sp:
            result = run_check()
            sp.set(outcome=result.outcome.value)
        _attach(verdict, result)
    return verdict


def _solve_portfolio(
    p: CodePath,
    q: CodePath,
    schema: Schema,
    config: CheckConfig,
) -> PairVerdict:
    """The portfolio engine's in-process form: lanes run in sequence.

    The enum lane runs first (cheaper on the common case); a definitive
    answer short-circuits.  Otherwise the SMT lane gets its shot and the
    two verdicts become a free cross-check agreement sample.  The chosen
    verdict carries a transient ``portfolio_info`` attribute (winner
    lane, agreement) that the scheduler translates into span attributes
    and metrics — transient because this function only ever runs in the
    parent process (the worker pool races real lane tasks instead)."""
    lane_verdicts: dict[str, PairVerdict] = {}
    winner = PORTFOLIO_LANES[0]
    for lane in PORTFOLIO_LANES:
        lane_verdicts[lane] = solve_pair(p, q, schema, config, engine=lane)
        if definitive(lane_verdicts[lane]):
            winner = lane
            break
    else:
        # No definitive answer anywhere: prefer the enum lane's verdict
        # (same tie-break as the pool scheduler, keeping modes identical).
        winner = PORTFOLIO_LANES[0]
    verdict = lane_verdicts[winner]
    agree = None
    if len(lane_verdicts) == len(PORTFOLIO_LANES):
        a, b = (lane_verdicts[lane] for lane in PORTFOLIO_LANES)
        agree = portfolio_agreement(a, b)
    verdict.portfolio_info = {"winner": winner, "agree": agree}
    return verdict


def solve_pair_guarded(
    p: CodePath,
    q: CodePath,
    schema: Schema,
    config: CheckConfig | None = None,
    *,
    engine: str = "enum",
    deadline_s: float | None = None,
    inject=None,
):
    """Run :func:`solve_pair` under a wall-clock deadline, never raising.

    The serial-path counterpart of the scheduler's worker watchdog:
    the attempt runs inside :func:`repro.engine.failures.deadline`
    (``SIGALRM``-based, main-thread only) and any failure — deadline,
    injected crash, solver error — is caught and classified instead of
    propagating into the sweep.

    Returns ``(verdict, None)`` on success or ``(None, (kind, detail))``
    with ``kind`` from the failure taxonomy.  ``inject`` is the chaos
    hook: a callable invoked right before solving (tests and the
    ``engine-chaos`` harness only)."""
    # Lazy import: repro.engine imports this module at package-init time.
    from ..engine import failures

    config = config or CheckConfig()
    try:
        with failures.deadline(deadline_s):
            if inject is not None:
                inject()
            verdict = solve_pair(p, q, schema, config, engine=engine)
    except Exception as exc:
        return None, failures.classify_exception(exc)
    return verdict, None


def verify_pair(
    p: CodePath,
    q: CodePath,
    schema: Schema,
    config: CheckConfig | None = None,
    *,
    engine: str = "enum",
) -> PairVerdict:
    """Run both checks for one pair: fast layers first, then the solver."""
    config = config or CheckConfig()
    classified = classify_pair(p, q, schema, config)
    if classified is not None:
        return classified[0]
    return solve_pair(p, q, schema, config, engine=engine)


def _attach(verdict: PairVerdict, result: CheckResult) -> None:
    if result.kind == "commutativity":
        verdict.commutativity = result
    else:
        verdict.semantic = result


def verify_application(
    analysis: AnalysisResult,
    config: CheckConfig | None = None,
    *,
    engine: str = "enum",
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | None = None,
    pair_deadline_s: float | None = None,
    reduce: bool = True,
) -> VerificationReport:
    """Verify every pair of effectful paths of an analyzed application.

    Execution is delegated to the :mod:`repro.engine` scheduler:
    ``jobs > 1`` dispatches the pair sweep across a fault-tolerant worker
    pool (a crashed or deadline-blown worker loses only its pair; total
    pool failure falls back to serial execution), ``use_cache=True``
    memoizes verdicts in a versioned on-disk cache under ``cache_dir``
    (default ``.noctua-cache/``) so re-verification only re-solves pairs
    whose content fingerprints changed, and ``pair_deadline_s`` bounds
    the wall clock of each solve attempt (pairs the engine cannot decide
    within the retry budget degrade to conservative ``unknown``
    verdicts).  Results are deterministic and identical across all
    execution modes on every pair the engine decides."""
    from ..engine.scheduler import run_pair_sweep

    return run_pair_sweep(
        analysis, config, engine=engine, jobs=jobs,
        use_cache=use_cache, cache_dir=cache_dir,
        pair_deadline_s=pair_deadline_s, reduce=reduce,
    )


def verdict_views(verdict: PairVerdict) -> tuple[str, str]:
    """The pair's views, falling back to the ``view[index]`` path-name
    convention for verdicts deserialized from legacy reports."""
    left = verdict.left_view or verdict.left.split("[")[0]
    right = verdict.right_view or verdict.right.split("[")[0]
    return left, right


def operation_conflict_table(report: VerificationReport) -> set[frozenset[str]]:
    """Lift path-level restrictions to view-level (operation) conflicts.

    Two *operations* (HTTP endpoints) conflict if any pair of their code
    paths is restricted.  This is the table a PoR coordination service
    consumes (paper §6.5 coordinates on endpoints + parameters).
    """
    conflicts: set[frozenset[str]] = set()
    for verdict in report.restrictions:
        left_view, right_view = verdict_views(verdict)
        conflicts.add(frozenset((left_view, right_view)))
    return conflicts
