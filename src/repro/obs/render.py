"""Human-readable views over a span forest.

Three renderers, all pure functions from spans to lines of text:

* :func:`render_tree` — the indented span tree with durations and the
  most useful attributes inline;
* :func:`phase_breakdown` — wall/CPU time aggregated by span *kind*
  (both inclusive and self time, so nested phases don't double-count);
* :func:`slowest_pairs_table` — the top-N most expensive solved pairs of
  a verification sweep.

The ``repro trace`` CLI composes these; they are equally usable from a
notebook or a test against a deserialized trace.
"""

from __future__ import annotations

from .tracer import Span

#: attributes promoted into the tree view, in display order
_INLINE_ATTRS = (
    "route", "outcome", "paths", "effectful", "branch_decisions",
    "candidates", "clauses", "model_size", "result", "restricted",
    "solver_calls", "cache", "pruned", "mode",
)


def _fmt_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def _attr_suffix(span: Span) -> str:
    shown = [
        f"{key}={_fmt_value(span.attrs[key])}"
        for key in _INLINE_ATTRS
        if key in span.attrs
    ]
    return ("  [" + " ".join(shown) + "]") if shown else ""


def render_tree(
    roots: list[Span],
    *,
    max_depth: int = 6,
    min_wall_ms: float = 0.0,
) -> list[str]:
    """The indented span tree, one line per span.

    ``min_wall_ms`` elides subtrees cheaper than the threshold (a count
    of elided children is shown instead), keeping big traces readable.
    """
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{span.name}  "
            f"({span.kind}, {span.wall_s * 1e3:.1f} ms wall, "
            f"{span.cpu_s * 1e3:.1f} ms cpu)"
            f"{_attr_suffix(span)}"
        )
        if depth + 1 >= max_depth:
            if span.children:
                lines.append(f"{indent}  ... {len(span.children)} children "
                             f"below depth limit")
            return
        shown = 0
        for child in span.children:
            if child.wall_s * 1e3 < min_wall_ms and not child.children:
                continue
            visit(child, depth + 1)
            shown += 1
        elided = len(span.children) - shown
        if elided > 0:
            lines.append(f"{indent}  ... {elided} spans under "
                         f"{min_wall_ms:g} ms elided")

    for root in roots:
        visit(root, 0)
    return lines


def phase_breakdown(roots: list[Span]) -> list[dict]:
    """Aggregate time per span kind.

    Returns one row per kind, ordered by total self time descending:
    ``{"kind", "count", "wall_s", "self_wall_s", "cpu_s"}``.  *Self* time
    excludes child spans, so the column sums to (roughly) the traced wall
    clock and nested kinds don't double-count.
    """
    rows: dict[str, dict] = {}
    for root in roots:
        for span in root.walk():
            kind = span.kind or "(untyped)"
            row = rows.setdefault(kind, {
                "kind": kind, "count": 0, "wall_s": 0.0,
                "self_wall_s": 0.0, "cpu_s": 0.0,
            })
            row["count"] += 1
            row["wall_s"] += span.wall_s
            row["self_wall_s"] += span.self_wall_s
            row["cpu_s"] += span.cpu_s
    return sorted(rows.values(), key=lambda r: -r["self_wall_s"])


def render_phase_breakdown(roots: list[Span]) -> list[str]:
    rows = phase_breakdown(roots)
    if not rows:
        return ["(no spans)"]
    lines = [f"{'phase (kind)':<16} {'count':>6} {'wall s':>9} "
             f"{'self s':>9} {'cpu s':>9}"]
    for row in rows:
        lines.append(
            f"{row['kind']:<16} {row['count']:>6} {row['wall_s']:>9.3f} "
            f"{row['self_wall_s']:>9.3f} {row['cpu_s']:>9.3f}"
        )
    return lines


def slowest_pairs_table(roots: list[Span], *, top: int = 10) -> list[str]:
    """The top-N solved pairs by wall time, from ``pair`` spans."""
    pairs = [
        span
        for root in roots
        for span in root.walk()
        if span.kind == "pair" and span.attrs.get("route") == "solved"
    ]
    pairs.sort(key=lambda s: -s.wall_s)
    if not pairs:
        return ["(no solved pairs)"]
    lines = [f"{'pair':<56} {'wall ms':>9} {'pid':>7}"]
    for span in pairs[:top]:
        lines.append(
            f"{span.name:<56} {span.wall_s * 1e3:>9.1f} "
            f"{span.attrs.get('pid', span.pid):>7}"
        )
    return lines
