"""The "why restricted?" explainer.

For any pair of code paths, answers the question a restriction set alone
cannot: *what concretely goes wrong if these two run concurrently?*  The
explainer re-runs the bounded witness search structurally
(:meth:`PairChecker.search_commutativity` /
:meth:`~PairChecker.search_semantic`), then **replays the witness
schedule through the SOIR reference interpreter** and renders:

* the witness arguments and the common ancestor state ``S``;
* for a commutativity failure — both application orders, the final state
  of each, and the exact rows/associations on which they diverge;
* for a semantic failure — the state after the invalidating effect and
  the first guard of the invalidated path that no longer holds (the
  broken invariant), pretty-printed as SOIR;
* the SOIR operations of each path responsible for the conflict (those
  touching the diverged models/relations).

Pairs resolved by the solver-free fast layers (conservative paths,
order-encoding-off, disjoint footprints, read/write-disjoint footprints)
are explained from the layer's own reasoning — including the analyzer's
recorded fallback reason for conservative paths and the column-level
footprints for read/write-disjoint prunes.  Verdicts shared from a
signature-class representative explain with their provenance header
(representative pair + member → representative renaming) in
:func:`explain_report`.

Everything is deterministic: the search is seeded per pair, the renderer
sorts every collection, and no timings appear in the output — the same
application explains identically on every machine
(``tests/test_obs_explain.py`` pins this).

This module imports :mod:`repro.verifier` and is therefore *not*
re-exported from ``repro.obs`` (the verifier itself is instrumented by
``repro.obs.tracer``); import it directly::

    from repro.obs import explain
    print(explain.explain_pair(analysis, "AddCourse[0]", "DeleteCourse[0]"))
"""

from __future__ import annotations

from ..soir.interp import Interpreter, PathAborted
from ..soir.path import AnalysisResult, CodePath
from ..soir.pretty import pp_command, pp_expr, pp_state
from ..soir.schema import Schema
from ..soir.state import DBState
from ..soir import commands as C

__all__ = ["explain_pair", "explain_report", "explain_flip",
           "diff_states", "ExplainError"]


class ExplainError(ValueError):
    """The requested pair cannot be resolved against the analysis."""


# ---------------------------------------------------------------------------
# Pair resolution
# ---------------------------------------------------------------------------


def _resolve(analysis: AnalysisResult, name: str) -> CodePath:
    """A path by exact name, or a view name with one effectful path."""
    for path in analysis.paths:
        if path.name == name:
            return path
    by_view = [p for p in analysis.effectful_paths if p.view == name]
    if len(by_view) == 1:
        return by_view[0]
    if by_view:
        options = ", ".join(p.name for p in by_view)
        raise ExplainError(
            f"{name!r} names {len(by_view)} effectful paths ({options}); "
            f"pick one"
        )
    known = ", ".join(sorted(p.name for p in analysis.paths))
    raise ExplainError(f"no code path named {name!r}; known paths: {known}")


def _sweep_order(
    analysis: AnalysisResult, p: CodePath, q: CodePath
) -> tuple[CodePath, CodePath]:
    """Orient the pair the way the verification sweep visits it
    (``i <= j`` over the effectful-path list), so witness directions
    match the report's verdicts."""
    order = {path.name: i for i, path in enumerate(analysis.effectful_paths)}
    i, j = order.get(p.name), order.get(q.name)
    if i is not None and j is not None and i > j:
        return q, p
    return p, q


# ---------------------------------------------------------------------------
# State differencing and command attribution
# ---------------------------------------------------------------------------


def diff_states(a: DBState, b: DBState) -> list[str]:
    """Row/association-level differences between two states.

    Returns sorted, human-readable lines, each tagged with the model or
    relation it concerns; empty when the states agree (modulo the order
    component, matching the commutativity check's equality)."""
    lines: list[str] = []
    models = sorted(set(a.tables) | set(b.tables))
    for model in models:
        rows_a = a.tables.get(model, {})
        rows_b = b.tables.get(model, {})
        for pk in sorted(set(rows_a) | set(rows_b), key=repr):
            in_a, in_b = pk in rows_a, pk in rows_b
            if in_a and not in_b:
                lines.append(f"{model}[{pk!r}]: present in order A, "
                             f"missing in order B")
            elif in_b and not in_a:
                lines.append(f"{model}[{pk!r}]: missing in order A, "
                             f"present in order B")
            elif rows_a[pk] != rows_b[pk]:
                for field in sorted(set(rows_a[pk]) | set(rows_b[pk])):
                    va, vb = rows_a[pk].get(field), rows_b[pk].get(field)
                    if va != vb:
                        lines.append(
                            f"{model}[{pk!r}].{field}: "
                            f"{va!r} (order A) vs {vb!r} (order B)"
                        )
    for relation in sorted(set(a.assocs) | set(b.assocs)):
        pairs_a = a.assocs.get(relation, set())
        pairs_b = b.assocs.get(relation, set())
        for pair in sorted(pairs_a ^ pairs_b, key=repr):
            where = "order A" if pair in pairs_a else "order B"
            lines.append(f"{relation}{pair!r}: only in {where}")
    return lines


def _diff_subjects(diff_lines: list[str]) -> set[str]:
    """The model/relation names a diff talks about (text before ``[``/``(``
    or ``:``)."""
    subjects: set[str] = set()
    for line in diff_lines:
        head = line.split(":", 1)[0]
        for sep in ("[", "("):
            head = head.split(sep, 1)[0]
        subjects.add(head)
    return subjects


def _command_subjects(cmd: C.Command) -> set[str]:
    """The models and relations one command reads or writes."""
    subjects: set[str] = set()
    relation = getattr(cmd, "relation", None)
    if relation is not None:
        subjects.add(relation)
    for node in cmd.walk_exprs():
        node_type = node.type
        if node_type.is_model_type():
            subjects.add(node_type.model)
        relpath = getattr(node, "relpath", None)
        if relpath:
            for hop in relpath:
                subjects.add(hop.relation)
    return subjects


def _responsible_ops(
    path: CodePath, subjects: set[str]
) -> list[str]:
    """The path's effectful commands touching any of ``subjects``."""
    out = []
    for cmd in path.effects:
        if _command_subjects(cmd) & subjects:
            out.append(pp_command(cmd))
    return out


def _first_failing_command(
    path: CodePath, state: DBState, env: dict, schema: Schema
) -> tuple[C.Command | None, str]:
    """Replay ``path`` in generation mode and return the command at which
    it aborts (plus the interpreter's reason) — the broken invariant."""
    interp = Interpreter(schema, state.clone(), env)
    for cmd in path.commands:
        try:
            interp.exec(cmd)
        except PathAborted as abort:
            return cmd, abort.reason
    return None, ""


# ---------------------------------------------------------------------------
# Section renderers
# ---------------------------------------------------------------------------


def _fmt_env(env: dict) -> str:
    if not env:
        return "(no arguments)"
    return ", ".join(f"{k}={env[k]!r}" for k in sorted(env))


def _path_block(path: CodePath) -> list[str]:
    lines = [f"  {path.name} (endpoint {path.view or '?'}):"]
    for cmd in path.commands:
        lines.append(f"    {pp_command(cmd)}")
    return lines


def _commutativity_section(p, q, info) -> list[str]:
    s_pq, s_qp = info["s_pq"], info["s_qp"]
    diff = diff_states(s_pq, s_qp)
    subjects = _diff_subjects(diff)
    lines = ["-- commutativity: FAIL (application orders diverge) --", ""]
    lines.append("witness arguments:")
    lines.append(f"  P = {p.name} with {_fmt_env(info['env_p'])}")
    lines.append(f"  Q = {q.name} with {_fmt_env(info['env_q'])}")
    lines.append("common ancestor state S:")
    lines.append(pp_state(info["state"]))
    lines.append("witness schedule (replication semantics — each effect was")
    lines.append("accepted at its own site, then applied everywhere):")
    lines.append(f"  order A: S + P + Q      order B: S + Q + P")
    lines.append("final state, order A (P then Q):")
    lines.append(pp_state(s_pq))
    lines.append("final state, order B (Q then P):")
    lines.append(pp_state(s_qp))
    lines.append("diverging state:")
    for line in diff or ["  (no row-level diff — order-component only)"]:
        lines.append(f"  {line}")
    lines.append("SOIR operations responsible:")
    for path in (p, q):
        ops = _responsible_ops(path, subjects)
        for op in ops or ["(no single operation attributable)"]:
            lines.append(f"  {path.name}: {op}")
    return lines


def _semantic_section(p, q, info, schema) -> list[str]:
    direction = info["direction"]
    if direction == "Q invalidates P":
        invalidator, invalidated = q, p
        env_inv, env_victim = info["env_q"], info["env_p"]
    else:
        invalidator, invalidated = p, q
        env_inv, env_victim = info["env_p"], info["env_q"]
    after = info["after"]
    failing_cmd, reason = _first_failing_command(
        invalidated, after, env_victim, schema
    )
    lines = [f"-- semantic: FAIL ({invalidator.name} invalidates "
             f"{invalidated.name}) --", ""]
    lines.append("witness arguments:")
    lines.append(f"  P = {p.name} with {_fmt_env(info['env_p'])}")
    lines.append(f"  Q = {q.name} with {_fmt_env(info['env_q'])}")
    lines.append("common ancestor state S (both preconditions hold here):")
    lines.append(pp_state(info["state"]))
    lines.append(f"after {invalidator.name} with {_fmt_env(env_inv)} "
                 f"commits, the state is:")
    lines.append(pp_state(after))
    lines.append(f"replaying {invalidated.name} on that state aborts:")
    if failing_cmd is not None:
        if isinstance(failing_cmd, C.Guard):
            lines.append("  invalidated invariant (path condition):")
            lines.append(f"    {pp_expr(failing_cmd.cond)}")
        else:
            lines.append("  failing operation:")
            lines.append(f"    {pp_command(failing_cmd)}")
        if reason:
            lines.append(f"  reason: {reason}")
    else:
        lines.append("  (abort not reproducible command-by-command; "
                     "the full replay aborts)")
    return lines


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def explain_pair(
    analysis: AnalysisResult,
    left: str,
    right: str,
    config=None,
) -> str:
    """A human-readable account of why ``(left, right)`` is (or is not)
    restricted.

    ``left``/``right`` are code-path names (``View[i]``) or view names
    with a single effectful path.  The search runs with ``config`` (a
    :class:`~repro.verifier.CheckConfig`; defaults mirror the verifier's)
    through the *enum* backend — witnesses must be concretely replayable
    through the reference interpreter, and the two backends agree on
    verdicts."""
    from ..engine.reduction import rw_footprint
    from ..verifier.enumcheck import CheckConfig, PairChecker
    from ..verifier.runner import PRUNE_RW, classify_pair
    import time

    config = config or CheckConfig()
    p = _resolve(analysis, left)
    q = _resolve(analysis, right)
    p, q = _sweep_order(analysis, p, q)
    lines = [f"pair: {p.name} x {q.name}", ""]
    lines.append("code paths under analysis:")
    lines.extend(_path_block(p))
    if q.name != p.name:
        lines.extend(_path_block(q))
    lines.append("")

    if not (p.is_effectful() and q.is_effectful()):
        readonly = p if not p.is_effectful() else q
        lines.append(f"verdict: NOT RESTRICTED — {readonly.name} is not "
                     f"effectful (read-only or aborted), so the pair is "
                     f"outside the verification sweep.")
        return "\n".join(lines)

    classified = classify_pair(p, q, analysis.schema, config, rw=True)
    if classified is not None:
        verdict, tag = classified
        if tag == "disjoint":
            lines.append("verdict: NOT RESTRICTED (fast layer: disjoint "
                         "footprints)")
            lines.append("the two paths touch no common model or relation; "
                         "their effects cannot interact.")
            return "\n".join(lines)
        if tag == PRUNE_RW:
            lines.append("verdict: NOT RESTRICTED (fast layer: disjoint "
                         "read/write footprints)")
            lines.append("neither path writes anything the other reads or "
                         "writes, so the pair provably commutes and cannot "
                         "invalidate (docs/REDUCTION.md):")
            def fmt(tokens):
                return (", ".join("/".join(t) for t in sorted(tokens))
                        or "(nothing)")

            for path in (p, q):
                reads, writes = rw_footprint(path, analysis.schema)
                lines.append(f"  {path.name}:")
                lines.append(f"    reads:  {fmt(reads)}")
                lines.append(f"    writes: {fmt(writes)}")
            return "\n".join(lines)
        lines.append("verdict: RESTRICTED (fast layer: "
                     + ("conservative path)" if tag == "conservative"
                        else "order encoding disabled)"))
        for check in (verdict.commutativity, verdict.semantic):
            if check is not None and check.detail:
                lines.append(f"  {check.kind}: {check.detail}")
        if tag == "conservative":
            culprit = p if p.conservative else q
            if culprit.abort_reason:
                lines.append(f"  analyzer fallback reason: "
                             f"{culprit.abort_reason}")
            lines.append("  a conservatively-analyzed path is restricted "
                         "against every operation (paper §3.3).")
        return "\n".join(lines)

    checker = PairChecker(p, q, analysis.schema, config)
    deadline = time.perf_counter() + config.timeout_s
    com_status, com_info = checker.search_commutativity(deadline)
    deadline = time.perf_counter() + config.timeout_s
    sem_status, sem_info = checker.search_semantic(deadline)

    restricted = com_status != "pass" or sem_status != "pass"
    lines.append(f"verdict: {'RESTRICTED' if restricted else 'NOT RESTRICTED'}"
                 f" (commutativity {com_status}, semantic {sem_status})")
    lines.append("")
    if com_status == "fail":
        lines.extend(_commutativity_section(p, q, com_info))
        lines.append("")
    elif com_status == "timeout":
        lines.append("-- commutativity: TIMEOUT (restricted "
                     "conservatively; raise the budget to witness) --")
        lines.append("")
    if sem_status == "fail":
        lines.extend(_semantic_section(p, q, sem_info, analysis.schema))
    elif sem_status == "timeout":
        lines.append("-- semantic: TIMEOUT (restricted conservatively; "
                     "raise the budget to witness) --")
    if not restricted:
        lines.append(f"no witness found within scope "
                     f"(examined {com_info['candidates']} commutativity and "
                     f"{sem_info['candidates']} semantic scenarios); the "
                     f"pair may run concurrently under PoR.")
    return "\n".join(lines).rstrip() + "\n"


def _engine_failure_section(verdict) -> str:
    """Render an ``unknown`` verdict: the engine failed, not the pair.

    These verdicts carry no witness — the restriction is the engine's
    conservative reaction to its own failure (crash, deadline, solver
    error), so re-searching for a witness here would misattribute the
    restriction.  The check detail says which failure and on which
    attempt; a re-run (the verdict is never cached) or a larger
    ``--deadline`` may decide the pair."""
    lines = [f"pair: {verdict.left} x {verdict.right}", ""]
    lines.append("verdict: RESTRICTED (conservative — the engine could "
                 "not decide this pair)")
    for check in (verdict.commutativity, verdict.semantic):
        if check is not None and check.detail:
            lines.append(f"  {check.kind}: {check.detail}")
            break  # both checks carry the same engine-failure detail
    lines.append("  no witness exists for this restriction: it reflects "
                 "an engine failure, not pair semantics.")
    lines.append("  the verdict was not cached; re-run the verification "
                 "(optionally with a larger --deadline) to decide the "
                 "pair.")
    return "\n".join(lines) + "\n"


def _shared_provenance_header(verdict) -> str:
    """Note that a verdict was shared from its signature-class
    representative, rendering the recorded renaming.

    The explanation that follows re-derives the witness for the member
    pair itself (the checkers are deterministic), so the reader sees
    both where the verdict came from and a witness in the member's own
    vocabulary."""
    prov = verdict.provenance or {}
    rep = prov.get("representative") or ["?", "?"]
    lines = [f"[shared verdict] solved once as representative "
             f"{rep[0]} x {rep[1]} (signature class "
             f"{str(prov.get('class', ''))[:12]}) and shared with "
             f"{verdict.left} x {verdict.right}."]
    renaming = prov.get("renaming") or {}
    if renaming:
        lines.append("  member -> representative renaming:")
        for kind in sorted(renaming):
            pairs = ", ".join(f"{a} -> {b}" for a, b in
                              sorted(renaming[kind].items()))
            lines.append(f"    {kind}: {pairs}")
    else:
        lines.append("  (identical names; the renaming is the identity)")
    return "\n".join(lines) + "\n"


def explain_report(
    analysis: AnalysisResult,
    report,
    config=None,
    *,
    limit: int | None = None,
) -> str:
    """Explain every restricted pair of a
    :class:`~repro.verifier.VerificationReport` (up to ``limit``).

    Verdicts shared from a signature-class representative are prefixed
    with their provenance (representative pair + renaming) before the
    member-level explanation."""
    sections: list[str] = []
    restrictions = report.restrictions
    shown = restrictions if limit is None else restrictions[:limit]
    for verdict in shown:
        if getattr(verdict, "unknown", False):
            sections.append(_engine_failure_section(verdict))
            continue
        prov = getattr(verdict, "provenance", None) or {}
        if prov.get("source") == "shared":
            sections.append(_shared_provenance_header(verdict))
        sections.append(explain_pair(
            analysis, verdict.left, verdict.right, config,
        ))
    if limit is not None and len(restrictions) > limit:
        sections.append(f"... {len(restrictions) - limit} further "
                        f"restricted pairs not shown (--explain-all)\n")
    if not restrictions:
        sections.append(f"{report.app_name}: no restricted pairs — every "
                        f"operation pair may run concurrently.\n")
    return "\n".join(sections)


# ---------------------------------------------------------------------------
# Directed difftest flips
# ---------------------------------------------------------------------------

def explain_flip(flip: dict) -> str:
    """Render one directed-difftest boundary crossing.

    Takes the plain-dict form (:meth:`FlipRecord.to_obj`) rather than
    the record itself so report JSON written by
    ``benchmarks/bench_directed_ab.py`` or a ``--directed`` sweep can be
    explained without importing :mod:`repro.difftest` — and without
    this module growing a dependency on it."""
    direction = flip.get("direction", "?")
    op = flip.get("op", "?")
    verb = ("one mutation made the case diverge"
            if direction == "restricting"
            else "one mutation made the divergence disappear")
    lines = [
        f"flip: seed {flip.get('seed', '?')} step "
        f"{flip.get('step', '?')} — {verb}",
        f"  operator : {op} ({direction})",
        f"  paths    : {', '.join(flip.get('paths', ()) or ('?',))}",
        f"  isolation: {flip.get('isolation', 'por')}",
    ]
    first = flip.get("first_level")
    if first:
        lines.append(f"  first diverging level: {first} "
                     f"(divergence admissible from this level on)")
    res = str(flip.get("digest_restricted", ""))[:12]
    unres = str(flip.get("digest_unrestricted", ""))[:12]
    lines.append(f"  boundary : restricted {res} <-> unrestricted {unres}")
    lines.append("  the engines were cross-checked on both sides of "
                 "this boundary; any disagreement is pinned under "
                 "tests/corpus/ as directed-seedN-<kind>.json.")
    return "\n".join(lines) + "\n"
