"""Hierarchical spans and the context-local tracer.

The tracing model is deliberately small: a **span** is a named, typed
(``kind``) interval of work with wall/CPU durations, a flat attribute
dict, and child spans; a **tracer** owns a forest of spans, a bounded
in-memory ring buffer of completed span *records*, and an optional sink
that receives each record as it completes (``JsonlSink`` writes one JSON
object per line).

The active tracer is a :mod:`contextvars` context variable, so tracing
composes with the engine's worker processes and with any future async
execution: instrumentation sites call the module-level helpers in
:mod:`repro.obs` (``span``/``add_attrs``/``incr``/``record``), which are
no-ops costing one context-variable read when no tracer is installed.

Spans serialize to plain JSON objects (:func:`span_to_obj` /
:func:`span_from_obj`); the engine scheduler uses this to forward
worker-local span trees back to the parent process so a parallel sweep
produces one coherent trace (:meth:`Tracer.graft`).
"""

from __future__ import annotations

import contextvars
import json
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

#: the active tracer for the current execution context (process-local;
#: workers install their own and forward spans back by value)
_ACTIVE: contextvars.ContextVar["Tracer | None"] = contextvars.ContextVar(
    "noctua_tracer", default=None
)


class Span:
    """One traced interval of work.

    ``kind`` is the span's taxonomy slot (see docs/OBSERVABILITY.md):
    ``app-analysis``, ``endpoint``, ``path-finding``, ``pair-sweep``,
    ``pair``, ``check``, ``solver-call``, ``chaos-run`` ...  ``attrs`` is
    a flat dict of JSON-able values.
    """

    __slots__ = ("name", "kind", "attrs", "wall_s", "cpu_s", "pid",
                 "children", "_t0", "_c0")

    def __init__(self, name: str, kind: str = "", attrs: dict | None = None):
        self.name = name
        self.kind = kind
        self.attrs: dict = dict(attrs or {})
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.pid = os.getpid()
        self.children: list[Span] = []
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()

    # -- mutation helpers used by instrumentation sites ------------------

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)

    def incr(self, name: str, n: int | float = 1) -> None:
        """Increment a numeric attribute (creating it at 0)."""
        self.attrs[name] = self.attrs.get(name, 0) + n

    def finish(self) -> None:
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._c0

    # -- derived views ---------------------------------------------------

    @property
    def self_wall_s(self) -> float:
        """Wall time not attributed to any child span."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> list["Span"]:
        return [s for s in self.walk() if s.kind == kind]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"wall={self.wall_s:.4f}s, children={len(self.children)})")


class NullSpan:
    """The do-nothing span yielded when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def incr(self, name: str, n: int | float = 1) -> None:
        pass


NULL_SPAN = NullSpan()


class _NullContext:
    """A reusable no-op context manager yielding :data:`NULL_SPAN`."""

    __slots__ = ()

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


NULL_CONTEXT = _NullContext()


class JsonlSink:
    """Writes one JSON object per completed span to a file.

    Records are append-only and self-describing (``id``/``parent`` links
    reconstruct the tree), so a trace file survives crashes mid-run: every
    line already written is a complete record.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")

    def close(self) -> None:
        self._fh.flush()
        self._fh.close()


class Tracer:
    """Collects a forest of spans for one traced activity.

    Completed spans are summarized into flat *records* (dicts) pushed into
    a bounded ring buffer (``ring``) and forwarded to the optional
    ``sink``.  The hierarchical span objects stay reachable via ``roots``
    until the tracer is dropped, which is what the renderer and the
    metrics rebuild consume.
    """

    def __init__(self, *, sink: JsonlSink | None = None,
                 max_records: int = 65536):
        self.roots: list[Span] = []
        self.ring: deque[dict] = deque(maxlen=max_records)
        self.sink = sink
        self._stack: list[tuple[Span, int]] = []  # (span, id)
        self._next_id = 1

    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, kind: str = "", **attrs) -> Iterator[Span]:
        s = Span(name, kind, attrs)
        span_id = self._next_id
        self._next_id += 1
        if self._stack:
            self._stack[-1][0].children.append(s)
            parent_id = self._stack[-1][1]
        else:
            self.roots.append(s)
            parent_id = None
        self._stack.append((s, span_id))
        try:
            yield s
        finally:
            self._stack.pop()
            s.finish()
            self._emit(s, span_id, parent_id)

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1][0] if self._stack else None

    def record(self, name: str, kind: str = "", *, wall_s: float = 0.0,
               cpu_s: float = 0.0, **attrs) -> Span:
        """Attach an already-completed span (no timing taken here).

        Used by instrumentation that measures its own interval (e.g. the
        enum checker's candidate sweep) and reports it after the fact.
        """
        s = Span(name, kind, attrs)
        s.wall_s = wall_s
        s.cpu_s = cpu_s
        span_id = self._next_id
        self._next_id += 1
        if self._stack:
            self._stack[-1][0].children.append(s)
            parent_id = self._stack[-1][1]
        else:
            self.roots.append(s)
            parent_id = None
        self._emit(s, span_id, parent_id)
        return s

    def graft(self, obj: dict, parent: Span | None = None) -> Span:
        """Attach a serialized span tree (e.g. from a worker process).

        The grafted spans are re-emitted to the ring/sink under fresh ids,
        so a JSONL trace of a parallel sweep contains the worker-side
        spans too.
        """
        span = span_from_obj(obj)
        target = parent if parent is not None else self.current_span
        if target is None:
            self.roots.append(span)
            parent_id = None
        else:
            target.children.append(span)
            parent_id = next(
                (sid for s, sid in self._stack if s is target), None
            )
        self._emit_tree(span, parent_id)
        return span

    # ------------------------------------------------------------------

    def _emit(self, span: Span, span_id: int,
              parent_id: int | None) -> None:
        record = {
            "id": span_id,
            "parent": parent_id,
            "name": span.name,
            "kind": span.kind,
            "pid": span.pid,
            "wall_s": round(span.wall_s, 6),
            "cpu_s": round(span.cpu_s, 6),
            "attrs": span.attrs,
        }
        self.ring.append(record)
        if self.sink is not None:
            self.sink.write(record)

    def _emit_tree(self, span: Span, parent_id: int | None) -> None:
        span_id = self._next_id
        self._next_id += 1
        self._emit(span, span_id, parent_id)
        for child in span.children:
            self._emit_tree(child, span_id)

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


# ---------------------------------------------------------------------------
# Context-local activation and the module-level instrumentation helpers.
# ---------------------------------------------------------------------------


def current() -> Tracer | None:
    """The tracer active in this execution context, or ``None``."""
    return _ACTIVE.get()


def enabled() -> bool:
    return _ACTIVE.get() is not None


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the context-local tracer for the block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def span(name: str, kind: str = "", **attrs):
    """Open a span on the active tracer — a shared no-op when disabled."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return NULL_CONTEXT
    return tracer.span(name, kind, **attrs)


def add_attrs(**attrs) -> None:
    """Attach attributes to the innermost open span, if tracing."""
    tracer = _ACTIVE.get()
    if tracer is not None and tracer.current_span is not None:
        tracer.current_span.set(**attrs)


def incr(name: str, n: int | float = 1) -> None:
    """Increment a counter attribute on the innermost open span."""
    tracer = _ACTIVE.get()
    if tracer is not None and tracer.current_span is not None:
        tracer.current_span.incr(name, n)


def record(name: str, kind: str = "", *, wall_s: float = 0.0,
           cpu_s: float = 0.0, **attrs) -> None:
    """Attach a pre-timed, already-completed span, if tracing."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.record(name, kind, wall_s=wall_s, cpu_s=cpu_s, **attrs)


# ---------------------------------------------------------------------------
# Serialization — the worker-to-parent forwarding format.
# ---------------------------------------------------------------------------


def span_to_obj(span: Span) -> dict:
    return {
        "name": span.name,
        "kind": span.kind,
        "pid": span.pid,
        "wall_s": span.wall_s,
        "cpu_s": span.cpu_s,
        "attrs": span.attrs,
        "children": [span_to_obj(c) for c in span.children],
    }


def span_from_obj(obj: dict) -> Span:
    span = Span(obj["name"], obj.get("kind", ""), obj.get("attrs"))
    span.wall_s = obj.get("wall_s", 0.0)
    span.cpu_s = obj.get("cpu_s", 0.0)
    span.pid = obj.get("pid", 0)
    span.children = [span_from_obj(c) for c in obj.get("children", [])]
    return span
