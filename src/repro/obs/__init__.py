"""Observability: structured tracing, profiling and restriction explaining.

``repro.obs`` is the zero-dependency tracing substrate threaded through
every layer of the pipeline (analyzer → SOIR lowering → pair sweep →
checks → solver calls).  It answers the two questions the restriction
set alone cannot: *where did the time go* and *why is this pair
restricted*.

Submodules
----------

``tracer``
    Hierarchical :class:`Span`/:class:`Tracer` with wall/CPU timings,
    a bounded in-memory ring buffer, an optional JSONL sink, and the
    context-local activation helpers used by instrumentation sites.
``render``
    Text renderers: span tree, per-phase time breakdown, slowest-pairs
    table.
``explain``
    The "why restricted?" explainer: replays a pair's witness schedule
    through the SOIR reference interpreter and prints the diverging
    state (or invalidated guard) plus the SOIR operations responsible.
    Imported lazily (``from repro.obs import explain``) because it
    depends on :mod:`repro.verifier`, which is itself instrumented by
    this package.

Typical use::

    from repro import obs

    tracer = obs.Tracer(sink=obs.JsonlSink("trace.jsonl"))
    with obs.activate(tracer), obs.span("my-run", "app-analysis"):
        analysis = analyze_application(app)
    print("\\n".join(obs.render_tree(tracer.roots)))

When no tracer is active every instrumentation hook is a no-op costing
one context-variable read, so un-traced runs stay at production speed
(the ``bench_pair_sweep`` smoke budget pins the overhead below 2%).
See docs/OBSERVABILITY.md for the span taxonomy and the trace schema.
"""

from .render import (
    phase_breakdown,
    render_phase_breakdown,
    render_tree,
    slowest_pairs_table,
)
from .tracer import (
    JsonlSink,
    NULL_SPAN,
    Span,
    Tracer,
    activate,
    add_attrs,
    current,
    enabled,
    incr,
    record,
    span,
    span_from_obj,
    span_to_obj,
)

__all__ = [
    "JsonlSink",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "activate",
    "add_attrs",
    "current",
    "enabled",
    "incr",
    "phase_breakdown",
    "record",
    "render_phase_breakdown",
    "render_tree",
    "slowest_pairs_table",
    "span",
    "span_from_obj",
    "span_to_obj",
]
