"""A from-scratch Django-like ORM (substrate for the Noctua reproduction).

Provides the subset of Django's model layer the paper's applications rely
on: declarative models with dynamic field inheritance (mixins / abstract
bases), lazy query sets with relation-chained lookups, foreign keys with
referential actions, many-to-many fields, reverse accessors, unique
constraints (including ``unique_together``), transactions and a pluggable
execution backend that the Noctua analyzer swaps for a symbolic one.
"""

from .clock import now, reset as reset_clock
from .database import ConcreteBackend, Database, qs_to_soir
from .exceptions import (
    FieldError,
    IntegrityError,
    MultipleObjectsReturned,
    ObjectDoesNotExist,
    ORMError,
    ProtectedError,
    TransactionError,
    ValidationError,
)
from .fields import (
    CASCADE,
    DO_NOTHING,
    PROTECT,
    SET_NULL,
    AutoField,
    BooleanField,
    CharField,
    DateTimeField,
    EmailField,
    Field,
    FloatField,
    ForeignKey,
    IntegerField,
    ManyToManyField,
    OneToOneField,
    PositiveIntegerField,
    SlugField,
    TextField,
    URLField,
)
from .models import Model
from .query import Lookup, Manager, QuerySet
from .registry import Registry, default_registry
from . import runtime

__all__ = [
    "AutoField",
    "BooleanField",
    "CASCADE",
    "CharField",
    "ConcreteBackend",
    "Database",
    "DateTimeField",
    "DO_NOTHING",
    "EmailField",
    "Field",
    "FieldError",
    "FloatField",
    "ForeignKey",
    "IntegerField",
    "IntegrityError",
    "Lookup",
    "Manager",
    "ManyToManyField",
    "Model",
    "MultipleObjectsReturned",
    "ORMError",
    "ObjectDoesNotExist",
    "OneToOneField",
    "PROTECT",
    "PositiveIntegerField",
    "ProtectedError",
    "QuerySet",
    "Registry",
    "SET_NULL",
    "SlugField",
    "TextField",
    "TransactionError",
    "URLField",
    "ValidationError",
    "default_registry",
    "now",
    "qs_to_soir",
    "reset_clock",
    "runtime",
]
