"""ORM exception hierarchy, mirroring Django's."""

from __future__ import annotations


class ORMError(Exception):
    """Base class of all ORM errors."""


class ObjectDoesNotExist(ORMError):
    """``get()`` matched no row.  Each model also exposes a subclass as
    ``Model.DoesNotExist``, like Django."""


class MultipleObjectsReturned(ORMError):
    """``get()`` matched more than one row."""


class IntegrityError(ORMError):
    """A database constraint (uniqueness, referential integrity) failed."""


class ProtectedError(IntegrityError):
    """Deleting the object is blocked by a PROTECT foreign key."""


class FieldError(ORMError):
    """A query referenced an unknown field or used a bad lookup."""


class ValidationError(ORMError):
    """A field value violates the field's own constraints."""


class TransactionError(ORMError):
    """Misuse of the transaction API."""
