"""Execution backend plumbing.

The ORM never talks to storage directly: every terminal operation resolves
the *current backend* from a context variable and delegates.  This is the
plug point of the whole framework:

* :class:`repro.orm.database.ConcreteBackend` executes for real against an
  in-memory database (normal application execution, tests, the
  geo-replication simulator);
* :class:`repro.analyzer.dbproxy.SymbolicBackend` records SOIR instead
  (consistency analysis) — application code is byte-for-byte identical in
  both modes.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database

_current_backend: contextvars.ContextVar[object | None] = contextvars.ContextVar(
    "orm_backend", default=None
)


class NoBackendError(RuntimeError):
    """An ORM operation ran outside any database / analysis context."""


def backend():
    """The active execution backend."""
    b = _current_backend.get()
    if b is None:
        raise NoBackendError(
            "no active ORM backend; wrap the code in `with db.activate():` "
            "or run it under the analyzer"
        )
    return b


@contextlib.contextmanager
def use_backend(b) -> Iterator[object]:
    token = _current_backend.set(b)
    try:
        yield b
    finally:
        _current_backend.reset(token)


def current_database() -> "Database":
    """The database behind the active backend (concrete execution only)."""
    b = backend()
    db = getattr(b, "db", None)
    if db is None:
        raise NoBackendError("the active backend has no concrete database")
    return db
